"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list``     — registered benchmark workloads, with their paper rows;
* ``run``      — one execution of a workload under a passive scheduler;
* ``detect``   — Phase 1: report potentially racing statement pairs
  (``--trace-dir`` caches each seed's execution as a replayable trace);
* ``record``   — fill a trace store: one recorded execution per seed;
* ``analyze``  — run detectors offline over recorded trace files;
* ``fuzz``     — the full two-phase RaceFuzzer campaign;
* ``replay``   — re-run one (pair, seed) with a rendered interleaving;
* ``store``    — trace-store maintenance: ``gc`` enforces a disk budget,
  ``verify`` integrity-checks every entry (optionally quarantining the
  damaged ones);
* ``stats``    — render a ``--metrics-out`` run report (tables or
  Prometheus text format);
* ``trace-export`` — render a ``--timeline-out`` document (or v3 run
  report) as Chrome trace-event JSON for Perfetto / chrome://tracing;
* ``dash``     — render a run report or timeline document as a
  self-contained zero-dependency HTML dashboard;
* ``table1``   — regenerate Table 1 (delegates to repro.harness.table1);
* ``figure2``  — the probability sweep (delegates to
  repro.harness.figure2_prob).
"""

from __future__ import annotations

import argparse
import os
import sys

from contextlib import ExitStack

from repro.core import (
    DefaultScheduler,
    RandomScheduler,
    RaposDriver,
    detect_races,
    parse_fault_plan,
    race_directed_test,
)
from repro.core.replay import replay_race
from repro.core.traceview import format_replay
from repro.obs import (
    TIMELINE_KIND,
    ProgressPrinter,
    chrome_trace,
    collecting,
    load_run_report,
    load_timeline,
    recording_timeline,
    render_dash,
    render_prometheus,
    render_stats_table,
    validate_run_report,
    write_chrome_trace,
    write_run_report,
    write_timeline,
)
from repro.runtime import Execution
from repro.workloads import all_workloads, get


def _enter_collecting(stack: ExitStack, wanted: bool):
    """Enable metrics for the body of a command when any flag needs them."""
    return stack.enter_context(collecting()) if wanted else None


def _enter_timeline(stack: ExitStack, wanted: bool):
    """Enable timeline recording when ``--timeline-out`` asks for it."""
    return stack.enter_context(recording_timeline()) if wanted else None


def _checked_detectors(names: list[str]) -> list[str] | None:
    """Validate detector names against the registry; None means reject.

    Shared by every command taking detector flags, so an unknown name is
    a friendly exit-2 usage error naming the valid choices — not a raw
    ``KeyError`` from deep inside the pipeline.  Duplicates collapse
    (first occurrence wins), matching the one-observer-per-name protocol.
    """
    from repro.detectors import available_detectors

    deduped = list(dict.fromkeys(names))
    valid = available_detectors()
    unknown = [name for name in deduped if name not in valid]
    if unknown:
        print(
            f"unknown detector(s): {', '.join(unknown)}; "
            f"valid: {', '.join(valid)}",
            file=sys.stderr,
        )
        return None
    return deduped


_SIZE_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def _parse_size(text: str) -> int:
    """A byte count with an optional binary suffix: ``4096``, ``512K``,
    ``10M``, ``1G`` (``B`` tolerated, case-insensitive)."""
    raw = text.strip().lower()
    if raw.endswith("b"):
        raw = raw[:-1]
    factor = 1
    if raw and raw[-1] in _SIZE_SUFFIXES:
        factor = _SIZE_SUFFIXES[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw) if "." in raw else int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (use e.g. 4096, 512K, 10M, 1G)"
        )
    size = int(value * factor)
    if size <= 0:
        raise argparse.ArgumentTypeError(f"size must be positive, got {text!r}")
    return size


def _cmd_list(args) -> int:
    for spec in all_workloads():
        row = ""
        if spec.paper is not None:
            row = (
                f"  [paper: {spec.paper.hybrid_races} potential, "
                f"{spec.paper.real_races} real, "
                f"{spec.paper.exceptions_rf} exceptions]"
            )
        print(f"{spec.name:12s} {spec.description}{row}")
    return 0


def _cmd_run(args) -> int:
    spec = get(args.workload)
    with ExitStack() as stack:
        registry = _enter_collecting(stack, args.metrics_out is not None)
        recorder = _enter_timeline(stack, args.timeline_out is not None)
        if args.scheduler == "rapos":
            result = RaposDriver(max_steps=spec.max_steps).run(
                spec.build(), seed=args.seed
            )
        else:
            scheduler = (
                DefaultScheduler()
                if args.scheduler == "default"
                else RandomScheduler(preemption="every")
            )
            result = Execution(
                spec.build(), seed=args.seed, max_steps=spec.max_steps
            ).run(scheduler)
        timeline = recorder.snapshot() if recorder is not None else None
    print(result)
    if timeline is not None:
        write_timeline(
            args.timeline_out, timeline, command="run", workload=spec.name
        )
    if registry is not None:
        write_run_report(
            args.metrics_out,
            registry.snapshot(),
            command="run",
            workload=spec.name,
            timeline=timeline,
        )
    return 0 if not result.crashes and not result.deadlock else 1


def _cmd_detect(args) -> int:
    spec = get(args.workload)
    detectors = _checked_detectors(args.detector or ["hybrid"])
    if detectors is None:
        return 2
    faults = parse_fault_plan(args.fault_plan) if args.fault_plan else None
    # The trace-store stats line rides on the metrics registry, so a
    # --trace-dir run collects even without --metrics-out.
    collect = args.metrics_out is not None or args.trace_dir is not None
    with ExitStack() as stack:
        registry = _enter_collecting(stack, collect)
        recorder = _enter_timeline(stack, args.timeline_out is not None)
        report = detect_races(
            spec.build(),
            detector=detectors[0] if len(detectors) == 1 else detectors,
            seeds=range(args.seeds),
            max_steps=spec.max_steps,
            jobs=args.jobs,
            deadline=args.deadline,
            retries=args.retries,
            trace_dir=args.trace_dir,
            faults=faults,
            store_quota=args.store_quota,
        )
    if isinstance(report, dict):
        # One section per requested detector, all fed by the same
        # recorded execution(s) of each seed.
        for index, name in enumerate(detectors):
            if index:
                print()
            print(f"== {name}")
            print(report[name])
    else:
        print(report)
    timeline = recorder.snapshot() if recorder is not None else None
    if timeline is not None:
        write_timeline(
            args.timeline_out, timeline, command="detect", workload=spec.name
        )
    if registry is not None:
        snapshot = registry.snapshot()
        if args.trace_dir is not None:
            c = snapshot.counters
            print(
                f"trace store: {c.get('trace.store_hits', 0)} hit(s), "
                f"{c.get('trace.store_misses', 0)} miss(es), "
                f"{c.get('trace.store_executions', 0)} recorded "
                f"execution(s), {c.get('trace.store_bytes', 0)} byte(s) "
                f"written",
                file=sys.stderr,
            )
        if args.metrics_out is not None:
            write_run_report(
                args.metrics_out,
                snapshot,
                command="detect",
                workload=spec.name,
                timeline=timeline,
            )
    return 0


def _cmd_record(args) -> int:
    from repro.core import ParallelCampaign
    from repro.trace import TraceStore, detect_key

    spec = get(args.workload)
    store = TraceStore(args.trace_dir, compress=args.compress)
    seeds = list(range(args.seeds))
    keys = {
        seed: detect_key(spec.name, seed, max_steps=spec.max_steps)
        for seed in seeds
    }
    missing = [seed for seed in seeds if store.get(keys[seed]) is None]
    if missing and args.jobs != 1:
        with ParallelCampaign(jobs=args.jobs) as engine:
            engine.record(
                spec.name,
                seeds=missing,
                max_steps=spec.max_steps,
                trace_dir=str(store.root),
                compress=args.compress,
            )
    for seed in seeds:
        path = store.get(keys[seed]) or store.ensure(keys[seed], spec.build())
        print(path)
    print(
        f"{len(missing)} recorded, {len(seeds) - len(missing)} already "
        f"cached -> {store.root}",
        file=sys.stderr,
    )
    return 0


def _cmd_analyze(args) -> int:
    from pathlib import Path

    from repro.core.traceview import format_trace_file
    from repro.trace import TraceStore, analyze_trace

    target = Path(args.path)
    paths = TraceStore(target).entries() if target.is_dir() else [target]
    if not paths:
        print(f"no traces under {target}", file=sys.stderr)
        return 2
    names = args.detector or [
        name.strip() for name in args.detectors.split(",") if name.strip()
    ]
    detectors = _checked_detectors(names)
    if detectors is None:
        return 2
    for path in paths:
        reports = analyze_trace(path, detectors)
        print(f"== {path}")
        for name in detectors:
            print(reports[name])
        if args.show_trace:
            print()
            print(format_trace_file(path, max_events=args.max_events))
    return 0


def _cmd_store(args) -> int:
    from repro.trace import TraceStore

    store = TraceStore(
        args.trace_dir,
        max_bytes=args.quota,
        max_entries=args.max_entries,
    )
    if args.action == "gc":
        if args.quota is None and args.max_entries is None:
            print(
                "store gc: give a budget with --quota and/or --max-entries",
                file=sys.stderr,
            )
            return 2
        evicted, freed = store.gc()
        print(
            f"evicted {evicted} entr{'y' if evicted == 1 else 'ies'} "
            f"({freed} bytes); {len(store.entries())} remaining "
            f"({store.total_bytes()} bytes) in {store.root}"
        )
        return 0
    total = len(store.entries())
    bad = store.verify(quarantine=args.quarantine)
    for path, exc in bad:
        print(f"CORRUPT {path.name}: {exc.reason}", file=sys.stderr)
    verb = "quarantined" if args.quarantine else "damaged"
    print(f"{total} entr{'y' if total == 1 else 'ies'} checked, {len(bad)} {verb}")
    return 1 if bad else 0


def _cmd_fuzz(args) -> int:
    spec = get(args.workload)
    detectors = _checked_detectors(args.detector or ["hybrid"])
    if detectors is None:
        return 2
    faults = parse_fault_plan(args.fault_plan) if args.fault_plan else None
    on_progress = ProgressPrinter(sys.stderr) if args.progress else None
    if args.schedule != "adaptive":
        for flag, value in (
            ("--trial-budget", args.trial_budget),
            ("--time-budget", args.time_budget),
        ):
            if value is not None:
                print(
                    f"fuzz: {flag} only applies with --schedule adaptive",
                    file=sys.stderr,
                )
                return 2
    with ExitStack() as stack:
        registry = _enter_collecting(stack, args.metrics_out is not None)
        recorder = _enter_timeline(stack, args.timeline_out is not None)
        campaign = race_directed_test(
            spec.build(),
            detector=detectors[0] if len(detectors) == 1 else detectors,
            trials=args.trials,
            base_seed=args.seed,
            phase1_seeds=spec.phase1_seeds,
            max_steps=spec.max_steps,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
            stop_on_confirm=args.stop_on_confirm,
            deadline=args.deadline,
            retries=args.retries,
            checkpoint=args.checkpoint,
            faults=faults,
            memory_budget_mb=args.memory_budget,
            fast_mode=args.fast_mode,
            on_progress=on_progress,
            schedule=args.schedule,
            trial_budget=args.trial_budget,
            time_budget=args.time_budget,
        )
    timeline = recorder.snapshot() if recorder is not None else None
    if timeline is not None:
        write_timeline(
            args.timeline_out, timeline, command="fuzz", workload=spec.name
        )
    if registry is not None:
        # A checkpoint-resumed campaign accumulates into the prior report
        # rather than overwriting it (mirrors the journal semantics); the
        # timeline section dedup-unions the same way.
        write_run_report(
            args.metrics_out,
            registry.snapshot(),
            command="fuzz",
            workload=spec.name,
            merge_existing=args.checkpoint is not None,
            timeline=timeline,
        )
    print(campaign)
    if campaign.harmful_pairs:
        print()
        print("harmful pairs (exceptions attributed to the race):")
        for pair in campaign.harmful_pairs:
            verdict = campaign.verdict_for(pair)
            kinds = ", ".join(sorted(verdict.exceptions))
            print(f"  {pair}: {kinds}")
    # CI-gate exit discipline: 1 = a real race was confirmed, 3 = no race
    # confirmed but some task ended quarantined (verdicts incomplete),
    # 0 = clean campaign with full coverage.
    if campaign.real_pairs:
        return 1
    if campaign.quarantined:
        return 3
    return 0


def _cmd_replay(args) -> int:
    spec = get(args.workload)
    report = detect_races(
        spec.build(), seeds=spec.phase1_seeds, max_steps=spec.max_steps
    )
    pairs = report.pairs
    if not 0 <= args.pair < len(pairs):
        print(
            f"pair index {args.pair} out of range; {len(pairs)} pair(s):",
            file=sys.stderr,
        )
        for index, pair in enumerate(pairs):
            print(f"  [{index}] {pair}", file=sys.stderr)
        return 2
    pair = pairs[args.pair]
    seed = args.seed
    if args.find_crash:
        for candidate in range(args.seed, args.seed + args.find_crash):
            probe = replay_race(
                spec.build(), pair, seed=candidate, max_steps=spec.max_steps
            )
            if probe.outcome.crashes:
                seed = candidate
                break
        else:
            print(
                f"no crashing seed for {pair} in "
                f"[{args.seed}, {args.seed + args.find_crash})",
                file=sys.stderr,
            )
            return 1
    replayed = replay_race(
        spec.build(),
        pair,
        seed=seed,
        max_steps=spec.max_steps,
        trace_path=args.save_trace,
    )
    if args.save_trace:
        print(f"trace saved to {args.save_trace}", file=sys.stderr)
    print(f"replaying {spec.name}, pair {pair}, seed {seed}:")
    print()
    print(format_replay(replayed, pair=pair, max_events=args.max_events))
    return 0


def _cmd_stats(args) -> int:
    try:
        report = load_run_report(args.path)
    except (OSError, ValueError) as exc:
        print(f"cannot read run report {args.path}: {exc}", file=sys.stderr)
        return 2
    errors = validate_run_report(report)
    if errors:
        for error in errors:
            print(f"invalid run report: {error}", file=sys.stderr)
        return 2
    try:
        if args.prometheus:
            print(render_prometheus(report), end="")
        else:
            print(render_stats_table(report))
        sys.stdout.flush()
    except BrokenPipeError:
        # Downstream head/pager closed the pipe early; redirect stdout to
        # devnull so interpreter shutdown doesn't raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _load_timeline_or_report(path) -> dict | None:
    """Load a JSON file that is either a timeline document or a run
    report; prints the problem and returns None on failure."""
    try:
        data = load_timeline(path)
    except (OSError, ValueError) as exc:
        print(f"cannot read {path}: {exc}", file=sys.stderr)
        return None
    if not isinstance(data, dict):
        print(f"{path}: expected a JSON object", file=sys.stderr)
        return None
    if data.get("kind") == TIMELINE_KIND:
        return data
    errors = validate_run_report(data)
    if errors:
        for error in errors:
            print(f"invalid input: {error}", file=sys.stderr)
        return None
    return data


def _cmd_trace_export(args) -> int:
    import json as _json

    data = _load_timeline_or_report(args.path)
    if data is None:
        return 2
    if data.get("kind") != TIMELINE_KIND:
        # A run report only helps if it carries the v3 timeline section.
        section = data.get("timeline")
        if section is None:
            print(
                f"{args.path}: run report has no timeline section "
                "(re-run with --timeline-out, or pass its document here)",
                file=sys.stderr,
            )
            return 2
        data = section
    if args.out is not None:
        trace = write_chrome_trace(args.out, data)
        print(
            f"{len(trace['traceEvents'])} trace event(s) -> {args.out} "
            "(load in ui.perfetto.dev or chrome://tracing)",
            file=sys.stderr,
        )
    else:
        print(_json.dumps(chrome_trace(data), indent=1))
    return 0


def _cmd_dash(args) -> int:
    data = _load_timeline_or_report(args.path)
    if data is None:
        return 2
    html = render_dash(data)
    if args.out == "-":
        print(html, end="")
        return 0
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(html)
    print(f"dashboard -> {args.out}", file=sys.stderr)
    return 0


def _cmd_table1(args) -> int:
    from repro.harness import table1

    argv = list(args.rest)
    table1.main(argv)
    return 0


def _cmd_figure2(args) -> int:
    from repro.harness import figure2_prob

    figure2_prob.main(list(args.rest))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RaceFuzzer: race-directed random testing (PLDI 2008)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list benchmark workloads").set_defaults(
        handler=_cmd_list
    )

    run_parser = commands.add_parser("run", help="one passive execution")
    run_parser.add_argument("workload")
    run_parser.add_argument("--seed", type=int, default=0)
    run_parser.add_argument(
        "--scheduler", choices=("random", "default", "rapos"), default="random"
    )
    run_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a versioned JSON run report of the execution's metrics",
    )
    run_parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="FILE",
        help="record a campaign timeline document (feed it to "
        "`repro trace-export` or `repro dash`)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    detect_parser = commands.add_parser("detect", help="Phase 1 race detection")
    detect_parser.add_argument("workload")
    detect_parser.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME",
        help="detector to run (default hybrid); repeat the flag to run "
        "several — each seed then executes once with every requested "
        "detector attached, and the output has one section per detector. "
        "Names: hybrid, happens-before, lockset, shb, wcp, sample",
    )
    detect_parser.add_argument("--seeds", type=int, default=3)
    detect_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for seed runs (0 = one per core)",
    )
    detect_parser.add_argument(
        "--trace-dir",
        default=None,
        metavar="DIR",
        help="record-once trace cache: each seed executes at most once "
        "ever (across invocations); reports come from replaying the "
        "stored traces",
    )
    detect_parser.add_argument(
        "--store-quota",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="disk budget for --trace-dir (e.g. 512K, 10M, 1G); oldest "
        "entries are evicted first when the store outgrows it",
    )
    detect_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget (routes through the campaign "
        "supervisor, as for fuzz)",
    )
    detect_parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-attempts per failing task before quarantine (default 2)",
    )
    detect_parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, as for fuzz: comma-separated "
        "phase:index:kind[:attempts[:arg]] entries (kinds include crash, "
        "hang, malformed, memory_hog, disk_full, corrupt_trace)",
    )
    detect_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a versioned JSON run report of the campaign's metrics",
    )
    detect_parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="FILE",
        help="record a campaign timeline document (per-seed detect "
        "events, store hits/misses; feed it to `repro trace-export` or "
        "`repro dash`)",
    )
    detect_parser.set_defaults(handler=_cmd_detect)

    record_parser = commands.add_parser(
        "record", help="record executions into a trace store"
    )
    record_parser.add_argument("workload")
    record_parser.add_argument("--seeds", type=int, default=3)
    record_parser.add_argument(
        "--trace-dir", required=True, metavar="DIR", help="store directory"
    )
    record_parser.add_argument(
        "--compress", action="store_true", help="gzip trace files"
    )
    record_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for recording (0 = one per core)",
    )
    record_parser.set_defaults(handler=_cmd_record)

    analyze_parser = commands.add_parser(
        "analyze", help="run detectors offline over recorded traces"
    )
    analyze_parser.add_argument(
        "path", help="one trace file, or a trace-store directory"
    )
    analyze_parser.add_argument(
        "--detectors",
        default="hybrid",
        metavar="NAMES",
        help="comma-separated detector names (hybrid, happens-before, "
        "lockset, shb, wcp, sample); all analyses share one streamed "
        "pass per trace",
    )
    analyze_parser.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME",
        help="detector to run (repeatable); overrides --detectors",
    )
    analyze_parser.add_argument(
        "--show-trace",
        action="store_true",
        help="also render each trace's interleaving diagram",
    )
    analyze_parser.add_argument("--max-events", type=int, default=200)
    analyze_parser.set_defaults(handler=_cmd_analyze)

    fuzz_parser = commands.add_parser("fuzz", help="two-phase RaceFuzzer campaign")
    fuzz_parser.add_argument("workload")
    fuzz_parser.add_argument(
        "--detector",
        action="append",
        default=None,
        metavar="NAME",
        help="Phase-1 detector (default hybrid); repeat the flag to feed "
        "Phase 2 the union of several detectors' candidate pairs from "
        "the same Phase-1 executions",
    )
    fuzz_parser.add_argument("--trials", type=int, default=100)
    fuzz_parser.add_argument(
        "--schedule",
        choices=("fixed", "adaptive"),
        default="fixed",
        help="Phase-2 trial allocation policy: 'fixed' spends exactly "
        "--trials per pair (the paper's protocol); 'adaptive' reallocates "
        "a global budget toward pairs whose posterior race probability is "
        "still undecided, early-stopping hopeless ones (deterministic per "
        "--seed)",
    )
    fuzz_parser.add_argument(
        "--trial-budget",
        type=int,
        default=None,
        metavar="N",
        help="adaptive only: global cap on total Phase-2 trials across "
        "all pairs (default: --trials per pair)",
    )
    fuzz_parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="adaptive only: wall-clock cap on Phase 2; no new chunks are "
        "scheduled past it (already-running chunks finish)",
    )
    fuzz_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for Phase-2 trials (and the adaptive schedule's "
        "Thompson draws)",
    )
    fuzz_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for both phases (0 = one per core)",
    )
    fuzz_parser.add_argument(
        "--chunk-size",
        type=int,
        default=25,
        help="Phase-2 trials per worker task",
    )
    fuzz_parser.add_argument(
        "--fast-mode",
        action="store_true",
        help="Phase-2 throughput lever: emit MemEvents only for the racing "
        "statements themselves (sync/thread events unaffected; verdicts "
        "identical either way)",
    )
    fuzz_parser.add_argument(
        "--stop-on-confirm",
        action="store_true",
        help="abandon a pair's remaining trials once one confirms the race",
    )
    fuzz_parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-task wall-clock budget; a chunk that overruns is retried "
        "and eventually quarantined (distinct from the abstract max_steps)",
    )
    fuzz_parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="re-attempts per failing task before quarantine (default 2)",
    )
    fuzz_parser.add_argument(
        "--memory-budget",
        type=float,
        default=None,
        metavar="MIB",
        help="per-task resident-set growth budget in MiB; a task that "
        "exceeds it fails with kind 'memory' (retried, then quarantined)",
    )
    fuzz_parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="append-only JSONL journal; a killed campaign restarted with "
        "the same path re-executes only its unfinished tasks",
    )
    fuzz_parser.add_argument(
        "--fault-plan",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection for resilience testing: "
        "comma-separated phase:index:kind[:attempts[:arg]] entries "
        "(arg = MiB for memory_hog, seconds otherwise), e.g. "
        "'fuzz:3:crash,fuzz:7:hang:1:0.5,fuzz:9:memory_hog:1:64'",
    )
    fuzz_parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a versioned JSON run report of the campaign's metrics; "
        "with --checkpoint, a resumed run merges into the prior report",
    )
    fuzz_parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="FILE",
        help="record the campaign timeline: trial/chunk spans, schedule "
        "rounds with their Thompson draws, per-pair posterior updates, "
        "health transitions (feed it to `repro trace-export` or "
        "`repro dash`); also attaches the v3 timeline section to "
        "--metrics-out reports",
    )
    fuzz_parser.add_argument(
        "--progress",
        action="store_true",
        help="print throttled progress lines (settled/scheduled chunks, "
        "confirms, ETA over remaining scheduled work) to stderr",
    )
    fuzz_parser.set_defaults(handler=_cmd_fuzz)

    replay_parser = commands.add_parser(
        "replay", help="replay one (pair, seed) with the interleaving"
    )
    replay_parser.add_argument("workload")
    replay_parser.add_argument("--pair", type=int, default=0, help="pair index")
    replay_parser.add_argument("--seed", type=int, default=0)
    replay_parser.add_argument("--max-events", type=int, default=200)
    replay_parser.add_argument(
        "--save-trace",
        default=None,
        metavar="PATH",
        help="also record the replayed execution to a trace file "
        "(re-render later with `analyze --show-trace`)",
    )
    replay_parser.add_argument(
        "--find-crash",
        type=int,
        nargs="?",
        const=100,
        default=0,
        metavar="N",
        help="scan up to N seeds (default 100) for an error-revealing "
        "schedule and replay that one",
    )
    replay_parser.set_defaults(handler=_cmd_replay)

    store_parser = commands.add_parser(
        "store", help="trace-store maintenance (gc, verify)"
    )
    store_parser.add_argument(
        "action",
        choices=("gc", "verify"),
        help="gc = evict oldest entries past the budget; verify = "
        "integrity-check every entry",
    )
    store_parser.add_argument(
        "--trace-dir", required=True, metavar="DIR", help="store directory"
    )
    store_parser.add_argument(
        "--quota",
        type=_parse_size,
        default=None,
        metavar="SIZE",
        help="byte budget for gc (e.g. 512K, 10M, 1G)",
    )
    store_parser.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="entry-count budget for gc",
    )
    store_parser.add_argument(
        "--quarantine",
        action="store_true",
        help="verify only: move damaged entries to the quarantine sidecar "
        "instead of leaving them in place",
    )
    store_parser.set_defaults(handler=_cmd_store)

    stats_parser = commands.add_parser(
        "stats", help="render a --metrics-out run report"
    )
    stats_parser.add_argument("path", help="run-report JSON file")
    stats_parser.add_argument(
        "--prometheus",
        action="store_true",
        help="emit Prometheus text exposition format instead of tables",
    )
    stats_parser.set_defaults(handler=_cmd_stats)

    export_parser = commands.add_parser(
        "trace-export",
        help="render a timeline as Chrome trace-event JSON (Perfetto)",
    )
    export_parser.add_argument(
        "path",
        help="a --timeline-out document, or a v3 run report carrying a "
        "timeline section",
    )
    export_parser.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the trace JSON here instead of stdout",
    )
    export_parser.set_defaults(handler=_cmd_trace_export)

    dash_parser = commands.add_parser(
        "dash", help="render a self-contained HTML campaign dashboard"
    )
    dash_parser.add_argument(
        "path",
        help="a --metrics-out run report or a --timeline-out document",
    )
    dash_parser.add_argument(
        "--out",
        default="dash.html",
        metavar="FILE",
        help="output HTML file (default dash.html; '-' for stdout)",
    )
    dash_parser.set_defaults(handler=_cmd_dash)

    table_parser = commands.add_parser("table1", help="regenerate Table 1")
    table_parser.add_argument("rest", nargs=argparse.REMAINDER)
    table_parser.set_defaults(handler=_cmd_table1)

    figure_parser = commands.add_parser("figure2", help="probability sweep")
    figure_parser.add_argument("rest", nargs=argparse.REMAINDER)
    figure_parser.set_defaults(handler=_cmd_figure2)

    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # The harness commands own their argument parsing; hand over before
    # argparse can trip on their leading-dash options (an argparse
    # REMAINDER quirk with subparsers).
    if argv and argv[0] == "table1":
        from repro.harness import table1

        table1.main(argv[1:])
        return 0
    if argv and argv[0] == "figure2":
        from repro.harness import figure2_prob

        figure2_prob.main(argv[1:])
        return 0
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
