"""Experiment E7: the Section 3.2 probability claim, measured.

Sweeps the Figure 2 padding length and reports, per padding value:

* RaceFuzzer's probability of creating the race (paper claim: 1.0,
  independent of padding) and of reaching ERROR (claim: 0.5);
* the simple random scheduler's probability of bringing the two racing
  statements temporally adjacent, and of reaching ERROR (claim: decays
  towards 0 as padding grows).

Run as a script::

    python -m repro.harness.figure2_prob [--runs N] [--paddings 0,5,10,...]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import RandomScheduler, fuzz_pair, pool_map
from repro.runtime import Execution, EventTrace, MemEvent
from repro.workloads import figure2

from .render import render_table


@dataclass
class ProbabilityPoint:
    """One padding value's measurements."""

    padding: int
    rf_race_probability: float
    rf_error_probability: float
    simple_adjacent_probability: float
    simple_error_probability: float


def _passive_run_stats(padding: int, seed: int) -> tuple[bool, bool]:
    """(racing statements adjacent?, ERROR reached?) for one passive run."""
    trace = EventTrace()
    program = figure2.build(padding)
    execution = Execution(program, seed=seed, observers=[trace])
    result = execution.run(RandomScheduler(preemption="every"))
    steps = {}
    for event in trace.of_type(MemEvent):
        if event.stmt in (figure2.STMT_8, figure2.STMT_10):
            steps[event.stmt.site] = event.step
    adjacent = (
        len(steps) == 2 and abs(steps["8"] - steps["10"]) == 1
    )
    errored = any(c.error_type == "AssertionViolation" for c in result.crashes)
    return adjacent, errored


def measure_point(padding: int, runs: int = 100) -> ProbabilityPoint:
    outcomes = fuzz_pair(
        figure2.build(padding),
        figure2.RACING_PAIR,
        seeds=range(runs),
    )
    rf_created = sum(1 for outcome in outcomes if outcome.created)
    rf_errors = sum(
        1
        for outcome in outcomes
        if any(c.error_type == "AssertionViolation" for c in outcome.crashes)
    )
    adjacent = errored = 0
    for seed in range(runs):
        was_adjacent, was_error = _passive_run_stats(padding, seed)
        adjacent += was_adjacent
        errored += was_error
    return ProbabilityPoint(
        padding=padding,
        rf_race_probability=rf_created / runs,
        rf_error_probability=rf_errors / runs,
        simple_adjacent_probability=adjacent / runs,
        simple_error_probability=errored / runs,
    )


def _measure_point_task(payload: tuple[int, int]) -> ProbabilityPoint:
    """Worker entrypoint: one padding value's full measurement."""
    padding, runs = payload
    return measure_point(padding, runs=runs)


def sweep(
    paddings=(0, 2, 5, 10, 20, 40), runs: int = 100, jobs: int = 1
) -> list[ProbabilityPoint]:
    """Measure every padding value; ``jobs=N`` sweeps points concurrently.

    Points are independent (each builds its own program and seeds runs
    identically), so the series matches the serial sweep exactly.
    """
    return pool_map(
        _measure_point_task, [(padding, runs) for padding in paddings], jobs=jobs
    )


def render_sweep(points: list[ProbabilityPoint]) -> str:
    headers = [
        "padding", "RF P(race)", "RF P(ERROR)",
        "simple P(adjacent)", "simple P(ERROR)",
    ]
    rows = [
        [
            point.padding,
            point.rf_race_probability,
            point.rf_error_probability,
            point.simple_adjacent_probability,
            point.simple_error_probability,
        ]
        for point in points
    ]
    return render_table(
        headers, rows,
        title="Figure 2 / Section 3.2: race-creation probability vs padding",
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=100)
    parser.add_argument("--paddings", default="0,2,5,10,20,40")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="sweep padding points in N worker processes (0 = per core)",
    )
    args = parser.parse_args(argv)
    paddings = tuple(int(p) for p in args.paddings.split(","))
    print(render_sweep(sweep(paddings, runs=args.runs, jobs=args.jobs)))


if __name__ == "__main__":
    main()
