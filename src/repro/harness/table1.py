"""Regenerate the paper's Table 1 over our workload suite (experiments E1-E5).

For each benchmark this measures, with the same protocol as Section 5.2:

* columns 3-5 — mean wall-clock of a Normal run (no instrumentation,
  sync-only preemption), a Hybrid-instrumented run, and a RaceFuzzer run;
* column 6  — distinct potentially racing pairs from Phase 1;
* column 7  — pairs RaceFuzzer proved real (created at least once);
* column 8  — the paper's "known" count, echoed for comparison;
* column 9  — distinct pairs whose race raised an exception;
* column 10 — exception types seen under the passive default scheduler;
* column 11 — mean per-pair probability of creating the race
  (the paper ran RaceFuzzer 100 times per pair; so does this, unless
  ``trials`` is overridden).

Run as a script for the full table::

    python -m repro.harness.table1 [--trials N] [--quick] [names...]
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field

from repro.core import (
    RandomScheduler,
    baseline_exceptions,
    detect_races,
    fuzz_races,
    pool_map,
)
from repro.core.results import CampaignReport
from repro.detectors import HybridRaceDetector
from repro.obs import (
    MetricsSnapshot,
    TimelineSnapshot,
    collecting,
    maybe_registry,
    maybe_timeline,
    recording_timeline,
)
from repro.runtime import Execution
from repro.workloads.base import WorkloadSpec, table1_workloads

from .render import render_table


@dataclass
class Table1Row:
    """One measured row, next to its paper counterpart."""

    spec: WorkloadSpec
    sloc: int
    normal_s: float
    hybrid_s: float
    racefuzzer_s: float
    potential: int
    real: int
    harmful: int
    exceptions_simple: int
    probability: float | None
    deadlocks_found: int
    campaign: CampaignReport = field(repr=False, default=None)
    #: the row's own metrics snapshot, when the table run collects metrics
    #: (rows measure in worker processes, so each carries its share home).
    metrics: MetricsSnapshot | None = field(repr=False, default=None)
    #: the row's timeline snapshot, under the same worker-carries-it-home
    #: discipline as ``metrics``.
    timeline: TimelineSnapshot | None = field(repr=False, default=None)

    @property
    def name(self) -> str:
        return self.spec.name


def _count_module_sloc(spec: WorkloadSpec) -> int:
    """Non-blank source lines of the workload module (our SLOC column)."""
    module = inspect.getmodule(spec.build)
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError):
        return 0
    return sum(1 for line in source.splitlines() if line.strip())


def _time_normal(spec: WorkloadSpec, runs: int) -> float:
    start = time.perf_counter()
    for seed in range(runs):
        Execution(spec.build(), seed=seed, max_steps=spec.max_steps).run(
            RandomScheduler(preemption="sync")
        )
    return (time.perf_counter() - start) / runs


def _time_hybrid(spec: WorkloadSpec, runs: int) -> float:
    start = time.perf_counter()
    for seed in range(runs):
        detector = HybridRaceDetector()
        Execution(
            spec.build(), seed=seed, observers=[detector], max_steps=spec.max_steps
        ).run(RandomScheduler(preemption="every"))
    return (time.perf_counter() - start) / runs


def measure_row(
    spec: WorkloadSpec,
    *,
    trials: int | None = None,
    timing_runs: int = 5,
    baseline_runs: int = 100,
    checkpoint: str | None = None,
    schedule: str | None = None,
    trial_budget: int | None = None,
    time_budget: float | None = None,
) -> Table1Row:
    """Run the full two-phase protocol for one benchmark.

    ``checkpoint`` journals completed Phase-2 chunks to an append-only
    JSONL file (chunk keys embed the workload name, so all rows can
    share one journal); a killed table run restarted with the same path
    skips the fuzzing work it already finished.

    ``schedule``/``trial_budget``/``time_budget`` pick the Phase-2
    trial-allocation policy (see :mod:`repro.core.schedule`).  The
    default ``fixed`` schedule is the paper's protocol and the only one
    whose probability column is comparable to Table 1 — the adaptive
    schedule deliberately truncates hopeless pairs' trial counts, so use
    it for race *discovery* runs, not for reproducing the paper's
    numbers.
    """
    trials = trials if trials is not None else spec.trials
    phase1 = detect_races(
        spec.build(), seeds=spec.phase1_seeds, max_steps=spec.max_steps
    )
    verdicts = fuzz_races(
        spec.build(),
        phase1.pairs,
        trials=trials,
        max_steps=spec.max_steps,
        checkpoint=checkpoint,
        schedule=schedule,
        trial_budget=trial_budget,
        time_budget=time_budget,
    )
    campaign = CampaignReport(
        program=spec.name, phase1=phase1, verdicts=verdicts
    )
    simple = baseline_exceptions(
        spec.build(), runs=baseline_runs, scheduler="default",
        max_steps=spec.max_steps,
    )
    rf_wall = sum(v.total_wall for v in verdicts.values())
    rf_trials = sum(v.trials for v in verdicts.values())
    deadlocks = sum(v.deadlocks for v in verdicts.values())
    return Table1Row(
        spec=spec,
        sloc=_count_module_sloc(spec),
        normal_s=_time_normal(spec, timing_runs),
        hybrid_s=_time_hybrid(spec, timing_runs),
        racefuzzer_s=rf_wall / rf_trials if rf_trials else 0.0,
        potential=campaign.potential_pairs,
        real=len(campaign.real_pairs),
        harmful=len(campaign.harmful_pairs),
        exceptions_simple=len([t for t in simple if t != "Deadlock"]),
        probability=campaign.mean_probability() if campaign.real_pairs else None,
        deadlocks_found=deadlocks,
        campaign=campaign,
    )


def _measure_row_task(payload: tuple) -> Table1Row:
    """Worker entrypoint: measure one row, addressed by workload name.

    The spec is dropped from the returned row because some registry specs
    hold closure build functions that cannot cross the process boundary;
    the parent reattaches its own copy.  With ``collect`` the row measures
    under its own metrics registry and carries the snapshot home — workers
    don't inherit the parent's registry, so this is how per-row metrics
    cross the process boundary.
    """
    from contextlib import ExitStack

    from repro.workloads.base import get

    name, kwargs, collect, timed = payload
    with ExitStack() as stack:
        registry = stack.enter_context(collecting()) if collect else None
        recorder = (
            stack.enter_context(recording_timeline()) if timed else None
        )
        row = measure_row(get(name), **kwargs)
    if registry is not None:
        row.metrics = registry.snapshot()
    if recorder is not None:
        row.timeline = recorder.snapshot()
    row.spec = None
    return row


def build_table(
    specs: list[WorkloadSpec] | None = None,
    *,
    jobs: int = 1,
    collect_metrics: bool = False,
    on_progress=None,
    **kwargs,
) -> list[Table1Row]:
    """Measure every row; ``jobs=N`` measures rows in worker processes.

    Row-level parallelism keeps each row's protocol (and its seed
    discipline) untouched, so the numbers match a serial run — apart from
    the wall-clock columns, which measure a now-contended machine.

    ``collect_metrics`` (implied by an active registry) attaches a
    :class:`~repro.obs.MetricsSnapshot` to every row and merges them all
    into the caller's registry, in row order, so serial and parallel
    table runs report identical counters.  ``on_progress(done, total)``
    fires as rows finish.
    """
    specs = specs if specs is not None else table1_workloads()
    collect = collect_metrics or maybe_registry() is not None
    timed = maybe_timeline() is not None
    payloads = [(spec.name, kwargs, collect, timed) for spec in specs]
    rows = pool_map(
        _measure_row_task, payloads, jobs=jobs, on_progress=on_progress
    )
    parent = maybe_registry()
    parent_tl = maybe_timeline()
    for spec, row in zip(specs, rows):
        row.spec = spec
        if parent is not None and row.metrics is not None:
            parent.merge_snapshot(row.metrics)
        if parent_tl is not None and row.timeline is not None:
            parent_tl.merge_snapshot(row.timeline)
    return rows


def render_measured(rows: list[Table1Row]) -> str:
    headers = [
        "Program", "SLOC", "Normal(s)", "Hybrid(s)", "RF(s)",
        "Hybrid#", "RF(real)", "#Exc RF", "Simple", "Prob",
    ]
    table = [
        [
            row.name, row.sloc,
            f"{row.normal_s:.4f}", f"{row.hybrid_s:.4f}",
            f"{row.racefuzzer_s:.4f}",
            row.potential, row.real, row.harmful,
            row.exceptions_simple, row.probability,
        ]
        for row in rows
    ]
    return render_table(headers, table, title="Table 1 (measured on this machine)")


def render_comparison(rows: list[Table1Row]) -> str:
    """Paper-vs-measured, the EXPERIMENTS.md payload."""
    headers = [
        "Program",
        "potential p/m", "real p/m", "#exc p/m", "simple p/m", "prob p/m",
        "hybrid/normal p/m", "rf/normal p/m",
    ]
    table = []
    for row in rows:
        paper = row.spec.paper
        if paper is None:
            # Workloads outside the paper's benchmark suite (figure1,
            # philosophers, ...) have no row to compare against.
            continue
        hybrid_ratio_paper = (
            f"{paper.hybrid_s / paper.normal_s:.1f}"
            if paper.hybrid_s and paper.normal_s
            else "-"
        )
        rf_ratio_paper = (
            f"{paper.racefuzzer_s / paper.normal_s:.1f}"
            if paper.racefuzzer_s and paper.normal_s
            else "-"
        )
        table.append(
            [
                row.name,
                f"{paper.hybrid_races}/{row.potential}",
                f"{paper.real_races}/{row.real}",
                f"{paper.exceptions_rf}/{row.harmful}",
                f"{paper.exceptions_simple}/{row.exceptions_simple}",
                f"{paper.probability if paper.probability is not None else '-'}"
                f"/{f'{row.probability:.2f}' if row.probability is not None else '-'}",
                f"{hybrid_ratio_paper}/{row.hybrid_s / row.normal_s:.1f}",
                f"{rf_ratio_paper}/{row.racefuzzer_s / row.normal_s:.1f}",
            ]
        )
    return render_table(
        headers, table, title="Paper vs measured (p/m = paper/measured)"
    )


def main(argv: list[str] | None = None) -> None:
    import argparse
    from contextlib import ExitStack

    from repro.obs import (
        ProgressPrinter,
        ProgressUpdate,
        write_run_report,
        write_timeline,
    )
    from repro.workloads.base import get

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("names", nargs="*", help="benchmarks (default: all)")
    parser.add_argument("--trials", type=int, default=None)
    parser.add_argument(
        "--quick", action="store_true", help="20 trials, 20 baseline runs"
    )
    parser.add_argument(
        "--schedule",
        choices=("fixed", "adaptive"),
        default="fixed",
        help="Phase-2 trial allocation policy; 'fixed' reproduces the "
        "paper's per-pair protocol (Table 1 numbers are only comparable "
        "under it), 'adaptive' spends a global budget by expected yield",
    )
    parser.add_argument(
        "--trial-budget",
        type=int,
        default=None,
        metavar="N",
        help="adaptive only: global trial cap per row (default: trials "
        "per pair)",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="adaptive only: wall-clock cap on each row's Phase 2",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="measure benchmark rows in N worker processes (0 = per core)",
    )
    parser.add_argument(
        "--checkpoint",
        default=None,
        metavar="PATH",
        help="JSONL journal of completed fuzzing chunks; restart with the "
        "same path to resume a killed table run",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write a versioned JSON run report of the whole table run; "
        "with --checkpoint, a resumed run merges into the prior report",
    )
    parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="FILE",
        help="record the whole table run's campaign timeline (feed it to "
        "`repro trace-export` or `repro dash`)",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print a progress line to stderr as each row finishes",
    )
    args = parser.parse_args(argv)

    kwargs = {}
    if args.quick:
        kwargs = {"trials": 20, "baseline_runs": 20, "timing_runs": 2}
    if args.trials is not None:
        kwargs["trials"] = args.trials
    if args.checkpoint is not None:
        kwargs["checkpoint"] = args.checkpoint
    if args.schedule != "adaptive" and (
        args.trial_budget is not None or args.time_budget is not None
    ):
        parser.error("--trial-budget/--time-budget require --schedule adaptive")
    if args.schedule != "fixed":
        kwargs["schedule"] = args.schedule
        kwargs["trial_budget"] = args.trial_budget
        kwargs["time_budget"] = args.time_budget
    specs = [get(name) for name in args.names] if args.names else None

    on_progress = None
    if args.progress:
        printer = ProgressPrinter()
        started = time.perf_counter()

        def on_progress(done: int, total: int) -> None:
            printer(
                ProgressUpdate(
                    phase="table1",
                    done=done,
                    total=total,
                    elapsed_s=time.perf_counter() - started,
                )
            )

    with ExitStack() as stack:
        registry = (
            stack.enter_context(collecting())
            if args.metrics_out is not None
            else None
        )
        recorder = (
            stack.enter_context(recording_timeline())
            if args.timeline_out is not None
            else None
        )
        rows = build_table(
            specs, jobs=args.jobs, on_progress=on_progress, **kwargs
        )
    timeline = recorder.snapshot() if recorder is not None else None
    if timeline is not None:
        write_timeline(args.timeline_out, timeline, command="table1")
    if registry is not None:
        write_run_report(
            args.metrics_out,
            registry.snapshot(),
            command="table1",
            merge_existing=args.checkpoint is not None,
            timeline=timeline,
        )
    print(render_measured(rows))
    print()
    print(render_comparison(rows))


if __name__ == "__main__":
    main()
