"""Plain-text table rendering for the experiment harness."""

from __future__ import annotations

from typing import Any, Sequence


def format_cell(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned monospace table (right-aligned data columns)."""
    cells = [[format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]

    def line(parts: Sequence[str], align_left_first: bool = True) -> str:
        rendered = []
        for i, part in enumerate(parts):
            if i == 0 and align_left_first:
                rendered.append(part.ljust(widths[i]))
            else:
                rendered.append(part.rjust(widths[i]))
        return "  ".join(rendered)

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in cells)
    return "\n".join(out)
