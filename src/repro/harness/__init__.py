"""Experiment harness: regenerates every table and figure of the paper.

* :mod:`repro.harness.table1` — Table 1 (experiments E1-E5), runnable as
  ``python -m repro.harness.table1``;
* :mod:`repro.harness.figure2_prob` — the Section 3.2 probability sweep
  (E7), runnable as ``python -m repro.harness.figure2_prob``;
* :mod:`repro.harness.render` — shared text-table rendering.

Import the submodules directly (keeping this package namespace empty lets
``python -m repro.harness.<module>`` run without double-import warnings).
"""
