"""``weblech`` — multi-threaded web-site mirroring tool (Table 1, row 7).

Spider threads pull URLs from a frontier queue and store page contents.
The row's shape — 2 real races, 1 of them harmful, and an exception the
passive scheduler can also stumble into — comes from:

* a **harmful real race** in the frontier's "optimized" fast path: when the
  queue looks non-empty, spiders dequeue with unsynchronized head/tail
  reads (a real weblech-era pattern).  Two spiders racing on the same head
  slot can both claim it; the loser dequeues an empty cell and throws
  :class:`NoSuchElementError`.
* a **benign real race** on the ``downloaded`` statistics counter
  (unsynchronized read-modify-write, lost updates tolerated).

Page-content cells are published via a locked counter — correct but
hybrid-invisible, supplying the row's false alarms.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedCells, SharedVar, join_all, ops, spawn_all
from repro.runtime.errors import NoSuchElementError

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def _download(url_id: int) -> int:
    """Deterministic stand-in for fetching a page body."""
    return (url_id * 8191 + 13) % 251


def build(nspiders: int = 2, urls: int = 6) -> Program:
    def make():
        frontier = SharedCells("frontier.cells")
        head = SharedVar("frontier.head", 0)
        tail = SharedVar("frontier.tail", 0)
        frontier_lock = Lock("frontier.lock")
        pages = SharedCells("pages")
        stored = SharedVar("pagesStored", 0)
        store_lock = Lock("storeLock")
        stop_reporting = SharedVar("stopReporting", 0)
        downloaded = SharedVar("downloaded", 0)  # benign racy counter

        def enqueue_all():
            yield frontier_lock.acquire()
            for url_id in range(urls):
                slot = yield tail.read()
                yield frontier.write(slot, url_id)
                yield tail.write(slot + 1)
            yield frontier_lock.release()

        def spider():
            while True:
                # The "fast path": unsynchronized emptiness probe and pop.
                first = yield head.read()
                last = yield tail.read()
                if first >= last:
                    return
                url_id = yield frontier.read(first)
                yield head.write(first + 1)  # racy claim!
                if url_id is None:
                    raise NoSuchElementError(
                        "two spiders claimed the same frontier slot"
                    )
                yield frontier.write(first, None)  # consume the slot
                body = _download(url_id)
                # Store the page under the store lock, publish via counter.
                yield store_lock.acquire()
                index = yield stored.read()
                yield pages.write(index, body)
                yield stored.write(index + 1)
                yield store_lock.release()
                # Benign racy statistics.
                count = yield downloaded.read()
                yield downloaded.write(count + 1)

        def reporter():
            while True:
                yield store_lock.acquire()
                done = yield stored.read()
                stopping = yield stop_reporting.read()
                yield store_lock.release()
                if done >= urls or stopping:
                    break
                yield ops.sleep(2)
            total = 0
            for index in range(done):
                body = yield pages.read(index)
                total += body if body is not None else 0
            yield ops.check(done == 0 or total > 0, "mirror came out empty")

        def main():
            yield from enqueue_all()
            spiders = yield from spawn_all(
                [spider for _ in range(nspiders)], prefix="spider"
            )
            report_thread = yield ops.spawn(reporter, name="reporter")
            yield from join_all(spiders)
            # Spiders may have crashed mid-mirror; tell the reporter to wrap
            # up with whatever made it to the store.
            yield store_lock.acquire()
            yield stop_reporting.write(1)
            yield store_lock.release()
            yield ops.join(report_thread)

        return main()

    return Program(make, name="weblech")


SPEC = register(
    WorkloadSpec(
        name="weblech",
        build=build,
        description="Site mirror: racy frontier fast path + racy statistics",
        paper=PaperRow(
            sloc=35_175,
            normal_s=0.91,
            hybrid_s=1.92,
            racefuzzer_s=1.36,
            hybrid_races=27,
            real_races=2,
            known_races=1,
            exceptions_rf=1,
            exceptions_simple=1,
            probability=0.83,
        ),
        truth=GroundTruth(
            real_pairs=6,
            harmful_pairs=3,
            notes=(
                "six real pairs across the frontier fast path (head "
                "read/write and write/write, slot read vs consume-write, "
                "consume write/write) and the downloaded counter "
                "(read/write, write/write); the three frontier pairs whose "
                "mis-resolution double-claims a slot throw "
                "NoSuchElementError.  Page cells are locked-counter false "
                "alarms."
            ),
        ),
        kind="closed",
    )
)
