"""Figure 2 of the paper: a hard-to-reproduce real race.

::

    Initially: x = 0
    thread1 {                   thread2 {
    1. lock(L);                 10. x = 1;
    2. f1();                    11. lock(L);
    3. f2();                    12. f6();
    4. f3();                    13. unlock(L);
    5. f4();                    }
    6. f5();
    7. unlock(L);
    8. if (x == 0)
    9.   ERROR;
    }

The race is between statement 8 (the read of ``x``) and statement 10 (the
write).  Under a passive scheduler the probability of executing 8 and 10
temporally next to each other — and especially of 10 executing *after* 8,
reaching ERROR — decays with the amount of padding work ``f1..f5``.
Section 3.2 argues RaceFuzzer creates the race with probability 1 and
reaches ERROR with probability 0.5, *independent of the padding*.  The
``padding`` parameter makes that claim measurable (benchmark E7).
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedVar, join_all, ops, spawn_all
from repro.runtime.errors import AssertionViolation
from repro.runtime.statement import Statement, StatementPair

from .base import GroundTruth, WorkloadSpec, register

STMT_8 = Statement(label="8")  # thread1: read x after the padded critical section
STMT_10 = Statement(label="10")  # thread2: x = 1

RACING_PAIR = StatementPair(STMT_8, STMT_10)


def build(padding: int = 5) -> Program:
    """Figure 2 with ``padding`` filler statements inside the lock region."""

    def make():
        x = SharedVar("x", 0)
        lock = Lock("L")

        def thread1():
            yield lock.acquire(label="1")
            for _ in range(padding):  # f1() .. f5()
                yield ops.yield_point()
            yield lock.release(label="7")
            if (yield x.read(label="8")) == 0:
                raise AssertionViolation("ERROR")  # statement 9

        def thread2():
            yield x.write(1, label="10")
            yield lock.acquire(label="11")
            yield ops.yield_point()  # f6()
            yield lock.release(label="13")

        def main():
            threads = yield from spawn_all([thread1, thread2], prefix="thread")
            yield from join_all(threads)

        return main()

    return Program(make, name=f"figure2(padding={padding})")


SPEC = register(
    WorkloadSpec(
        name="figure2",
        build=build,
        description="Paper Figure 2: RF hits the race regardless of padding",
        truth=GroundTruth(
            real_pairs=1,
            harmful_pairs=1,
            notes="(8,10) on x is real; ERROR reached iff 8 resolves before 10.",
        ),
        kind="example",
    )
)
