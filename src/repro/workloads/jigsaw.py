"""``jigsaw`` — W3C's Jigsaw web server, as a request-serving kernel
(Table 1, row 9).

The paper's largest benchmark: hundreds of potential races, a few dozen
real ones, none of which threw.  Our kernel reproduces the architecture at
reduced scale — handler threads pull requests from a locked accept queue
and serve three resource types through *separately written* code paths
(static files, CGI, directory listings), because Table 1 counts distinct
statement pairs and Jigsaw's bulk comes from many distinct modules:

* every resource type caches its responses with the flag-under-lock
  publication pattern → a bank of hybrid **false alarms**;
* every resource type also bumps unsynchronized telemetry — global hit
  counter, per-type byte gauges, a ``last_client`` tag — and the admin
  thread samples all of it bare → many **real but benign** races;
* the admin thread toggles ``log_verbose`` bare while handlers read it
  bare → more real benign pairs.

Nothing throws: the row's 0 exceptions.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedCells, SharedVar, join_all, ops, spawn_all

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def build(nhandlers: int = 3, requests: int = 9) -> Program:
    def make():
        # Accept queue (properly locked).
        queue = SharedCells("accept.queue")
        queue_head = SharedVar("accept.head", 0)
        queue_tail = SharedVar("accept.tail", 0)
        queue_lock = Lock("accept.lock")

        # Per-resource-type response caches: bare cells + locked counters.
        static_cache = SharedCells("static.cache")
        static_ready = SharedVar("static.ready", 0)
        static_lock = Lock("static.lock")
        cgi_cache = SharedCells("cgi.cache")
        cgi_ready = SharedVar("cgi.ready", 0)
        cgi_lock = Lock("cgi.lock")
        dir_cache = SharedCells("dir.cache")
        dir_ready = SharedVar("dir.ready", 0)
        dir_lock = Lock("dir.lock")

        # Unsynchronized telemetry (the real, benign races).
        hits = SharedVar("stats.hits", 0)
        static_bytes = SharedVar("stats.staticBytes", 0)
        cgi_bytes = SharedVar("stats.cgiBytes", 0)
        last_client = SharedVar("stats.lastClient", -1)
        log_verbose = SharedVar("config.logVerbose", 0)

        def accept_all():
            yield queue_lock.acquire()
            for request in range(requests):
                slot = yield queue_tail.read()
                yield queue.write(slot, request)
                yield queue_tail.write(slot + 1)
            yield queue_lock.release()

        def next_request():
            yield queue_lock.acquire()
            first = yield queue_head.read()
            last = yield queue_tail.read()
            if first >= last:
                yield queue_lock.release()
                return None
            request = yield queue.read(first)
            yield queue_head.write(first + 1)
            yield queue_lock.release()
            return request

        def serve_static(request):
            body = (request * 53 + 7) % 199
            yield static_cache.write(request, body)  # bare (false alarm)
            yield static_lock.acquire()
            ready = yield static_ready.read()
            yield static_ready.write(ready + 1)
            yield static_lock.release()
            size = yield static_bytes.read()  # racy gauge (real, benign)
            yield static_bytes.write(size + body)
            return body

        def serve_cgi(request):
            body = (request * 101 + 31) % 211
            yield cgi_cache.write(request, body)  # bare (false alarm)
            yield cgi_lock.acquire()
            ready = yield cgi_ready.read()
            yield cgi_ready.write(ready + 1)
            yield cgi_lock.release()
            size = yield cgi_bytes.read()  # racy gauge (real, benign)
            yield cgi_bytes.write(size + body)
            return body

        def serve_directory(request):
            body = (request * 29 + 3) % 191
            yield dir_cache.write(request, body)  # bare (false alarm)
            yield dir_lock.acquire()
            ready = yield dir_ready.read()
            yield dir_ready.write(ready + 1)
            yield dir_lock.release()
            return body

        def handler(handler_id):
            while True:
                request = yield from next_request()
                if request is None:
                    return
                verbose = yield log_verbose.read()  # racy config read
                if request % 3 == 0:
                    yield from serve_static(request)
                elif request % 3 == 1:
                    yield from serve_cgi(request)
                else:
                    yield from serve_directory(request)
                count = yield hits.read()  # racy hit counter
                yield hits.write(count + 1)
                yield last_client.write(handler_id)  # racy w/w tag
                if verbose:
                    yield ops.yield_point()  # "log line"

        def admin():
            for toggle in range(3):
                yield log_verbose.write(toggle % 2)  # racy config write
                sampled_hits = yield hits.read()  # racy sample reads
                sampled_static = yield static_bytes.read()
                sampled_cgi = yield cgi_bytes.read()
                sampled_client = yield last_client.read()
                yield ops.check(
                    sampled_hits >= 0
                    and sampled_static >= 0
                    and sampled_cgi >= 0
                    and sampled_client >= -1,
                    "telemetry went nonsensical",
                )
                yield ops.sleep(4)

        n_static = len(range(0, requests, 3))
        n_cgi = len(range(1, requests, 3))
        n_dir = len(range(2, requests, 3))

        def sweeper():
            """Validates each cache once its locked counter says it is full.

            Correct (cell writes precede their counter increments), but the
            cache cells themselves are hybrid false alarms."""
            banks = (
                (static_lock, static_ready, n_static, static_cache, 0),
                (cgi_lock, cgi_ready, n_cgi, cgi_cache, 1),
                (dir_lock, dir_ready, n_dir, dir_cache, 2),
            )
            for lock, ready, expected, cache, offset in banks:
                while True:
                    yield lock.acquire()
                    count = yield ready.read()
                    yield lock.release()
                    if count >= expected:
                        break
                    yield ops.sleep(2)
                for request in range(offset, requests, 3):
                    body = yield cache.read(request)  # bare (false alarm)
                    yield ops.check(body is not None, "cache hole")

        def main():
            yield from accept_all()
            admin_thread = yield ops.spawn(admin, name="admin")
            sweep_thread = yield ops.spawn(sweeper, name="sweeper")
            handlers = yield from spawn_all(
                [(lambda k: lambda: handler(k))(k) for k in range(nhandlers)],
                prefix="handler",
            )
            yield from join_all(handlers)
            yield ops.join(admin_thread)
            yield ops.join(sweep_thread)

        return main()

    return Program(make, name="jigsaw")


SPEC = register(
    WorkloadSpec(
        name="jigsaw",
        build=build,
        description="Web-server kernel: telemetry races + cache false alarms",
        paper=PaperRow(
            sloc=381_348,
            normal_s=None,
            hybrid_s=None,
            racefuzzer_s=0.81,
            hybrid_races=547,
            real_races=36,
            known_races=None,
            exceptions_rf=0,
            exceptions_simple=0,
            probability=0.90,
        ),
        truth=GroundTruth(
            real_pairs=12,
            harmful_pairs=0,
            notes=(
                "hits / per-type byte gauges / last_client / log_verbose are "
                "all real benign races across handler and admin statements; "
                "the three response caches are locked-counter false alarms."
            ),
        ),
        kind="closed",
    )
)
