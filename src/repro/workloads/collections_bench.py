"""The open-program test drivers of Section 5.1 (Table 1, rows 10-14).

Quoting the paper: "A test driver starts by creating two empty objects of
the class.  The test driver also creates and starts a set of threads,
where each thread executes different methods of either of the two objects
concurrently.  We created two objects because some of the methods, such as
``containsAll``, takes as an argument an object of the same type."

Each driver below builds two synchronized collections (or two ``Vector``\\ s),
pre-populates them, and starts four threads running fixed method scripts
(generated once, from a fixed script seed, so the *program* is
deterministic and only the schedule varies).  Cross-object bulk calls
(``containsAll``/``addAll``/``removeAll``/``equals``) are what drive the
JDK iteration bug; the expected exceptions are
``ConcurrentModificationError`` and ``NoSuchElementError`` exactly as in
Section 5.3.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.runtime import Program, join_all, spawn_all

from repro.jdk import (
    ArrayList,
    HashSet,
    LinkedList,
    TreeSet,
    Vector,
    synchronized_list,
    synchronized_set,
)

from .base import GroundTruth, PaperRow, WorkloadSpec, register

#: values the scripts operate over
_VALUES = (1, 2, 3, 4, 5)


def _collection_script(rng: random.Random, length: int) -> list[tuple[str, int]]:
    """A fixed method script: (method name, value) pairs."""
    methods = (
        "add",
        "remove",
        "contains",
        "size",
        "contains_all",
        "add_all",
        "remove_all",
        "equals",
    )
    return [(rng.choice(methods), rng.choice(_VALUES)) for _ in range(length)]


def _run_collection_script(mine, other, script):
    """Execute one thread's script against its own and the peer object."""
    for method, value in script:
        if method == "add":
            yield from mine.add(value)
        elif method == "remove":
            yield from mine.remove(value)
        elif method == "contains":
            yield from mine.contains(value)
        elif method == "size":
            yield from mine.size()
        elif method == "contains_all":
            yield from mine.contains_all(other)
        elif method == "add_all":
            yield from mine.add_all(other)
        elif method == "remove_all":
            yield from mine.remove_all(other)
        elif method == "equals":
            yield from mine.equals(other)


def _build_collection_driver(
    name: str,
    backing_factory: Callable[[str], object],
    wrap: Callable[[object], object],
    *,
    script_seed: int,
    nthreads: int = 4,
    script_length: int = 4,
) -> Callable[[], Program]:
    def build() -> Program:
        rng = random.Random(script_seed)
        scripts = [_collection_script(rng, script_length) for _ in range(nthreads)]

        def make():
            first = wrap(backing_factory(f"{name}1"))
            second = wrap(backing_factory(f"{name}2"))

            def seed_objects():
                for value in (1, 2, 3):
                    yield from first.add(value)
                for value in (2, 3, 4):
                    yield from second.add(value)

            def actor(index):
                mine, other = (first, second) if index % 2 == 0 else (second, first)
                yield from _run_collection_script(mine, other, scripts[index])

            def main():
                yield from seed_objects()
                actors = yield from spawn_all(
                    [(lambda k: lambda: actor(k))(k) for k in range(nthreads)],
                    prefix=f"{name}Actor",
                )
                yield from join_all(actors)

            return main()

        return Program(make, name=name)

    return build


# --------------------------------------------------------------------------- #
# Vector 1.1: self-synchronized, so the driver calls it directly.

_VECTOR_METHODS = (
    "add_element",
    "remove_element",
    "contains",
    "size",
    "is_empty",
    "copy_into",
    "enumerate",
    "index_of",
    "remove_all_elements",
)


def _vector_script(rng: random.Random, length: int) -> list[tuple[str, int]]:
    return [(rng.choice(_VECTOR_METHODS), rng.choice(_VALUES)) for _ in range(length)]


def _run_vector_script(mine: Vector, script):
    for method, value in script:
        if method == "add_element":
            yield from mine.add_element(value)
        elif method == "remove_element":
            yield from mine.remove_element(value)
        elif method == "contains":
            yield from mine.contains(value)
        elif method == "size":
            yield from mine.size()
        elif method == "is_empty":
            yield from mine.is_empty()
        elif method == "copy_into":
            yield from mine.copy_into()
        elif method == "enumerate":
            enumeration = mine.elements()
            while (yield from enumeration.has_more_elements()):
                yield from enumeration.next_element()
        elif method == "index_of":
            yield from mine.index_of(value)
        elif method == "remove_all_elements":
            yield from mine.remove_all_elements()


def build_vector(nthreads: int = 4, script_length: int = 4) -> Program:
    rng = random.Random(707)
    scripts = [_vector_script(rng, script_length) for _ in range(nthreads)]

    def make():
        first = Vector("vector1")
        second = Vector("vector2")

        def seed_objects():
            for value in (1, 2, 3):
                yield from first.add_element(value)
                yield from second.add_element(value)

        def actor(index):
            mine = first if index % 2 == 0 else second
            yield from _run_vector_script(mine, scripts[index])

        def main():
            yield from seed_objects()
            actors = yield from spawn_all(
                [(lambda k: lambda: actor(k))(k) for k in range(nthreads)],
                prefix="vectorActor",
            )
            yield from join_all(actors)

        return main()

    return Program(make, name="vector")


# --------------------------------------------------------------------------- #
# Registry entries, one per Table 1 collection row.

SPEC_VECTOR = register(
    WorkloadSpec(
        name="vector",
        build=build_vector,
        description="JDK 1.1 Vector driver: benign unsynchronized readers",
        paper=PaperRow(709, 0.11, 0.25, 0.20, 9, 9, 9, 0, 0, 0.94),
        truth=GroundTruth(
            real_pairs=5,
            harmful_pairs=0,
            notes=(
                "unsynchronized size/is_empty/copy_into/enumeration reads "
                "race with the synchronized mutators; all benign (the "
                "enumeration is not fail-fast).  Five distinct statement "
                "pairs under the default driver scripts."
            ),
        ),
        kind="collection",
    )
)

SPEC_LINKEDLIST = register(
    WorkloadSpec(
        name="linkedlist",
        build=_build_collection_driver(
            "linkedlist", LinkedList, synchronized_list, script_seed=101
        ),
        description="synchronized LinkedList driver (containsAll/equals bug)",
        paper=PaperRow(5_979, 0.16, 0.26, 0.22, 12, 12, None, 5, 0, 0.85),
        truth=GroundTruth(
            real_pairs=10,
            harmful_pairs=10,
            notes=(
                "bulk ops iterate the peer without its mutex (JDK bug): "
                "iterator node/size/modCount reads race with _unlink and "
                "_bump_mod_count, throwing ConcurrentModificationError and "
                "NoSuchElementError."
            ),
        ),
        kind="collection",
    )
)

SPEC_ARRAYLIST = register(
    WorkloadSpec(
        name="arraylist",
        build=_build_collection_driver(
            "arraylist", ArrayList, synchronized_list, script_seed=202
        ),
        description="synchronized ArrayList driver (containsAll/equals bug)",
        paper=PaperRow(5_866, 0.16, 0.26, 0.24, 14, 7, None, 7, 0, 0.55),
        truth=GroundTruth(
            real_pairs=7,
            harmful_pairs=7,
            notes=(
                "bulk ops iterate the peer without its mutex (JDK bug): "
                "iterator cell/size/modCount reads race with the mutators."
            ),
        ),
        kind="collection",
    )
)

SPEC_HASHSET = register(
    WorkloadSpec(
        name="hashset",
        build=_build_collection_driver(
            "hashset", HashSet, synchronized_set, script_seed=303
        ),
        description="synchronized HashSet driver (containsAll/addAll bug)",
        paper=PaperRow(7_086, 0.16, 0.26, 0.25, 11, 11, None, 8, 1, 0.54),
        truth=GroundTruth(
            real_pairs=4,
            harmful_pairs=3,
            notes=(
                "bulk ops iterate the peer without its mutex (JDK bug); "
                "this driver also exposes the cross-object lock-order "
                "DEADLOCK of synchronized wrappers (removeAll holding one "
                "mutex probes the other), which RaceFuzzer reports as a "
                "real deadlock in many runs (Algorithm 1 lines 30-32)."
            ),
        ),
        kind="collection",
    )
)

SPEC_TREESET = register(
    WorkloadSpec(
        name="treeset",
        build=_build_collection_driver(
            "treeset", TreeSet, synchronized_set, script_seed=404
        ),
        description="synchronized TreeSet driver (containsAll/addAll bug)",
        paper=PaperRow(7_532, 0.17, 0.26, 0.24, 13, 8, None, 8, 1, 0.41),
        truth=GroundTruth(
            real_pairs=3,
            harmful_pairs=2,
            notes=(
                "bulk ops iterate the peer without its mutex (JDK bug): "
                "chain-node and modCount reads race with add/remove "
                "relinking (the Java-faithful pointer-checking has_next "
                "keeps the racing surface to node/modCount statements)."
            ),
        ),
        kind="collection",
    )
)
