"""Workload descriptors: one per Table 1 row plus the worked examples.

Each workload bundles a :class:`~repro.runtime.program.Program` builder
with (a) the original paper row it stands in for (so EXPERIMENTS.md can
print paper-vs-measured side by side) and (b) the *ground truth* of our
scaled re-implementation — how many real/harmful racing pairs were seeded
by construction — which is what the integration tests assert against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.runtime.program import Program


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 1 (— means 'not reported')."""

    sloc: int
    normal_s: float | None
    hybrid_s: float | None
    racefuzzer_s: float | None
    hybrid_races: int
    real_races: int
    known_races: int | None
    exceptions_rf: int
    exceptions_simple: int
    probability: float | None


@dataclass(frozen=True)
class GroundTruth:
    """What our re-implementation seeded, by construction."""

    #: number of distinct real racing pairs that exist in the program
    real_pairs: int
    #: how many of those pairs can raise an exception when resolved badly
    harmful_pairs: int
    #: free-text inventory of each seeded race / false-positive source
    notes: str = ""


@dataclass(frozen=True)
class WorkloadSpec:
    """A benchmark program plus its expected behaviour."""

    name: str
    build: Callable[[], Program]
    description: str
    paper: PaperRow | None = None
    truth: GroundTruth | None = None
    #: Phase 2 trials per pair (the paper used 100)
    trials: int = 100
    #: seeds for Phase 1 detection runs
    phase1_seeds: tuple[int, ...] = (0, 1, 2)
    max_steps: int = 1_000_000
    #: categories used by the harness: "closed", "collection", "example"
    kind: str = "closed"


_REGISTRY: dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the global registry (idempotent by name)."""
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorkloadSpec:
    return _REGISTRY[name]


def all_workloads() -> list[WorkloadSpec]:
    """Registry contents in registration order."""
    return list(_REGISTRY.values())


def table1_workloads() -> list[WorkloadSpec]:
    """The workloads that correspond to Table 1 rows."""
    return [spec for spec in _REGISTRY.values() if spec.paper is not None]
