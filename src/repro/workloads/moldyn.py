"""``moldyn`` — Java Grande molecular dynamics kernel (Table 1, row 1).

Structure mirrors the original: ``nthreads`` workers simulate ``steps``
velocity-Verlet phases over a particle set, separated by barriers; the
force accumulation into shared particle state is lock-protected; and two
**benign real races** exist, matching the paper's finding of "2 real (but
benign) races that were missed by previous dynamic analysis tools":

* the ``interactions`` statistics counter is incremented without a lock
  (lost updates are tolerated — it is only reported);
* the ``epot_ready`` diagnostic energy gauge is read unsynchronized by the
  coordinator while workers write it under their lock.

The paper also observed *livelocks* in moldyn under RaceFuzzer because a
spin-wait assumes a fair scheduler; we reproduce that with the coordinator
busy-polling a start flag, which exercises the postponed-set watchdog.
False positives for the hybrid detector come from the per-particle
velocity cells: they are handed off between phases by the barrier
generation flag (lock-protected flag, unprotected data — the Figure 1
pattern), plus partitioned writes that only the barrier orders.
"""

from __future__ import annotations

from repro.runtime import (
    AtomicCounter,
    Barrier,
    Lock,
    Program,
    SharedArray,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def build(nthreads: int = 2, particles: int = 6, steps: int = 3) -> Program:
    """Molecular-dynamics kernel scaled for simulation."""

    def make():
        positions = SharedArray(particles, "positions", init=0)
        velocities = SharedArray(particles, "velocities", init=1)
        forces = SharedArray(particles, "forces", init=0)
        force_lock = Lock("forceLock")
        epot = SharedVar("epot", 0)  # potential energy, written under lock
        interactions = SharedVar("interactions", 0)  # benign racy counter
        started = SharedVar("started", 0)  # spin-wait flag (livelock source)
        barrier = Barrier(nthreads, "mdBarrier")
        done = AtomicCounter("doneWorkers")

        span = max(1, particles // nthreads)

        def worker(index):
            # Busy-wait for the coordinator's start signal (unfair-scheduler
            # hazard the paper observed in moldyn).
            while (yield started.read()) == 0:
                yield ops.yield_point()
            lo = index * span
            hi = particles if index == nthreads - 1 else lo + span
            for _ in range(steps):
                # Force phase: all-pairs contribution, locked accumulation.
                for i in range(lo, hi):
                    contribution = 0
                    for j in range(particles):
                        if i == j:
                            continue
                        other = yield positions.read(j)
                        mine = yield positions.read(i)
                        contribution += (other - mine) % 7
                        # Benign real race #1: statistics counter.
                        count = yield interactions.read()
                        yield interactions.write(count + 1)
                    yield force_lock.acquire()
                    old = yield forces.read(i)
                    yield forces.write(i, old + contribution)
                    energy = yield epot.read()
                    yield epot.write(energy + contribution)
                    yield force_lock.release()
                yield from barrier.wait_for_all()
                # Move phase: each worker owns its slice.
                for i in range(lo, hi):
                    force = yield forces.read(i)
                    speed = yield velocities.read(i)
                    yield velocities.write(i, (speed + force) % 11)
                    position = yield positions.read(i)
                    yield positions.write(i, (position + speed) % 13)
                    yield forces.write(i, 0)
                yield from barrier.wait_for_all()
            yield from done.add(1)

        def main():
            workers = yield from spawn_all(
                [(lambda k: lambda: worker(k))(k) for k in range(nthreads)],
                prefix="md",
            )
            yield started.write(1)
            # Benign real race #2: diagnostic read of the energy gauge while
            # workers are still writing it under their lock.
            observed = yield epot.read()
            yield ops.check(observed >= 0, "energy gauge went negative")
            yield from join_all(workers)
            total = yield from done.get()
            yield ops.check(total == nthreads, "a worker vanished")

        return main()

    return Program(make, name="moldyn")


SPEC = register(
    WorkloadSpec(
        name="moldyn",
        build=build,
        description="Java Grande molecular dynamics kernel (barriers + locks)",
        paper=PaperRow(
            sloc=1_352,
            normal_s=2.07,
            hybrid_s=3600.0,
            racefuzzer_s=42.37,
            hybrid_races=59,
            real_races=2,
            known_races=0,
            exceptions_rf=0,
            exceptions_simple=0,
            probability=1.00,
        ),
        truth=GroundTruth(
            real_pairs=4,
            harmful_pairs=0,
            notes=(
                "four real benign pairs: interactions read/write and "
                "write/write, the epot diagnostic read vs locked write, and "
                "the started spin-read vs the coordinator's write; "
                "velocity/position cells are barrier-ordered false "
                "positives for the hybrid detector."
            ),
        ),
        kind="closed",
    )
)
