"""``cache4j`` — thread-safe object cache with the ``_sleep`` race
(Table 1, row 4; the Section 5.3 bug narrative).

The original bug, quoted from the paper::

    Thread2 (CacheCleaner):          Thread1:
    _sleep = true;                   synchronized (this) {
    try {                                if (_sleep) {
        sleep(_cleanInterval);               interrupt();
    } catch (Throwable t) {              }
    } finally {                      }
        _sleep = false;
    }

``_sleep`` is written by the cleaner *without* the monitor and read by the
mutator *with* it — a real race.  When the write lands just before the
cleaner's guarded sleep, the interrupt is caught; but the cleaner also
performs housekeeping (an unguarded flush pause) while ``_sleep`` is still
true, and an interrupt landing there raises an **uncaught
InterruptedException that crashes the cleaner** — the exception RaceFuzzer
finds for this row.

The cache itself (a striped map with per-stripe locks and an LRU clock) is
properly synchronized; its access-time bookkeeping gives the hybrid
detector additional lock-ordered false alarms, and a second real-but-
benign race exists on the ``hits`` statistics counter.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedCells, SharedVar, join_all, ops, spawn_all
from repro.runtime.errors import InterruptedException

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def build(nthreads: int = 2, operations: int = 10, stripes: int = 2) -> Program:
    def make():
        stripe_locks = [Lock(f"stripe{i}.lock") for i in range(stripes)]
        entries = SharedCells("cache.entries")
        access_clock = SharedCells("cache.accessClock")
        clock = SharedVar("cache.clock", 0)
        clock_lock = Lock("cache.clockLock")
        hits = SharedVar("cache.hits", 0)
        stats_lock = Lock("cache.statsLock")
        sleep_flag = SharedVar("cleaner._sleep", 0)  # THE cache4j race
        cache_lock = Lock("cache.this")
        shutdown = SharedVar("cache.shutdown", 0)

        def stripe_of(key):
            return key % stripes

        def put(key, value):
            lock = stripe_locks[stripe_of(key)]
            yield lock.acquire()
            yield entries.write(key, value)
            yield clock_lock.acquire()
            now = yield clock.read()
            yield clock.write(now + 1)
            yield clock_lock.release()
            yield access_clock.write(key, now)
            yield lock.release()

        def get(key):
            lock = stripe_locks[stripe_of(key)]
            yield lock.acquire()
            value = yield entries.read(key)
            yield lock.release()
            if value is not None:
                yield stats_lock.acquire()
                count = yield hits.read()
                yield hits.write(count + 1)
                yield stats_lock.release()
            return value

        def cleaner(cleaner_handle_box):
            while True:
                yield cache_lock.acquire()
                stopping = yield shutdown.read()
                yield cache_lock.release()
                if stopping:
                    break
                # Housekeeping "flush" pause — NOT interrupt-guarded.  A
                # mutator that read a stale _sleep==1 (the race!) interrupts
                # the cleaner after it has already left the guarded sleep;
                # the pending interrupt flag detonates here, uncaught.
                yield ops.sleep(2)
                yield sleep_flag.write(1)  # <- the unsynchronized write
                try:
                    yield ops.sleep(30)  # sleep(_cleanInterval), guarded
                except InterruptedException:
                    pass
                finally:
                    yield sleep_flag.write(0)
                # Evict the stalest entry (properly locked).
                for key in range(stripes * 2):
                    lock = stripe_locks[stripe_of(key)]
                    yield lock.acquire()
                    stamp = yield access_clock.read(key)
                    yield clock_lock.acquire()
                    now = yield clock.read()
                    yield clock_lock.release()
                    if stamp is not None and now - stamp > 8:
                        yield entries.write(key, None)
                    yield lock.release()

        def mutator(worker_id, cleaner_handle_box):
            for i in range(operations):
                key = (worker_id * 7 + i) % (stripes * 2)
                yield from put(key, i)
                yield from get((key + 1) % (stripes * 2))
                if i % 3 == 2:
                    # Wake the cleaner so eviction keeps up with writes:
                    # synchronized check of the racy _sleep flag.
                    yield cache_lock.acquire()
                    sleeping = yield sleep_flag.read()  # <- locked read
                    if sleeping:
                        yield ops.interrupt(cleaner_handle_box[0])
                    yield cache_lock.release()

        def main():
            cleaner_handle_box = [None]
            cleaner_thread = yield ops.spawn(
                cleaner, cleaner_handle_box, name="cacheCleaner"
            )
            cleaner_handle_box[0] = cleaner_thread
            workers = yield from spawn_all(
                [
                    (lambda k: lambda: mutator(k, cleaner_handle_box))(k)
                    for k in range(nthreads)
                ],
                prefix="cacheUser",
            )
            yield from join_all(workers)
            yield cache_lock.acquire()
            yield shutdown.write(1)
            yield cache_lock.release()
            # No shutdown interrupt: the cleaner's sleeps are finite, so it
            # observes the flag on its next cycle (interrupting here could
            # hit the unguarded flush pause by design, not by race).
            yield ops.join(cleaner_thread)

        return main()

    return Program(make, name="cache4j")


SPEC = register(
    WorkloadSpec(
        name="cache4j",
        build=build,
        description="Striped object cache with the CacheCleaner _sleep race",
        paper=PaperRow(
            sloc=3_897,
            normal_s=2.19,
            hybrid_s=4.26,
            racefuzzer_s=2.61,
            hybrid_races=18,
            real_races=2,
            known_races=None,
            exceptions_rf=1,
            exceptions_simple=0,
            probability=1.00,
        ),
        truth=GroundTruth(
            real_pairs=2,
            harmful_pairs=1,
            notes=(
                "_sleep set-true and set-false writes (cleaner, unlocked) "
                "vs the mutator's locked read are the two real pairs; the "
                "set-false pair is harmful: resolving the stale read first "
                "sends an interrupt to a cleaner that already left the "
                "guarded sleep, and it detonates at the unguarded flush "
                "pause as an uncaught InterruptedException.  Entries, "
                "clocks, stats and shutdown are all lock-protected."
            ),
        ),
        kind="closed",
    )
)
