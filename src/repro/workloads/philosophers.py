"""Dining philosophers — the deadlock-direction showcase (not a Table 1 row).

Section 1's generalization claims the postponing scheduler works for "a
set of statements whose simultaneous execution could lead to a concurrency
problem ... such as potential deadlocks".  The canonical such program is
Dijkstra's dining philosophers with naive fork ordering: each philosopher
takes the left fork then the right, so the all-holding-one-fork cycle
deadlocks — but only if every philosopher grabs the left fork before any
completes, which a passive scheduler rarely arranges once thinking time is
non-trivial.

The workload registers with ground truth "no data races" (forks fully
order the counters): its concurrency problem is purely a deadlock, which
makes it the clean demonstration target for
:func:`repro.core.detect_lock_order_inversions` +
:class:`repro.core.DeadlockFuzzer` — see
``tests/workloads/test_philosophers.py``.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedVar, join_all, ops, spawn_all

from .base import GroundTruth, WorkloadSpec, register


def build(philosophers: int = 3, meals: int = 2, thinking: int = 5) -> Program:
    """Naive left-then-right fork acquisition; deadlock-prone by design."""

    def make():
        forks = [Lock(f"fork{i}") for i in range(philosophers)]
        eaten = SharedVar("mealsEaten", 0)
        meal_lock = Lock("mealLock")

        def philosopher(index):
            left = forks[index]
            right = forks[(index + 1) % philosophers]
            for _ in range(meals):
                for _ in range(thinking):
                    yield ops.yield_point()  # think
                yield left.acquire()
                yield right.acquire()  # the inner, cycle-closing acquire
                yield meal_lock.acquire()  # the meal count has its own lock
                total = yield eaten.read()
                yield eaten.write(total + 1)
                yield meal_lock.release()
                yield right.release()
                yield left.release()

        def main():
            handles = yield from spawn_all(
                [(lambda k: lambda: philosopher(k))(k) for k in range(philosophers)],
                prefix="phil",
            )
            yield from join_all(handles)
            total = yield eaten.read()
            yield ops.check(
                total == philosophers * meals, f"meals miscounted: {total}"
            )

        return main()

    return Program(make, name="philosophers")


SPEC = register(
    WorkloadSpec(
        name="philosophers",
        build=build,
        description="Dining philosophers: deadlock-directed fuzzing target",
        truth=GroundTruth(
            real_pairs=0,
            harmful_pairs=0,
            notes=(
                "no data races (every shared access is fork- or "
                "meal-lock-ordered); the defect is the circular "
                "left-then-right fork order, surfaced by DeadlockFuzzer "
                "via Algorithm 1's real-deadlock report."
            ),
        ),
        kind="example",
        max_steps=500_000,
    )
)
