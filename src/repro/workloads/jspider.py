"""``jspider`` — configurable web-spider engine (Table 1, row 8).

The original is an event-driven plugin pipeline, and the paper found it
clean: 29 potential races, **zero real**.  Our kernel reproduces the
plugin-pipeline architecture as three stages (fetch → parse → index) that
exchange work through per-stage mailboxes, each published with the
flag-under-lock discipline: the payload cells carry no common lock, but a
lock-protected sequence counter orders every handoff.  The hybrid detector
reports every payload cell of every stage; RaceFuzzer confirms none.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedCells, SharedVar, join_all, ops, spawn_all

from .base import GroundTruth, PaperRow, WorkloadSpec, register


class _Mailbox:
    """A one-way stage connector: bare payload cells + a locked counter."""

    def __init__(self, name: str):
        self.cells = SharedCells(f"{name}.payload")
        self.count = SharedVar(f"{name}.count", 0)
        self.lock = Lock(f"{name}.lock")

    def publish(self, slot, value):
        yield self.cells.write(slot, value)  # bare: the false alarm
        yield self.lock.acquire()
        count = yield self.count.read()
        yield self.count.write(count + 1)
        yield self.lock.release()

    def available(self):
        yield self.lock.acquire()
        count = yield self.count.read()
        yield self.lock.release()
        return count

    def consume(self, slot):
        value = yield self.cells.read(slot)  # bare: the false alarm
        return value


def build(documents: int = 5) -> Program:
    def make():
        fetched = _Mailbox("fetched")
        parsed = _Mailbox("parsed")
        indexed = SharedVar("indexedTotal", 0)
        index_lock = Lock("indexLock")

        def fetcher():
            for doc in range(documents):
                body = (doc * 37 + 11) % 101
                yield from fetched.publish(doc, body)

        def parser():
            done = 0
            while done < documents:
                ready = yield from fetched.available()
                while done < ready:
                    body = yield from fetched.consume(done)
                    yield from parsed.publish(done, body * 2 + 1)
                    done += 1
                yield ops.yield_point()

        def indexer():
            done = 0
            while done < documents:
                ready = yield from parsed.available()
                while done < ready:
                    tokens = yield from parsed.consume(done)
                    yield index_lock.acquire()
                    total = yield indexed.read()
                    yield indexed.write(total + tokens)
                    yield index_lock.release()
                    done += 1
                yield ops.yield_point()

        def main():
            stages = yield from spawn_all(
                [fetcher, parser, indexer], prefix="stage"
            )
            yield from join_all(stages)
            yield index_lock.acquire()
            total = yield indexed.read()
            yield index_lock.release()
            expected = sum(((d * 37 + 11) % 101) * 2 + 1 for d in range(documents))
            yield ops.check(total == expected, "pipeline dropped a document")

        return main()

    return Program(make, name="jspider")


SPEC = register(
    WorkloadSpec(
        name="jspider",
        build=build,
        description="Plugin pipeline: all-false-positive publication cells",
        paper=PaperRow(
            sloc=64_933,
            normal_s=4.79,
            hybrid_s=4.88,
            racefuzzer_s=4.81,
            hybrid_races=29,
            real_races=0,
            known_races=None,
            exceptions_rf=0,
            exceptions_simple=0,
            probability=None,
        ),
        truth=GroundTruth(
            real_pairs=0,
            harmful_pairs=0,
            notes=(
                "every mailbox payload pair is ordered by its locked "
                "counter; zero real races by construction."
            ),
        ),
        kind="closed",
    )
)
