"""``montecarlo`` — Java Grande Monte Carlo pricing kernel (Table 1, row 3).

``nthreads`` workers price a slice of simulated paths each, publish their
per-task results into a result table, and bump a lock-protected
``ready`` counter; the coordinator polls the counter under the lock and
then reads the results.  That publication is *correct* (the counter
orders it) but invisible to the hybrid detector — lock release→acquire
edges are deliberately not tracked — so every result cell becomes a false
alarm, reproducing the row's 5-potential/1-real shape.

The one **real** race is the ``finished`` flag: every worker writes it
(the same value) without synchronization — a write/write racing pair,
benign, like the original's static-field race.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedCells, SharedVar, join_all, ops, spawn_all

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def _price_path(task: int, path: int) -> int:
    """Deterministic stand-in for one Monte Carlo path evaluation."""
    value = (task * 2654435761 + path * 40503) % 1000
    return value


def build(nthreads: int = 4, paths_per_task: int = 8) -> Program:
    def make():
        results = SharedCells("results")
        ready = SharedVar("ready", 0)
        ready_lock = Lock("readyLock")
        finished = SharedVar("finished", 0)  # the real (benign) race

        def worker(task_id):
            total = 0
            for path in range(paths_per_task):
                total += _price_path(task_id, path)
            # Publish result, then announce under the lock (correct, but a
            # hybrid-detector blind spot: no common lock on the cell).
            yield results.write(task_id, total)
            yield ready_lock.acquire()
            count = yield ready.read()
            yield ready.write(count + 1)
            yield ready_lock.release()
            yield finished.write(1)  # racy write/write, same value: benign

        def main():
            workers = yield from spawn_all(
                [(lambda k: lambda: worker(k))(k) for k in range(nthreads)],
                prefix="mc",
            )
            while True:
                yield ready_lock.acquire()
                count = yield ready.read()
                yield ready_lock.release()
                if count == nthreads:
                    break
                yield ops.yield_point()
            grand_total = 0
            for task_id in range(nthreads):
                grand_total += yield results.read(task_id)
            expected = sum(
                _price_path(t, p)
                for t in range(nthreads)
                for p in range(paths_per_task)
            )
            yield ops.check(grand_total == expected, "lost a task result")
            yield from join_all(workers)

        return main()

    return Program(make, name="montecarlo")


SPEC = register(
    WorkloadSpec(
        name="montecarlo",
        build=build,
        description="Java Grande Monte Carlo: counter-published results",
        paper=PaperRow(
            sloc=3_619,
            normal_s=3.48,
            hybrid_s=3600.0,
            racefuzzer_s=6.44,
            hybrid_races=5,
            real_races=1,
            known_races=1,
            exceptions_rf=0,
            exceptions_simple=0,
            probability=1.00,
        ),
        truth=GroundTruth(
            real_pairs=1,
            harmful_pairs=0,
            notes=(
                "finished write/write is real and benign; the result-cell "
                "pairs are ordered by the locked ready counter (false "
                "alarms, one per worker)."
            ),
        ),
        kind="closed",
    )
)
