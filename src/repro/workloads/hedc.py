"""``hedc`` — ETH meta-crawler application kernel (Table 1, row 6).

A coordinator dispatches search tasks to worker threads; a watchdog
monitors the workers' progress so stuck queries can be reported.  The
row's shape: several potential races (most of them publication patterns
the hybrid detector cannot order), **one real race, and it is harmful**:

* each worker announces what it is fetching by setting ``busy`` under the
  task lock but writing ``current_url`` *without* it; the watchdog reads
  ``busy`` under the lock and then dereferences ``current_url`` bare.  The
  write and the read race for real, and when the read wins the url is
  still null — the watchdog crashes with :class:`NullPointerError` (the
  paper's hedc exception).  Probability is below 1.0 because the watchdog
  only samples workers that look busy, mirroring the row's 0.86.

False alarms come from the result-publication cells (locked-counter
handoff, invisible to the hybrid detector) in the fetch and merge stages.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedCells, SharedObject, SharedVar, join_all, ops, spawn_all
from repro.runtime.errors import NullPointerError

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def _fetch(engine: int, query: int) -> int:
    """Deterministic stand-in for querying one search engine."""
    return (engine * 131 + query * 17) % 97


def build(nworkers: int = 2, queries: int = 3) -> Program:
    def make():
        results = SharedCells("hedc.results")
        merged = SharedCells("hedc.merged")
        published = SharedVar("hedc.published", 0)
        publish_lock = Lock("hedc.publishLock")
        tasks = [
            SharedObject(f"hedc.task{i}", busy=0, current_url=None)
            for i in range(nworkers)
        ]
        task_lock = Lock("hedc.taskLock")
        watchdog_log = SharedVar("hedc.watchdogLog", 0)

        def worker(index):
            task = tasks[index]
            for query in range(queries):
                yield task_lock.acquire()
                yield task.set("busy", 1)
                yield task_lock.release()
                # THE real race: url written without the task lock.
                yield task.set("current_url", f"http://engine{index}/q{query}")
                value = _fetch(index, query)
                yield results.write(index * queries + query, value)
                yield task.set("current_url", None)
                yield task_lock.acquire()
                yield task.set("busy", 0)
                yield task_lock.release()
                # Publish through the locked counter (correct, but a hybrid
                # blind spot: the result cells carry no common lock).
                yield publish_lock.acquire()
                count = yield published.read()
                yield published.write(count + 1)
                yield publish_lock.release()

        def watchdog():
            for _ in range(queries * 2):
                for task in tasks:
                    yield task_lock.acquire()
                    busy = yield task.get("busy")
                    yield task_lock.release()
                    if busy:
                        url = yield task.get("current_url")  # unguarded!
                        if url is None:
                            # Java: url.length() on null — the hedc crash.
                            raise NullPointerError(
                                "watchdog dereferenced current_url of a "
                                "busy task before the worker published it"
                            )
                        stamp = yield watchdog_log.read()
                        yield watchdog_log.write(stamp + len(url))
                yield ops.sleep(3)

        def merger():
            seen = 0
            while seen < nworkers * queries:
                yield publish_lock.acquire()
                seen = yield published.read()
                yield publish_lock.release()
                yield ops.yield_point()
            total = 0
            for slot in range(nworkers * queries):
                total += yield results.read(slot)
            yield merged.write(0, total)

        def main():
            dog = yield ops.spawn(watchdog, name="watchdog")
            workers = yield from spawn_all(
                [(lambda k: lambda: worker(k))(k) for k in range(nworkers)],
                prefix="hedcWorker",
            )
            merge_thread = yield ops.spawn(merger, name="merger")
            yield from join_all(workers)
            yield ops.join(merge_thread)
            yield ops.join(dog)
            total = yield merged.read(0)
            expected = sum(
                _fetch(w, q) for w in range(nworkers) for q in range(queries)
            )
            yield ops.check(total == expected, "merged result corrupted")

        return main()

    return Program(make, name="hedc")


SPEC = register(
    WorkloadSpec(
        name="hedc",
        build=build,
        description="Meta-crawler kernel: busy/current_url watchdog race",
        paper=PaperRow(
            sloc=29_948,
            normal_s=1.10,
            hybrid_s=1.35,
            racefuzzer_s=1.11,
            hybrid_races=9,
            real_races=1,
            known_races=1,
            exceptions_rf=1,
            exceptions_simple=0,
            probability=0.86,
        ),
        truth=GroundTruth(
            real_pairs=2,
            harmful_pairs=2,
            notes=(
                "current_url set and reset writes vs the watchdog read are "
                "the two real pairs; resolving the read before the set "
                "NPEs the watchdog (url still None after busy=1), and the "
                "crash attribution covers both pairs since the watchdog "
                "participates in each.  Result/merged cells are "
                "locked-counter false alarms."
            ),
        ),
        kind="closed",
    )
)
