"""``sor`` — ETH successive over-relaxation benchmark (Table 1, row 5).

The paper's row is the all-false-positives case: 8 potential races, **zero
real**.  The original SOR is a red-black grid relaxation whose worker
threads hand rows to each other between half-sweeps using a
flag-under-lock protocol — correct, but exactly the Figure 1 pattern the
hybrid detector cannot see through (the data cells themselves carry no
common lock and no start/join/notify edge).

We reproduce it directly: two workers alternate red/black half-sweeps over
a shared boundary row.  Each hands the boundary to the other by setting a
lock-protected turn flag that the peer polls (under the lock) before
touching the boundary cells.  Every boundary cell therefore produces
potential racing pairs and RaceFuzzer classifies every one as false.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedArray, SharedVar, join_all, ops, spawn_all

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def build(sweeps: int = 2, boundary_cells: int = 4) -> Program:
    def make():
        boundary = SharedArray(boundary_cells, "boundary", init=1)
        turn = SharedVar("turn", 0)  # whose half-sweep it is (lock-protected)
        turn_lock = Lock("turnLock")

        def wait_for_turn(me):
            while True:
                yield turn_lock.acquire()
                current = yield turn.read()
                yield turn_lock.release()
                if current == me:
                    return
                yield ops.yield_point()

        def pass_turn(to):
            yield turn_lock.acquire()
            yield turn.write(to)
            yield turn_lock.release()

        # The two workers are written out separately (as the original's red
        # and black sweeps are) so their accesses are distinct statements —
        # the unit Table 1 counts.
        def worker_red():
            for _ in range(sweeps):
                yield from wait_for_turn(0)
                for cell in range(0, boundary_cells, 2):  # red cells
                    value = yield boundary.read(cell)
                    yield boundary.write(cell, (value * 3) % 17)
                for cell in range(1, boundary_cells, 2):  # black neighbours
                    value = yield boundary.read(cell)
                    yield boundary.write(cell, (value * 5 + 1) % 17)
                yield from pass_turn(1)

        def worker_black():
            for _ in range(sweeps):
                yield from wait_for_turn(1)
                for cell in range(1, boundary_cells, 2):  # black cells
                    value = yield boundary.read(cell)
                    yield boundary.write(cell, (value * 3 + 1) % 17)
                for cell in range(0, boundary_cells, 2):  # red neighbours
                    value = yield boundary.read(cell)
                    yield boundary.write(cell, (value * 5) % 17)
                yield from pass_turn(0)

        def main():
            workers = yield from spawn_all(
                [worker_red, worker_black], prefix="sor"
            )
            yield from join_all(workers)
            total = 0
            for cell in range(boundary_cells):
                total += yield boundary.read(cell)
            yield ops.check(total >= 0, "relaxation diverged")

        return main()

    return Program(make, name="sor")


SPEC = register(
    WorkloadSpec(
        name="sor",
        build=build,
        description="Red-black SOR: flag-under-lock handoff, zero real races",
        paper=PaperRow(
            sloc=17_689,
            normal_s=0.16,
            hybrid_s=0.35,
            racefuzzer_s=0.23,
            hybrid_races=8,
            real_races=0,
            known_races=0,
            exceptions_rf=0,
            exceptions_simple=0,
            probability=None,
        ),
        truth=GroundTruth(
            real_pairs=0,
            harmful_pairs=0,
            notes=(
                "every boundary-cell pair is ordered by the lock-protected "
                "turn flag; the hybrid detector reports them all, RaceFuzzer "
                "creates none."
            ),
        ),
        kind="closed",
    )
)
