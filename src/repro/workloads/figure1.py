"""Figure 1 of the paper: a program with one real race and one false alarm.

::

    Initially: x = y = z = 0
    thread1 {                thread2 {
    1: x = 1;                 7: z = 1;
    2: lock(L);               8: lock(L);
    3: y = 1;                 9: if (y == 1) {
    4: unlock(L);            10:   if (x != 1) {
    5: if (z == 1)           11:     ERROR2;
    6:   ERROR1;             12:   }
       }                     13: }
                             14: unlock(L);
                             }

The hybrid detector reports two potentially racing pairs: ``(5, 7)`` on
``z`` (a real race — ERROR1 is reachable) and ``(1, 10)`` on ``x`` (a false
alarm: the accesses are implicitly ordered by the lock-protected flag
``y``).  RaceFuzzer classifies them correctly: ``{5, 7}`` is created with
probability 1 and reaches ERROR1 in about half of the runs; ``{1, 10}`` can
never be created.
"""

from __future__ import annotations

from repro.runtime import Lock, Program, SharedVar, join_all, spawn_all
from repro.runtime.errors import AssertionViolation
from repro.runtime.statement import Statement, StatementPair

from .base import GroundTruth, WorkloadSpec, register

#: the statements the paper discusses, as labelled sites
STMT_1 = Statement(label="1")  # thread1: x = 1
STMT_5 = Statement(label="5")  # thread1: read z
STMT_7 = Statement(label="7")  # thread2: z = 1
STMT_10 = Statement(label="10")  # thread2: read x

REAL_PAIR = StatementPair(STMT_5, STMT_7)
FALSE_PAIR = StatementPair(STMT_1, STMT_10)


def build() -> Program:
    """Construct the Figure 1 program (fresh shared world per execution)."""

    def make():
        x = SharedVar("x", 0)
        y = SharedVar("y", 0)
        z = SharedVar("z", 0)
        lock = Lock("L")

        def thread1():
            yield x.write(1, label="1")
            yield lock.acquire(label="2")
            yield y.write(1, label="3")
            yield lock.release(label="4")
            if (yield z.read(label="5")) == 1:
                raise AssertionViolation("ERROR1")  # statement 6

        def thread2():
            yield z.write(1, label="7")
            yield lock.acquire(label="8")
            if (yield y.read(label="9")) == 1:
                if (yield x.read(label="10")) != 1:
                    raise AssertionViolation("ERROR2")  # statement 11
            yield lock.release(label="14")

        def main():
            threads = yield from spawn_all([thread1, thread2], prefix="thread")
            yield from join_all(threads)

        return main()

    return Program(make, name="figure1")


SPEC = register(
    WorkloadSpec(
        name="figure1",
        build=build,
        description="Paper Figure 1: one real race (z), one false alarm (x)",
        truth=GroundTruth(
            real_pairs=1,
            harmful_pairs=1,
            notes=(
                "(5,7) on z is real and reaches ERROR1 when 7 is resolved "
                "first; (1,10) on x is a false alarm (flag-synchronized by y "
                "under lock L)."
            ),
        ),
        kind="example",
    )
)
