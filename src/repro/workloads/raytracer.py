"""``raytracer`` — Java Grande ray tracer kernel (Table 1, row 2).

The original's famous defect is a data race on the scene ``checksum``:
worker threads render interleaved scanlines and accumulate the pixel
checksum with an unsynchronized read-modify-write.  That single
``checksum += value`` source line yields exactly **two distinct racing
statement pairs** — (read, write) and (write, write) — which is the
paper's row: 2 potential, 2 real, 2 previously known, no exceptions, and
RaceFuzzer creates them with probability 1.  Everything else (the work
queue of scanlines, the completion latch) is properly synchronized, so the
hybrid report contains nothing but the real races.
"""

from __future__ import annotations

from repro.runtime import (
    CountDownLatch,
    Lock,
    Program,
    SharedArray,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)

from .base import GroundTruth, PaperRow, WorkloadSpec, register


def _trace_ray(row: int, column: int) -> int:
    """A deterministic stand-in for shading one pixel."""
    return (row * 31 + column * 17) % 256


def build(nthreads: int = 2, width: int = 6, height: int = 6) -> Program:
    def make():
        checksum = SharedVar("checksum", 0)  # the racy accumulator
        next_row = SharedVar("nextRow", 0)  # work-stealing cursor (locked)
        row_lock = Lock("rowLock")
        image = SharedArray(width * height, "image", init=0)
        latch = CountDownLatch(nthreads, "renderDone")

        def render_worker():
            while True:
                yield row_lock.acquire()
                row = yield next_row.read()
                if row >= height:
                    yield row_lock.release()
                    break
                yield next_row.write(row + 1)
                yield row_lock.release()
                row_sum = 0
                for column in range(width):
                    pixel = _trace_ray(row, column)
                    yield image.write(row * width + column, pixel)
                    row_sum += pixel
                # THE raytracer bug: unsynchronized checksum accumulation.
                current = yield checksum.read()
                yield checksum.write(current + row_sum)
            yield from latch.count_down()

        def main():
            workers = yield from spawn_all(
                [render_worker for _ in range(nthreads)], prefix="rt"
            )
            yield from latch.await_zero()
            yield from join_all(workers)
            expected = sum(
                _trace_ray(r, c) for r in range(height) for c in range(width)
            )
            final = yield checksum.read()
            # Lost updates are possible (benign in the original too: the JGF
            # validation only warns); we merely observe, never throw.
            yield ops.yield_point()
            _ = (final, expected)

        return main()

    return Program(make, name="raytracer")


SPEC = register(
    WorkloadSpec(
        name="raytracer",
        build=build,
        description="Java Grande ray tracer: the classic checksum race",
        paper=PaperRow(
            sloc=1_924,
            normal_s=3.25,
            hybrid_s=3600.0,
            racefuzzer_s=3.81,
            hybrid_races=2,
            real_races=2,
            known_races=2,
            exceptions_rf=0,
            exceptions_simple=0,
            probability=1.00,
        ),
        truth=GroundTruth(
            real_pairs=2,
            harmful_pairs=0,
            notes=(
                "checksum read/write and write/write pairs from the "
                "unsynchronized `checksum += row_sum`; benign (validation "
                "only warns)."
            ),
        ),
        kind="closed",
    )
)
