"""Benchmark programs: one per Table 1 row, plus the worked examples.

Importing this package registers every workload; use
:func:`~repro.workloads.base.all_workloads` /
:func:`~repro.workloads.base.table1_workloads` or address one by name via
:func:`~repro.workloads.base.get`.
"""

from . import (  # noqa: F401  (import for registration side effect)
    cache4j,
    collections_bench,
    figure1,
    figure2,
    hedc,
    jigsaw,
    jspider,
    moldyn,
    montecarlo,
    philosophers,
    raytracer,
    sor,
    weblech,
)
from .base import (
    GroundTruth,
    PaperRow,
    WorkloadSpec,
    all_workloads,
    get,
    register,
    table1_workloads,
)

__all__ = [
    "GroundTruth",
    "PaperRow",
    "WorkloadSpec",
    "all_workloads",
    "get",
    "register",
    "table1_workloads",
]
