"""Streaming trace I/O: write events as they happen, read them back lazily.

* :class:`TraceWriter` — append header, events, footer to a JSONL file
  (gzip-compressed when the path ends in ``.gz``);
* :class:`TraceRecorder` — an :class:`~repro.runtime.observer.ExecutionObserver`
  that streams every event of a live execution into a writer, making
  record-while-running a one-liner;
* :class:`TraceReader` — iterate events back out (header eagerly parsed,
  footer available once the stream is exhausted);
* :func:`record_execution` / :func:`load_trace` — the whole-file
  conveniences built on the above.

Writers never leave half-written files where a reader could mistake them
for complete traces: callers that publish into a shared directory (the
:class:`~repro.trace.store.TraceStore`) write to a temp name and
``os.replace`` into place.
"""

from __future__ import annotations

import gzip
import json
import os
import zlib
from typing import IO, Iterable, Iterator

from repro.runtime.events import Event
from repro.runtime.interpreter import Execution, ExecutionResult
from repro.runtime.observer import ExecutionObserver
from repro.runtime.program import Program

from .schema import (
    TraceCorruptError,
    TraceFooter,
    TraceHeader,
    TraceSchemaError,
    decode_event,
    encode_event,
)


def _is_gzip(path: str) -> bool:
    return str(path).endswith(".gz")


def _open_write(path: str) -> IO[str]:
    if _is_gzip(path):
        return gzip.open(path, "wt", encoding="utf-8")
    return open(path, "w", encoding="utf-8")


def _open_read(path: str) -> IO[str]:
    if _is_gzip(path):
        return gzip.open(path, "rt", encoding="utf-8")
    return open(path, "r", encoding="utf-8")


class TraceWriter:
    """Stream one execution's events into a trace file.

    Every line written before the footer feeds a running CRC32; the
    footer records that checksum plus the event count, which is what lets
    a reader detect truncation and bit rot without a second pass.
    """

    def __init__(self, path, header: TraceHeader) -> None:
        self.path = str(path)
        self.header = header
        self.events_written = 0
        self._crc = 0
        self._fh: IO[str] | None = _open_write(self.path)
        self._write_line(header.to_jsonable())

    def _write_line(self, obj: dict, *, checksum: bool = True) -> None:
        assert self._fh is not None, "writer already closed"
        line = json.dumps(obj, separators=(",", ":")) + "\n"
        if checksum:
            self._crc = zlib.crc32(line.encode("utf-8"), self._crc)
        self._fh.write(line)

    def write_event(self, event: Event) -> None:
        self._write_line(encode_event(event))
        self.events_written += 1

    def write_footer(self, result: ExecutionResult) -> None:
        self._write_line(
            TraceFooter.from_result(
                result, self.events_written, crc32=self._crc
            ).to_jsonable(),
            checksum=False,
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceRecorder(ExecutionObserver):
    """Observer that records a live execution straight to a trace file.

    The header needs the execution's provenance, so the writer is opened
    in :meth:`on_start` (when the execution is known) and finalized with
    the result footer in :meth:`on_finish`.  Recording is passive: it
    draws nothing from the execution's RNG, so a recorded run is the
    identical schedule the same seed produces unobserved.
    """

    wants_mem_events = True

    def __init__(self, path, *, scheduler: str = "") -> None:
        self.path = str(path)
        self.scheduler = scheduler
        self.writer: TraceWriter | None = None

    def on_start(self, execution) -> None:
        self.writer = TraceWriter(
            self.path,
            TraceHeader(
                program=execution.program.name,
                seed=execution.seed,
                scheduler=self.scheduler,
                max_steps=execution.max_steps,
            ),
        )

    def on_event(self, event: Event) -> None:
        assert self.writer is not None, "recorder received events before start"
        self.writer.write_event(event)

    def on_finish(self, execution) -> None:
        assert self.writer is not None
        self.writer.write_footer(execution.result)
        self.writer.close()


class TraceReader:
    """Read a trace file back: header eagerly, events streamed.

    Iterating yields :class:`~repro.runtime.events.Event` values in
    execution order; :attr:`footer` is populated once the iterator is
    exhausted (or immediately via :meth:`read_events`).

    Integrity is enforced inline: a running CRC32 mirrors the writer's,
    and the footer's recorded checksum and event count are checked the
    moment it is parsed.  Any malformed line, undecodable event, missing
    footer, or checksum mismatch raises
    :class:`~repro.trace.schema.TraceCorruptError` — never a raw
    ``json.JSONDecodeError`` or ``KeyError``.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self.footer: TraceFooter | None = None
        self.events_read = 0
        self._crc = 0
        self._lineno = 0
        self._fh: IO[str] | None = None
        try:
            self._fh = _open_read(self.path)
            first = self._fh.readline()
        except (EOFError, OSError) as exc:
            if isinstance(exc, FileNotFoundError):
                raise
            self.close()
            raise TraceCorruptError(self.path, 1, f"unreadable: {exc}")
        self._lineno = 1
        if not first.strip():
            self.close()
            raise TraceCorruptError(self.path, 0, "empty trace file")
        try:
            payload = json.loads(first)
        except ValueError as exc:
            self.close()
            raise TraceCorruptError(self.path, 1, f"malformed header: {exc}")
        try:
            self.header = TraceHeader.from_jsonable(payload)
        except (KeyError, TypeError) as exc:
            self.close()
            raise TraceCorruptError(
                self.path, 1, f"undecodable header: {exc!r}"
            )
        self._crc = zlib.crc32(first.encode("utf-8"))

    def _read_line(self) -> str:
        assert self._fh is not None, "reader already closed"
        try:
            return self._fh.readline()
        except (EOFError, OSError) as exc:
            # a truncated gzip stream surfaces here, not as short data
            raise TraceCorruptError(
                self.path, self._lineno + 1, f"unreadable: {exc}"
            )

    def _finish_footer(self, obj: dict) -> None:
        try:
            footer = TraceFooter.from_jsonable(obj)
        except (KeyError, TypeError) as exc:
            raise TraceCorruptError(
                self.path, self._lineno, f"undecodable footer: {exc!r}"
            )
        if footer.events != self.events_read:
            raise TraceCorruptError(
                self.path,
                self._lineno,
                f"event count mismatch: footer says {footer.events}, "
                f"read {self.events_read}",
            )
        if footer.crc32 is not None and footer.crc32 != self._crc:
            raise TraceCorruptError(
                self.path,
                0,
                f"checksum mismatch: footer says {footer.crc32:#010x}, "
                f"computed {self._crc:#010x}",
            )
        self.footer = footer

    def __iter__(self) -> Iterator[Event]:
        assert self._fh is not None, "reader already closed"
        try:
            yield from self._iter_events()
        except TraceCorruptError:
            self.close()
            raise
        self.close()

    def _iter_events(self) -> Iterator[Event]:
        while True:
            line = self._read_line()
            if not line:
                raise TraceCorruptError(
                    self.path, self._lineno, "truncated: footer missing"
                )
            self._lineno += 1
            stripped = line.strip()
            if not stripped:
                raise TraceCorruptError(
                    self.path, self._lineno, "blank line inside trace"
                )
            try:
                obj = json.loads(stripped)
            except ValueError as exc:
                raise TraceCorruptError(
                    self.path, self._lineno, f"malformed line: {exc}"
                )
            if isinstance(obj, dict) and obj.get("kind") == "footer":
                self._finish_footer(obj)
                break
            self._crc = zlib.crc32(line.encode("utf-8"), self._crc)
            try:
                event = decode_event(obj)
            except TraceSchemaError as exc:
                raise TraceCorruptError(self.path, self._lineno, str(exc))
            except (AttributeError, KeyError, TypeError, ValueError) as exc:
                raise TraceCorruptError(
                    self.path, self._lineno, f"undecodable event: {exc!r}"
                )
            self.events_read += 1
            yield event

    def read_events(self) -> list[Event]:
        """Exhaust the stream into a list (footer becomes available)."""
        return list(self)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def record_execution(
    program: Program,
    scheduler,
    *,
    path,
    seed: int = 0,
    max_steps: int = 1_000_000,
    scheduler_spec: str = "",
    observers: Iterable[ExecutionObserver] = (),
) -> ExecutionResult:
    """Run ``program`` once, recording every event to ``path``.

    Extra ``observers`` (e.g. live detectors) ride along on the same
    execution, which is how the equivalence tests compare online and
    offline analysis of the *same* schedule with a single run.
    """
    from repro.obs import maybe_registry

    m = maybe_registry()
    if m is not None:
        m.inc("trace.records")
    recorder = TraceRecorder(path, scheduler=scheduler_spec)
    execution = Execution(
        program,
        seed=seed,
        observers=[recorder, *observers],
        max_steps=max_steps,
    )
    return execution.run(scheduler)


def load_trace(path) -> tuple[TraceHeader, list[Event], TraceFooter | None]:
    """Whole-file convenience: (header, events, footer)."""
    reader = TraceReader(path)
    events = reader.read_events()
    return reader.header, events, reader.footer


def verify_trace(path) -> TraceFooter:
    """Read ``path`` end to end, enforcing integrity.

    Returns the verified footer; raises
    :class:`~repro.trace.schema.TraceCorruptError` on any damage.  This
    is the full-strength check behind ``repro store verify`` — the
    streaming reader performs the same checks for free during analysis.
    """
    with TraceReader(path) as reader:
        for _ in reader:
            pass
        assert reader.footer is not None  # missing footer raises above
        return reader.footer


def remove_partial(path) -> None:
    """Best-effort cleanup of a trace that failed mid-write."""
    try:
        os.unlink(path)
    except OSError:
        pass


__all__ = [
    "TraceWriter",
    "TraceRecorder",
    "TraceReader",
    "record_execution",
    "load_trace",
    "verify_trace",
]
