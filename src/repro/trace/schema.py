"""Versioned wire schema for serialized execution traces.

One trace file is a JSONL stream: a header object, one object per runtime
event in execution order, and a footer object summarizing the
:class:`~repro.runtime.interpreter.ExecutionResult`.  Every payload type
(statements, locations, lock ids, errors) round-trips through the stable
token encodings the runtime value objects define, so ``decode_event``
rebuilds events that compare equal to the originals — which is what makes
"analyze a recorded trace" produce reports identical to the live run.

Versioning discipline: ``SCHEMA_VERSION`` bumps on any change to the
encoding of existing event kinds or tokens.  The version is part of both
the header (checked on read) and the :class:`~repro.trace.store.TraceKey`
cache key (so a schema bump invalidates every cached trace rather than
misdecoding it).  Adding a *new* event kind is also a bump: old readers
must fail loudly instead of silently dropping events an analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import (
    Access,
    AcquireEvent,
    DeadlockEvent,
    ErrorEvent,
    ErrorInfo,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.runtime.interpreter import ExecutionResult
from repro.runtime.location import location_from_token
from repro.runtime.statement import Statement

#: bump on ANY change to event/token encodings (see module docstring).
#: v2: the footer carries a CRC32 of every preceding line plus the event
#: count, and readers enforce both (integrity became part of the format).
SCHEMA_VERSION = 2


class TraceSchemaError(ValueError):
    """A trace file does not conform to the schema this reader speaks."""


class TraceCorruptError(TraceSchemaError):
    """A trace file is damaged: malformed, truncated, or checksum-failing.

    Distinct from a plain :class:`TraceSchemaError` (an honest version
    mismatch): corruption means the *bytes* are wrong — a torn write, a
    flipped bit, a truncated download.  The :class:`~repro.trace.store.
    TraceStore` treats it as recoverable (quarantine the entry,
    re-record); everything else should treat it as "this file is not
    evidence".

    Attributes:
        path: the trace file.
        offset: 1-based line number where corruption was detected (0 when
            the whole file is implicated, e.g. a checksum mismatch only
            noticed at the footer).
        reason: what check failed.
    """

    def __init__(self, path, offset: int, reason: str) -> None:
        self.path = str(path)
        self.offset = offset
        self.reason = reason
        where = f"line {offset}" if offset else "whole file"
        super().__init__(f"{self.path}: corrupt trace ({where}): {reason}")


# --------------------------------------------------------------------- #
# header / footer
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class TraceHeader:
    """First line of a trace: provenance of the recorded execution."""

    program: str
    seed: int
    scheduler: str
    max_steps: int
    schema: int = SCHEMA_VERSION

    def to_jsonable(self) -> dict:
        return {
            "kind": "header",
            "schema": self.schema,
            "program": self.program,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "max_steps": self.max_steps,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TraceHeader":
        if data.get("kind") != "header":
            raise TraceSchemaError("trace does not start with a header line")
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise TraceSchemaError(
                f"trace schema v{schema} is not the supported v{SCHEMA_VERSION}"
            )
        return cls(
            program=data["program"],
            seed=data["seed"],
            scheduler=data.get("scheduler", ""),
            max_steps=data.get("max_steps", 0),
            schema=schema,
        )


@dataclass(frozen=True)
class TraceFooter:
    """Last line of a trace: the execution's outcome summary.

    ``events`` and ``crc32`` double as the file's integrity record: the
    CRC covers every line *before* the footer (header included), so a
    reader that streamed the whole file can verify both the count and the
    checksum the moment it parses this line.
    """

    steps: int = 0
    events: int = 0
    crashes: tuple[dict, ...] = ()
    deadlock: bool = False
    deadlocked_tids: tuple[int, ...] = ()
    truncated: bool = False
    #: CRC32 of every preceding line's bytes (header + events, newlines
    #: included); ``None`` only in hand-built footers.
    crc32: int | None = None

    @classmethod
    def from_result(
        cls, result: ExecutionResult, events: int, *, crc32: int | None = None
    ) -> "TraceFooter":
        return cls(
            steps=result.steps,
            events=events,
            crashes=tuple(
                {
                    "tid": crash.tid,
                    "name": crash.name,
                    "e": _encode_error(crash.error),
                    "st": crash.stmt.to_token() if crash.stmt else None,
                    "step": crash.step,
                }
                for crash in result.crashes
            ),
            deadlock=result.deadlock,
            deadlocked_tids=tuple(result.deadlocked_tids),
            truncated=result.truncated,
            crc32=crc32,
        )

    def to_jsonable(self) -> dict:
        return {
            "kind": "footer",
            "steps": self.steps,
            "events": self.events,
            "crashes": list(self.crashes),
            "deadlock": self.deadlock,
            "deadlocked_tids": list(self.deadlocked_tids),
            "truncated": self.truncated,
            "crc32": self.crc32,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "TraceFooter":
        return cls(
            steps=data.get("steps", 0),
            events=data.get("events", 0),
            crashes=tuple(data.get("crashes", ())),
            deadlock=data.get("deadlock", False),
            deadlocked_tids=tuple(data.get("deadlocked_tids", ())),
            truncated=data.get("truncated", False),
            crc32=data.get("crc32"),
        )


# --------------------------------------------------------------------- #
# event codec
# --------------------------------------------------------------------- #


def _encode_error(info: ErrorInfo | None) -> dict | None:
    if info is None:
        return None
    token: dict = {"t": info.type}
    if info.message:
        token["m"] = info.message
    if info.module:
        token["mod"] = info.module
    return token


def _decode_error(token: dict | None) -> ErrorInfo | None:
    if token is None:
        return None
    return ErrorInfo(
        type=token["t"], message=token.get("m", ""), module=token.get("mod", "")
    )


def _encode_stmt(stmt: Statement | None) -> dict | None:
    return None if stmt is None else stmt.to_token()


def _decode_stmt(token: dict | None) -> Statement | None:
    return None if token is None else Statement.from_token(token)


def encode_event(event: Event) -> dict:
    """One event -> one JSON-safe dict (the trace line payload)."""
    obj: dict = {"s": event.step, "t": event.tid}
    if isinstance(event, MemEvent):
        obj["k"] = "MEM"
        obj["st"] = event.stmt.to_token()
        obj["loc"] = event.location.to_token()
        obj["a"] = "w" if event.access is Access.WRITE else "r"
        obj["L"] = [
            lock.to_token()
            for lock in sorted(event.locks_held, key=lambda l: l.uid)
        ]
    elif isinstance(event, SndEvent):
        obj["k"] = "SND"
        obj["g"] = event.msg_id
    elif isinstance(event, RcvEvent):
        obj["k"] = "RCV"
        obj["g"] = event.msg_id
    elif isinstance(event, AcquireEvent):
        obj["k"] = "ACQ"
        obj["l"] = event.lock.to_token()
        obj["st"] = _encode_stmt(event.stmt)
    elif isinstance(event, ReleaseEvent):
        obj["k"] = "REL"
        obj["l"] = event.lock.to_token()
        obj["st"] = _encode_stmt(event.stmt)
    elif isinstance(event, ThreadStartEvent):
        obj["k"] = "TS"
        obj["c"] = event.child
        obj["n"] = event.name
    elif isinstance(event, ThreadEndEvent):
        obj["k"] = "TE"
        obj["e"] = _encode_error(event.error)
    elif isinstance(event, ErrorEvent):
        obj["k"] = "ERR"
        obj["st"] = _encode_stmt(event.stmt)
        obj["e"] = _encode_error(event.error)
    elif isinstance(event, DeadlockEvent):
        obj["k"] = "DL"
        obj["b"] = list(event.blocked)
    else:
        raise TraceSchemaError(
            f"cannot encode unknown event type {type(event).__name__}"
        )
    return obj


def decode_event(obj: dict) -> Event:
    """One trace line payload -> the event it encoded (value-equal)."""
    from repro.runtime.location import LockId  # local alias for brevity

    kind = obj.get("k")
    step, tid = obj["s"], obj["t"]
    if kind == "MEM":
        return MemEvent(
            step=step,
            tid=tid,
            stmt=Statement.from_token(obj["st"]),
            location=location_from_token(obj["loc"]),
            access=Access.WRITE if obj["a"] == "w" else Access.READ,
            locks_held=frozenset(LockId.from_token(t) for t in obj["L"]),
        )
    if kind == "SND":
        return SndEvent(step=step, tid=tid, msg_id=obj["g"])
    if kind == "RCV":
        return RcvEvent(step=step, tid=tid, msg_id=obj["g"])
    if kind == "ACQ":
        return AcquireEvent(
            step=step,
            tid=tid,
            lock=LockId.from_token(obj["l"]),
            stmt=_decode_stmt(obj.get("st")),
        )
    if kind == "REL":
        return ReleaseEvent(
            step=step,
            tid=tid,
            lock=LockId.from_token(obj["l"]),
            stmt=_decode_stmt(obj.get("st")),
        )
    if kind == "TS":
        return ThreadStartEvent(step=step, tid=tid, child=obj["c"], name=obj["n"])
    if kind == "TE":
        return ThreadEndEvent(step=step, tid=tid, error=_decode_error(obj.get("e")))
    if kind == "ERR":
        return ErrorEvent(
            step=step,
            tid=tid,
            stmt=_decode_stmt(obj.get("st")),
            error=_decode_error(obj["e"]),
        )
    if kind == "DL":
        return DeadlockEvent(step=step, tid=tid, blocked=tuple(obj["b"]))
    raise TraceSchemaError(f"unknown event kind {kind!r} in trace")


__all__ = [
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "TraceCorruptError",
    "TraceHeader",
    "TraceFooter",
    "encode_event",
    "decode_event",
]
