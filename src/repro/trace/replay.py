"""Offline analysis: feed a recorded trace through execution observers.

The detectors were written as live observers of an
:class:`~repro.runtime.interpreter.Execution`; this module turns any of
them into a *stream consumer*.  :func:`replay_events` drives the standard
``on_start`` / ``on_event`` / ``on_finish`` protocol over a recorded event
sequence, with a :class:`ReplaySource` standing in for the execution — so
the hybrid, happens-before, and lockset detectors produce reports over a
trace file that are identical to what they produced live (asserted for
every registered workload in the equivalence suite).

This is the record-once / analyze-many architecture of replay-based
detection (Ronsse & De Bosschere) and single-trace predictive analysis
(Mathur et al.): one execution, any number of analyses, at stream cost.
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping, Sequence

from repro.obs import maybe_registry
from repro.runtime.events import Event
from repro.runtime.observer import ExecutionObserver, ObserverChain

from .io import TraceReader


class _TimedObserver(ExecutionObserver):
    """Wrap one observer, accumulating its CPU time within a shared pass.

    ``analyze_trace`` streams a trace through all requested detectors at
    once, so a wall-clock span around the pass cannot attribute cost to a
    single detector.  This wrapper meters each lifecycle call separately;
    the accumulated seconds are published by ``analyze_trace`` as the
    ``predict.analyze.<name>`` span.  Only used while a metrics registry
    is collecting — the default analysis path stays wrapper-free.
    """

    __slots__ = ("inner", "seconds")

    def __init__(self, inner: ExecutionObserver) -> None:
        self.inner = inner
        self.seconds = 0.0

    def _timed(self, method, *args) -> None:
        start = time.perf_counter()
        method(*args)
        self.seconds += time.perf_counter() - start

    def on_start(self, execution) -> None:
        self._timed(self.inner.on_start, execution)

    def on_event(self, event: Event) -> None:
        self._timed(self.inner.on_event, event)

    def on_finish(self, execution) -> None:
        self._timed(self.inner.on_finish, execution)


class ReplaySource:
    """Stand-in for an ``Execution`` during offline analysis.

    Observers only consult the execution for provenance (the program
    name, via :func:`repro.detectors.report._program_name`); everything
    analytical arrives through the event stream.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"ReplaySource({self.name!r})"


def replay_events(
    events: Iterable[Event],
    observers: Sequence[ExecutionObserver],
    *,
    program: str = "?",
) -> list[ExecutionObserver]:
    """Drive recorded ``events`` through ``observers``; returns them.

    The full observer lifecycle runs — ``on_start`` before the first
    event, every event in order, ``on_finish`` after the last — so an
    observer cannot tell a replay from the live execution that produced
    the trace (beyond the absent ``Execution`` internals, which the
    observer protocol forbids touching anyway).
    """
    chain = ObserverChain(observers)
    source = ReplaySource(program)
    chain.on_start(source)
    for event in events:
        chain.on_event(event)
    chain.on_finish(source)
    return chain.observers


def analyze_trace(
    trace,
    detectors: Sequence[str] = ("hybrid",),
    *,
    history_cap: int = 128,
    **detector_options,
) -> "Mapping[str, object]":
    """Run named detectors over one recorded trace; reports by name.

    ``trace`` is a path or an open :class:`~repro.trace.io.TraceReader`.
    All detectors consume a single streamed pass over the file.  Extra
    keyword options (e.g. ``sample_cap``) reach whichever detectors
    accept them, via :func:`~repro.detectors.make_detector`'s
    keyword-tolerant construction.

    While a metrics registry is collecting, each detector's share of the
    pass is metered and published as a ``predict.analyze.<name>`` span,
    so multi-detector analyses show where the CPU time went.
    """
    from repro.detectors import make_detector  # detectors don't import trace

    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
    built = {
        name: make_detector(name, history_cap=history_cap, **detector_options)
        for name in detectors
    }
    m = maybe_registry()
    if m is not None:
        m.inc("trace.replays")
        m.inc("trace.analyses", len(built))
        timed = {name: _TimedObserver(obs) for name, obs in built.items()}
        replay_events(
            reader, list(timed.values()), program=reader.header.program
        )
        for name, wrapper in timed.items():
            m.observe_span(f"predict.analyze.{name}", wrapper.seconds)
    else:
        replay_events(reader, list(built.values()), program=reader.header.program)
    return {name: observer.report for name, observer in built.items()}


__all__ = ["ReplaySource", "replay_events", "analyze_trace"]
