"""Offline analysis: feed a recorded trace through execution observers.

The detectors were written as live observers of an
:class:`~repro.runtime.interpreter.Execution`; this module turns any of
them into a *stream consumer*.  :func:`replay_events` drives the standard
``on_start`` / ``on_event`` / ``on_finish`` protocol over a recorded event
sequence, with a :class:`ReplaySource` standing in for the execution — so
the hybrid, happens-before, and lockset detectors produce reports over a
trace file that are identical to what they produced live (asserted for
every registered workload in the equivalence suite).

This is the record-once / analyze-many architecture of replay-based
detection (Ronsse & De Bosschere) and single-trace predictive analysis
(Mathur et al.): one execution, any number of analyses, at stream cost.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.obs import maybe_registry
from repro.runtime.events import Event
from repro.runtime.observer import ExecutionObserver, ObserverChain

from .io import TraceReader


class ReplaySource:
    """Stand-in for an ``Execution`` during offline analysis.

    Observers only consult the execution for provenance (the program
    name, via :func:`repro.detectors.report._program_name`); everything
    analytical arrives through the event stream.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return f"ReplaySource({self.name!r})"


def replay_events(
    events: Iterable[Event],
    observers: Sequence[ExecutionObserver],
    *,
    program: str = "?",
) -> list[ExecutionObserver]:
    """Drive recorded ``events`` through ``observers``; returns them.

    The full observer lifecycle runs — ``on_start`` before the first
    event, every event in order, ``on_finish`` after the last — so an
    observer cannot tell a replay from the live execution that produced
    the trace (beyond the absent ``Execution`` internals, which the
    observer protocol forbids touching anyway).
    """
    chain = ObserverChain(observers)
    source = ReplaySource(program)
    chain.on_start(source)
    for event in events:
        chain.on_event(event)
    chain.on_finish(source)
    return chain.observers


def analyze_trace(
    trace,
    detectors: Sequence[str] = ("hybrid",),
    *,
    history_cap: int = 128,
) -> "Mapping[str, object]":
    """Run named detectors over one recorded trace; reports by name.

    ``trace`` is a path or an open :class:`~repro.trace.io.TraceReader`.
    All detectors consume a single streamed pass over the file.
    """
    from repro.detectors import make_detector  # detectors don't import trace

    reader = trace if isinstance(trace, TraceReader) else TraceReader(trace)
    built = {
        name: make_detector(name, history_cap=history_cap) for name in detectors
    }
    m = maybe_registry()
    if m is not None:
        m.inc("trace.replays")
        m.inc("trace.analyses", len(built))
    replay_events(reader, list(built.values()), program=reader.header.program)
    return {name: observer.report for name, observer in built.items()}


__all__ = ["ReplaySource", "replay_events", "analyze_trace"]
