"""First-class execution traces: record once, analyze many.

This package makes the event stream of one execution a serializable,
cacheable artifact, decoupling the expensive half of Phase 1 (running the
program) from the cheap half (detector passes over the events):

* :mod:`~repro.trace.schema` — the versioned JSONL wire format;
* :mod:`~repro.trace.io` — :class:`TraceWriter` / :class:`TraceReader` /
  :class:`TraceRecorder` streaming I/O (gzip via a ``.gz`` suffix);
* :mod:`~repro.trace.store` — the :class:`TraceStore` cache keyed by
  (workload, seed, scheduler spec, max_steps, schema version);
* :mod:`~repro.trace.replay` — :func:`replay_events`, which drives any
  :class:`~repro.runtime.observer.ExecutionObserver` over a recorded
  stream, and :func:`analyze_trace` for named detectors.

``detect_races(..., trace_dir=...)`` builds the record-once /
analyze-many pipeline on these pieces; the CLI exposes them as the
``record`` and ``analyze`` subcommands.
"""

from .io import (
    TraceReader,
    TraceRecorder,
    TraceWriter,
    load_trace,
    record_execution,
    verify_trace,
)
from .replay import ReplaySource, analyze_trace, replay_events
from .schema import (
    SCHEMA_VERSION,
    TraceCorruptError,
    TraceFooter,
    TraceHeader,
    TraceSchemaError,
    decode_event,
    encode_event,
)
from .store import (
    PHASE1_SCHEDULER,
    QUARANTINE_DIR,
    StoreStats,
    TraceKey,
    TraceStore,
    detect_key,
    scheduler_from_spec,
)

__all__ = [
    "SCHEMA_VERSION",
    "TraceSchemaError",
    "TraceCorruptError",
    "TraceHeader",
    "TraceFooter",
    "encode_event",
    "decode_event",
    "TraceWriter",
    "TraceReader",
    "TraceRecorder",
    "record_execution",
    "load_trace",
    "verify_trace",
    "TraceKey",
    "TraceStore",
    "StoreStats",
    "detect_key",
    "QUARANTINE_DIR",
    "PHASE1_SCHEDULER",
    "scheduler_from_spec",
    "ReplaySource",
    "replay_events",
    "analyze_trace",
]
