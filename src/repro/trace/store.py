"""Content-addressed cache of recorded execution traces.

Executions are the expensive half of Phase 1 — a detector pass over an
event stream is cheap by comparison.  The :class:`TraceStore` makes the
execution a cacheable artifact: traces are keyed by everything that
determines the event stream —

    (workload, seed, scheduler spec, max_steps, schema version)

— and *nothing* that doesn't (detector choice, history caps: those are
analysis parameters, which is the whole point of record-once /
analyze-many).  A warm store answers ``detect_races`` campaigns with zero
program executions; a schema bump or any execution-parameter change
misses cleanly and re-records.

Concurrency: workers recording into a shared store write to a unique temp
name and ``os.replace`` into the final path, so concurrent recorders of
the same key race benignly (identical deterministic content; last rename
wins) and readers never observe a partial file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.obs import maybe_registry
from repro.runtime.program import Program

from .io import TraceReader, record_execution, remove_partial
from .schema import SCHEMA_VERSION

#: scheduler spec used by every Phase-1 detection run.
PHASE1_SCHEDULER = "random:every"


def scheduler_from_spec(spec: str):
    """Build the scheduler a spec string names.

    Specs are the serializable identity of a scheduling policy:
    ``random:every``, ``random:sync``, or ``default``.  (Imported lazily:
    schedulers live in :mod:`repro.core`, which itself imports this
    package at module load.)
    """
    from repro.core.schedulers import DefaultScheduler, RandomScheduler

    if spec == "default":
        return DefaultScheduler()
    if spec.startswith("random:"):
        return RandomScheduler(preemption=spec.split(":", 1)[1])
    raise ValueError(f"unknown scheduler spec {spec!r}")


@dataclass(frozen=True)
class TraceKey:
    """Everything that determines a recorded event stream, and only that."""

    workload: str
    seed: int
    scheduler: str = PHASE1_SCHEDULER
    max_steps: int = 1_000_000
    schema: int = SCHEMA_VERSION

    def canonical(self) -> str:
        return json.dumps(
            {
                "workload": self.workload,
                "seed": self.seed,
                "scheduler": self.scheduler,
                "max_steps": self.max_steps,
                "schema": self.schema,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:16]


@dataclass
class StoreStats:
    """Cache behaviour of one store instance (asserted in tests/benches)."""

    hits: int = 0
    misses: int = 0
    #: program executions this store performed to fill misses — the number
    #: a warm cache drives to zero.
    executions: int = 0


class TraceStore:
    """Filesystem cache mapping :class:`TraceKey` -> trace file."""

    def __init__(self, root, *, compress: bool = False) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self.stats = StoreStats()

    # -- addressing ---------------------------------------------------- #

    def path_for(self, key: TraceKey) -> Path:
        suffix = ".jsonl.gz" if self.compress else ".jsonl"
        return self.root / f"{key.workload}-s{key.seed}-{key.digest()}{suffix}"

    def get(self, key: TraceKey) -> Path | None:
        """The cached trace for ``key``, in either compression flavor."""
        for suffix in (".jsonl", ".jsonl.gz"):
            path = self.root / f"{key.workload}-s{key.seed}-{key.digest()}{suffix}"
            if path.exists():
                return path
        return None

    # -- record-or-load ------------------------------------------------- #

    def ensure(
        self,
        key: TraceKey,
        program: Program,
        *,
        observers: Iterable = (),
    ) -> Path:
        """Return a trace for ``key``, executing the program only on miss.

        ``observers`` (live detectors, usually) are attached to the
        recording execution on a miss and see nothing on a hit — callers
        doing record-once/analyze-many should replay the returned trace
        rather than rely on them.
        """
        m = maybe_registry()
        cached = self.get(key)
        if cached is not None:
            self.stats.hits += 1
            if m is not None:
                m.inc("trace.store_hits")
            return cached
        self.stats.misses += 1
        if m is not None:
            m.inc("trace.store_misses")
        final = self.path_for(key)
        # Keep the gz suffix decision on the temp name so the writer picks
        # the right codec, then publish atomically.
        tmp = final.parent / f"{final.stem}.{os.getpid()}.tmp.jsonl"
        if self.compress:
            tmp = tmp.with_name(tmp.name + ".gz")
        try:
            self.stats.executions += 1
            record_execution(
                program,
                scheduler_from_spec(key.scheduler),
                path=tmp,
                seed=key.seed,
                max_steps=key.max_steps,
                scheduler_spec=key.scheduler,
                observers=observers,
            )
            os.replace(tmp, final)
        except BaseException:
            remove_partial(tmp)
            raise
        if m is not None:
            m.inc("trace.store_executions")
            m.inc("trace.store_bytes", final.stat().st_size)
        return final

    def open(self, key: TraceKey) -> TraceReader | None:
        path = self.get(key)
        return None if path is None else TraceReader(path)

    # -- maintenance ---------------------------------------------------- #

    def entries(self) -> list[Path]:
        """All trace files currently in the store, sorted by name."""
        return sorted(
            p
            for p in self.root.iterdir()
            if p.name.endswith((".jsonl", ".jsonl.gz")) and ".tmp" not in p.name
        )

    def clear(self) -> int:
        """Delete every cached trace; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def detect_key(
    workload: str, seed: int, *, max_steps: int = 1_000_000
) -> TraceKey:
    """The cache key of one Phase-1 detection execution."""
    return TraceKey(
        workload=workload,
        seed=seed,
        scheduler=PHASE1_SCHEDULER,
        max_steps=max_steps,
    )


__all__ = [
    "PHASE1_SCHEDULER",
    "scheduler_from_spec",
    "TraceKey",
    "TraceStore",
    "StoreStats",
    "detect_key",
]
