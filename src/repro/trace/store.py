"""Content-addressed cache of recorded execution traces.

Executions are the expensive half of Phase 1 — a detector pass over an
event stream is cheap by comparison.  The :class:`TraceStore` makes the
execution a cacheable artifact: traces are keyed by everything that
determines the event stream —

    (workload, seed, scheduler spec, max_steps, schema version)

— and *nothing* that doesn't (detector choice, history caps: those are
analysis parameters, which is the whole point of record-once /
analyze-many).  A warm store answers ``detect_races`` campaigns with zero
program executions; a schema bump or any execution-parameter change
misses cleanly and re-records.

Concurrency: workers recording into a shared store write to a unique temp
name and ``os.replace`` into the final path, so concurrent recorders of
the same key race benignly (identical deterministic content; last rename
wins) and readers never observe a partial file.

Durability: the store never trusts its own disk.  A cached entry that
fails integrity checks on read (see
:class:`~repro.trace.schema.TraceCorruptError`) is quarantined to a
sidecar directory and transparently re-recorded — via
:meth:`TraceStore.with_recovery`, a corrupt entry costs one execution,
never the campaign.  A disk budget (``max_bytes`` / ``max_entries``)
bounds the cache with LRU-by-mtime eviction, and a
:class:`~repro.obs.health.HealthController` can switch the store to
*ephemeral* recording (analyze-and-discard, cache stops growing) once
disk pressure repeats.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable

from repro.obs import maybe_registry
from repro.obs.health import HealthController
from repro.obs.timeline import maybe_timeline
from repro.runtime.program import Program

from .io import TraceReader, record_execution, remove_partial, verify_trace
from .schema import SCHEMA_VERSION, TraceCorruptError

#: subdirectory (under the store root) where corrupt entries are moved.
QUARANTINE_DIR = "quarantine"

#: scheduler spec used by every Phase-1 detection run.
PHASE1_SCHEDULER = "random:every"


def scheduler_from_spec(spec: str):
    """Build the scheduler a spec string names.

    Specs are the serializable identity of a scheduling policy:
    ``random:every``, ``random:sync``, or ``default``.  (Imported lazily:
    schedulers live in :mod:`repro.core`, which itself imports this
    package at module load.)
    """
    from repro.core.schedulers import DefaultScheduler, RandomScheduler

    if spec == "default":
        return DefaultScheduler()
    if spec.startswith("random:"):
        return RandomScheduler(preemption=spec.split(":", 1)[1])
    raise ValueError(f"unknown scheduler spec {spec!r}")


@dataclass(frozen=True)
class TraceKey:
    """Everything that determines a recorded event stream, and only that."""

    workload: str
    seed: int
    scheduler: str = PHASE1_SCHEDULER
    max_steps: int = 1_000_000
    schema: int = SCHEMA_VERSION

    def canonical(self) -> str:
        return json.dumps(
            {
                "workload": self.workload,
                "seed": self.seed,
                "scheduler": self.scheduler,
                "max_steps": self.max_steps,
                "schema": self.schema,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def digest(self) -> str:
        return hashlib.sha256(self.canonical().encode("utf-8")).hexdigest()[:16]


@dataclass
class StoreStats:
    """Cache behaviour of one store instance (asserted in tests/benches)."""

    hits: int = 0
    misses: int = 0
    #: program executions this store performed to fill misses — the number
    #: a warm cache drives to zero.
    executions: int = 0
    #: corrupt entries quarantined on read.
    corrupt: int = 0
    #: corrupt entries transparently re-recorded by :meth:`with_recovery`.
    recovered: int = 0
    #: entries deleted by the disk budget (LRU) or an explicit ``gc``.
    evictions: int = 0
    evicted_bytes: int = 0
    #: recordings that were analyzed and discarded (recording disabled).
    ephemeral: int = 0


class TraceStore:
    """Filesystem cache mapping :class:`TraceKey` -> trace file.

    Parameters:
        compress: record ``.jsonl.gz`` instead of plain ``.jsonl``.
        max_bytes: disk budget — total bytes of cached traces after which
            the oldest entries (by mtime) are evicted.  ``None`` = no cap.
        max_entries: same budget expressed as an entry count.
        fsync: fsync each trace (and the store directory) before
            publishing — survives power loss at the cost of write latency.
        health: campaign :class:`~repro.obs.health.HealthController` to
            notify of corruption/budget signals and to consult for the
            ephemeral-recording policy.  ``None`` = standalone store,
            always persists.
    """

    def __init__(
        self,
        root,
        *,
        compress: bool = False,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        fsync: bool = False,
        health: HealthController | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        if max_entries is not None and max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.compress = compress
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.fsync = fsync
        self.health = health
        self.stats = StoreStats()

    # -- addressing ---------------------------------------------------- #

    def path_for(self, key: TraceKey) -> Path:
        suffix = ".jsonl.gz" if self.compress else ".jsonl"
        return self.root / f"{key.workload}-s{key.seed}-{key.digest()}{suffix}"

    def get(self, key: TraceKey) -> Path | None:
        """The cached trace for ``key``, in either compression flavor."""
        for suffix in (".jsonl", ".jsonl.gz"):
            path = self.root / f"{key.workload}-s{key.seed}-{key.digest()}{suffix}"
            if path.exists():
                return path
        return None

    # -- record-or-load ------------------------------------------------- #

    def ensure(
        self,
        key: TraceKey,
        program: Program,
        *,
        observers: Iterable = (),
    ) -> Path:
        """Return a trace for ``key``, executing the program only on miss.

        ``observers`` (live detectors, usually) are attached to the
        recording execution on a miss and see nothing on a hit — callers
        doing record-once/analyze-many should replay the returned trace
        rather than rely on them.
        """
        m = maybe_registry()
        tl = maybe_timeline()
        cached = self.get(key)
        if cached is not None:
            self.stats.hits += 1
            if m is not None:
                m.inc("trace.store_hits")
            if tl is not None:
                self._emit_store_event(tl, key, "hit")
            return cached
        self.stats.misses += 1
        if m is not None:
            m.inc("trace.store_misses")
        if tl is not None:
            self._emit_store_event(tl, key, "miss")
        final = self.path_for(key)
        # Keep the gz suffix decision on the temp name so the writer picks
        # the right codec, then publish atomically.
        tmp = final.parent / f"{final.stem}.{os.getpid()}.tmp.jsonl"
        if self.compress:
            tmp = tmp.with_name(tmp.name + ".gz")
        try:
            self.stats.executions += 1
            record_execution(
                program,
                scheduler_from_spec(key.scheduler),
                path=tmp,
                seed=key.seed,
                max_steps=key.max_steps,
                scheduler_spec=key.scheduler,
                observers=observers,
            )
        except BaseException:
            remove_partial(tmp)
            raise
        if m is not None:
            m.inc("trace.store_executions")
            m.inc("trace.store_bytes", tmp.stat().st_size)
        if not self._recording_enabled():
            # Under disk pressure the cache stops growing: hand the caller
            # an unpublished file to analyze and discard.
            ephemeral = final.with_name(
                final.name.replace(".jsonl", f".{os.getpid()}.ephemeral.jsonl", 1)
            )
            os.replace(tmp, ephemeral)
            self.stats.ephemeral += 1
            if m is not None:
                m.inc("trace.store_ephemeral")
            return ephemeral
        if self.fsync:
            self._fsync_file(tmp)
        os.replace(tmp, final)
        if self.fsync:
            self._fsync_dir()
        self._enforce_budget(keep=final)
        return final

    def _recording_enabled(self) -> bool:
        return self.health is None or self.health.trace_recording_enabled

    @staticmethod
    def _emit_store_event(tl, key: TraceKey, outcome: str) -> None:
        """"store" is a non-deterministic timeline kind: which process sees
        the hit depends on recording order, so the event rides only in
        --timeline-out documents, never the run report's deterministic
        section."""
        tl.emit(
            "store",
            (key.workload, key.seed, outcome),
            {"scheduler": key.scheduler, "max_steps": key.max_steps},
            wall_s=time.time(),
        )

    def _fsync_file(self, path: Path) -> None:
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _fsync_dir(self) -> None:
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def discard(self, path) -> None:
        """Drop an ephemeral (unpublished) trace once analyzed."""
        if ".ephemeral." in Path(path).name:
            remove_partial(path)

    def open(self, key: TraceKey) -> TraceReader | None:
        path = self.get(key)
        return None if path is None else TraceReader(path)

    # -- corruption recovery -------------------------------------------- #

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIR

    def quarantine(self, path, reason: str) -> Path | None:
        """Move a damaged entry out of the cache, preserving the evidence.

        The file lands in ``<root>/quarantine/`` (suffixed ``.N`` on name
        collision) next to a ``.reason`` sidecar recording why.  Returns
        the quarantined path, or ``None`` if the file vanished first.
        """
        src = Path(path)
        self.stats.corrupt += 1
        m = maybe_registry()
        if m is not None:
            m.inc("trace.store_corrupt")
        if self.health is not None:
            self.health.record_corrupt_trace()
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / src.name
        n = 0
        while dest.exists():
            n += 1
            dest = self.quarantine_dir / f"{src.name}.{n}"
        try:
            os.replace(src, dest)
        except FileNotFoundError:
            return None
        dest.with_name(dest.name + ".reason").write_text(reason + "\n")
        return dest

    def with_recovery(
        self,
        key: TraceKey,
        program: Program,
        consume: Callable[[Path], object],
        *,
        observers: Iterable = (),
    ):
        """Run ``consume(path)`` on the trace for ``key``, healing corruption.

        On :class:`~repro.trace.schema.TraceCorruptError` the damaged
        entry is quarantined, the trace re-recorded (and re-published
        atomically), and ``consume`` retried once — so a corrupt cache
        entry costs one execution, never the campaign.  A second failure
        propagates: that is fresh-recording corruption, i.e. a real bug
        or a dying disk, not bit rot.
        """
        path = self.ensure(key, program, observers=observers)
        try:
            return consume(path)
        except TraceCorruptError as exc:
            self.quarantine(exc.path, exc.reason)
            fresh = self.ensure(key, program)
            result = consume(fresh)
            self.stats.recovered += 1
            m = maybe_registry()
            if m is not None:
                m.inc("trace.store_recovered")
            self.discard(fresh)
            return result
        finally:
            self.discard(path)

    # -- maintenance ---------------------------------------------------- #

    def entries(self) -> list[Path]:
        """All trace files currently in the store, sorted by name."""
        return sorted(
            p
            for p in self.root.iterdir()
            if p.name.endswith((".jsonl", ".jsonl.gz"))
            and ".tmp" not in p.name
            and ".ephemeral" not in p.name
        )

    def total_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.entries())

    def _enforce_budget(self, *, keep: Path | None = None) -> tuple[int, int]:
        """Evict oldest-first until the store fits its budget.

        ``keep`` (the just-published entry a caller is about to read) is
        never evicted, even if it alone exceeds the budget.  Returns
        ``(entries_removed, bytes_removed)``.
        """
        if self.max_bytes is None and self.max_entries is None:
            return (0, 0)
        aged = []
        for path in self.entries():
            try:
                st = path.stat()
            except OSError:
                continue
            aged.append((st.st_mtime, path, st.st_size))
        aged.sort()
        count = len(aged)
        total = sum(size for _, _, size in aged)
        removed = removed_bytes = 0
        for _, path, size in aged:
            over = (self.max_entries is not None and count > self.max_entries) or (
                self.max_bytes is not None and total > self.max_bytes
            )
            if not over:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            count -= 1
            total -= size
            removed += 1
            removed_bytes += size
        if removed:
            self.stats.evictions += removed
            self.stats.evicted_bytes += removed_bytes
            m = maybe_registry()
            if m is not None:
                m.inc("trace.store_evictions", removed)
                m.inc("trace.store_evicted_bytes", removed_bytes)
            if self.health is not None:
                self.health.record_disk_budget_hit()
        return (removed, removed_bytes)

    def gc(self) -> tuple[int, int]:
        """Enforce the disk budget now; returns (entries, bytes) removed."""
        return self._enforce_budget()

    def verify(
        self, *, quarantine: bool = False
    ) -> list[tuple[Path, TraceCorruptError]]:
        """Integrity-check every entry; returns the damaged ones.

        With ``quarantine=True``, damaged entries are also moved to the
        quarantine sidecar (the ``repro store verify --quarantine`` path).
        """
        bad: list[tuple[Path, TraceCorruptError]] = []
        for path in self.entries():
            try:
                verify_trace(path)
            except TraceCorruptError as exc:
                bad.append((path, exc))
                if quarantine:
                    self.quarantine(path, exc.reason)
        return bad

    def clear(self) -> int:
        """Delete every cached trace; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def detect_key(
    workload: str, seed: int, *, max_steps: int = 1_000_000
) -> TraceKey:
    """The cache key of one Phase-1 detection execution."""
    return TraceKey(
        workload=workload,
        seed=seed,
        scheduler=PHASE1_SCHEDULER,
        max_steps=max_steps,
    )


__all__ = [
    "PHASE1_SCHEDULER",
    "QUARANTINE_DIR",
    "scheduler_from_spec",
    "TraceKey",
    "TraceStore",
    "StoreStats",
    "detect_key",
]
