"""Observability: metrics, spans, run reports, and live progress.

The package every other layer is instrumented against:

* :mod:`repro.obs.registry` — the :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms, span timers), its picklable
  :class:`MetricsSnapshot`, and the process-wide active-registry switch
  (:func:`collecting` / :func:`maybe_registry`).  Near-zero cost when
  disabled; deterministic snapshot merge makes serial == parallel hold
  for metrics like it does for campaign results.
* :mod:`repro.obs.report` — versioned JSON run reports (``--metrics-out``),
  schema validation, Prometheus text rendering, and the ``repro stats``
  table renderer.
* :mod:`repro.obs.timeline` — the campaign :class:`TimelineRecorder`
  (``--timeline-out``): typed events with deterministic identities and
  associative snapshot merge, the run report's v3 ``timeline`` section,
  and the data source for ``repro trace-export`` / ``repro dash``.
* :mod:`repro.obs.traceexport` — Chrome trace-event JSON rendering of a
  timeline document, loadable in Perfetto / ``chrome://tracing``.
* :mod:`repro.obs.dash` — the zero-dependency standalone HTML dashboard
  (``repro dash``).
* :mod:`repro.obs.progress` — the ``on_progress`` hook's
  :class:`ProgressUpdate` value type and the stock throttled printer.
* :mod:`repro.obs.health` — the campaign :class:`HealthController`
  state machine (healthy → degraded → critical) that folds supervisor /
  trace-store pressure signals into a load-shedding policy.

Import discipline: this package imports nothing from ``repro.runtime`` /
``repro.core`` / ``repro.trace`` (they all import *it*).
"""

from .health import (
    CRITICAL,
    DEGRADED,
    HEALTH_STATES,
    HEALTHY,
    STATE_RANK,
    HealthController,
    HealthTransition,
)
from .dash import render_dash, write_dash
from .progress import ProgressPrinter, ProgressUpdate
from .registry import (
    NULL_SPAN,
    STEP_BUCKETS,
    WALL_BUCKETS,
    HistogramData,
    MeteredResult,
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    SpanData,
    collecting,
    get_registry,
    maybe_registry,
    set_registry,
    span,
)
from .report import (
    REPORT_KIND,
    REPORT_VERSION,
    REQUIRED_COUNTERS,
    REQUIRED_COUNTERS_V1,
    build_run_report,
    required_counters_for,
    environment_metadata,
    load_run_report,
    render_prometheus,
    render_stats_table,
    snapshot_from_report,
    validate_run_report,
    write_run_report,
)
from .timeline import (
    DETERMINISTIC_KINDS,
    TIMELINE_KIND,
    TIMELINE_VERSION,
    TimelineEvent,
    TimelineRecorder,
    TimelineSnapshot,
    build_timeline_document,
    get_timeline,
    load_timeline,
    maybe_timeline,
    merge_timeline_sections,
    pair_label,
    pair_trajectories,
    recording_timeline,
    set_timeline,
    snapshot_from_document,
    timeline_section,
    validate_timeline_section,
    write_timeline,
)
from .traceexport import chrome_trace, write_chrome_trace

__all__ = [
    # registry
    "MetricsRegistry",
    "MetricsSnapshot",
    "MeteredResult",
    "HistogramData",
    "SpanData",
    "Span",
    "NULL_SPAN",
    "STEP_BUCKETS",
    "WALL_BUCKETS",
    "get_registry",
    "set_registry",
    "maybe_registry",
    "span",
    "collecting",
    # report
    "REPORT_VERSION",
    "REPORT_KIND",
    "REQUIRED_COUNTERS",
    "REQUIRED_COUNTERS_V1",
    "required_counters_for",
    "environment_metadata",
    "build_run_report",
    "write_run_report",
    "load_run_report",
    "snapshot_from_report",
    "validate_run_report",
    "render_prometheus",
    "render_stats_table",
    # timeline
    "TIMELINE_VERSION",
    "TIMELINE_KIND",
    "DETERMINISTIC_KINDS",
    "TimelineEvent",
    "TimelineRecorder",
    "TimelineSnapshot",
    "get_timeline",
    "set_timeline",
    "maybe_timeline",
    "recording_timeline",
    "pair_label",
    "pair_trajectories",
    "timeline_section",
    "merge_timeline_sections",
    "validate_timeline_section",
    "build_timeline_document",
    "write_timeline",
    "load_timeline",
    "snapshot_from_document",
    # trace export & dashboard
    "chrome_trace",
    "write_chrome_trace",
    "render_dash",
    "write_dash",
    # progress
    "ProgressUpdate",
    "ProgressPrinter",
    # health
    "HealthController",
    "HealthTransition",
    "HEALTHY",
    "DEGRADED",
    "CRITICAL",
    "HEALTH_STATES",
    "STATE_RANK",
]
