"""Observability: metrics, spans, run reports, and live progress.

The package every other layer is instrumented against:

* :mod:`repro.obs.registry` — the :class:`MetricsRegistry` (counters,
  gauges, fixed-bucket histograms, span timers), its picklable
  :class:`MetricsSnapshot`, and the process-wide active-registry switch
  (:func:`collecting` / :func:`maybe_registry`).  Near-zero cost when
  disabled; deterministic snapshot merge makes serial == parallel hold
  for metrics like it does for campaign results.
* :mod:`repro.obs.report` — versioned JSON run reports (``--metrics-out``),
  schema validation, Prometheus text rendering, and the ``repro stats``
  table renderer.
* :mod:`repro.obs.progress` — the ``on_progress`` hook's
  :class:`ProgressUpdate` value type and the stock throttled printer.
* :mod:`repro.obs.health` — the campaign :class:`HealthController`
  state machine (healthy → degraded → critical) that folds supervisor /
  trace-store pressure signals into a load-shedding policy.

Import discipline: this package imports nothing from ``repro.runtime`` /
``repro.core`` / ``repro.trace`` (they all import *it*).
"""

from .health import (
    CRITICAL,
    DEGRADED,
    HEALTH_STATES,
    HEALTHY,
    STATE_RANK,
    HealthController,
    HealthTransition,
)
from .progress import ProgressPrinter, ProgressUpdate
from .registry import (
    NULL_SPAN,
    STEP_BUCKETS,
    WALL_BUCKETS,
    HistogramData,
    MeteredResult,
    MetricsRegistry,
    MetricsSnapshot,
    Span,
    SpanData,
    collecting,
    get_registry,
    maybe_registry,
    set_registry,
    span,
)
from .report import (
    REPORT_KIND,
    REPORT_VERSION,
    REQUIRED_COUNTERS,
    REQUIRED_COUNTERS_V1,
    build_run_report,
    required_counters_for,
    environment_metadata,
    load_run_report,
    render_prometheus,
    render_stats_table,
    snapshot_from_report,
    validate_run_report,
    write_run_report,
)

__all__ = [
    # registry
    "MetricsRegistry",
    "MetricsSnapshot",
    "MeteredResult",
    "HistogramData",
    "SpanData",
    "Span",
    "NULL_SPAN",
    "STEP_BUCKETS",
    "WALL_BUCKETS",
    "get_registry",
    "set_registry",
    "maybe_registry",
    "span",
    "collecting",
    # report
    "REPORT_VERSION",
    "REPORT_KIND",
    "REQUIRED_COUNTERS",
    "REQUIRED_COUNTERS_V1",
    "required_counters_for",
    "environment_metadata",
    "build_run_report",
    "write_run_report",
    "load_run_report",
    "snapshot_from_report",
    "validate_run_report",
    "render_prometheus",
    "render_stats_table",
    # progress
    "ProgressUpdate",
    "ProgressPrinter",
    # health
    "HealthController",
    "HealthTransition",
    "HEALTHY",
    "DEGRADED",
    "CRITICAL",
    "HEALTH_STATES",
    "STATE_RANK",
]
