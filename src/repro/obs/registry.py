"""The metrics registry: counters, gauges, histograms, and spans.

Observability in this codebase follows the same discipline as its
nondeterminism: one explicit owner, deterministic everywhere.  A single
process-wide :class:`MetricsRegistry` is either *enabled* (every layer
records into it) or *disabled* (the default — every instrumentation site
collapses to one ``None``-check, so an uninstrumented campaign pays
nothing measurable; see ``benchmarks/bench_obs.py``).

Three rules make serial == parallel hold for metrics exactly as it does
for campaign results:

1. **Snapshots are picklable value objects.**  A worker process collects
   into its own registry (installed by the supervisor around each task
   attempt) and ships a :class:`MetricsSnapshot` home with the result.
2. **Merge is deterministic and associative.**  Counters add, gauges take
   the max, histograms add bucket-wise (equal bounds required), spans
   aggregate ``(count, total, min, max)``.  Folding worker snapshots in
   any order yields the same totals the serial run accumulates in place.
3. **Only settled work counts.**  The supervisor merges a snapshot only
   when the attempt's result is accepted, so retried or quarantined
   attempts never double-count (their partial counters die with them).

Spans time wall-clock phases (``with span("phase2.fuzz"): ...``); they
are aggregates, not traces — deliberately cheap enough to wrap every
(pair, chunk) in a campaign.
"""

from __future__ import annotations

import bisect
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

#: default histogram bounds for step-count style distributions.
STEP_BUCKETS: tuple[float, ...] = (
    10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0,
)

#: default histogram bounds for wall-clock seconds.
WALL_BUCKETS: tuple[float, ...] = (0.001, 0.01, 0.1, 1.0, 10.0, 60.0)


@dataclass
class HistogramData:
    """One fixed-bucket histogram: ``counts[i]`` observations ``<= bounds[i]``,
    plus one overflow bucket; ``total``/``count`` give the exact mean."""

    bounds: tuple[float, ...]
    counts: list[int]
    total: float = 0.0
    count: int = 0

    @classmethod
    def empty(cls, bounds: Sequence[float]) -> "HistogramData":
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        return cls(bounds=bounds, counts=[0] * (len(bounds) + 1))

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def add(self, other: "HistogramData") -> None:
        if self.bounds != other.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count

    def copy(self) -> "HistogramData":
        return HistogramData(
            bounds=self.bounds,
            counts=list(self.counts),
            total=self.total,
            count=self.count,
        )

    def to_jsonable(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    @classmethod
    def from_jsonable(cls, obj: Mapping) -> "HistogramData":
        return cls(
            bounds=tuple(float(b) for b in obj["bounds"]),
            counts=[int(c) for c in obj["counts"]],
            total=float(obj["total"]),
            count=int(obj["count"]),
        )


@dataclass
class SpanData:
    """Aggregated wall-clock timings of one named span."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = 0.0
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        if self.count == 0:
            self.min_s = self.max_s = seconds
        else:
            self.min_s = min(self.min_s, seconds)
            self.max_s = max(self.max_s, seconds)
        self.count += 1
        self.total_s += seconds

    def add(self, other: "SpanData") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.min_s, self.max_s = other.min_s, other.max_s
        else:
            self.min_s = min(self.min_s, other.min_s)
            self.max_s = max(self.max_s, other.max_s)
        self.count += other.count
        self.total_s += other.total_s

    def copy(self) -> "SpanData":
        return SpanData(
            count=self.count, total_s=self.total_s,
            min_s=self.min_s, max_s=self.max_s,
        )

    def to_jsonable(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
        }

    @classmethod
    def from_jsonable(cls, obj: Mapping) -> "SpanData":
        return cls(
            count=int(obj["count"]),
            total_s=float(obj["total_s"]),
            min_s=float(obj["min_s"]),
            max_s=float(obj["max_s"]),
        )


@dataclass(frozen=True)
class MetricsSnapshot:
    """A picklable, mergeable point-in-time copy of a registry.

    Merging is associative and commutative for counters/gauges/histograms
    (sums, maxes, bucket sums), and associative for spans, so any fold
    order over worker snapshots produces identical totals.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramData] = field(default_factory=dict)
    spans: dict[str, SpanData] = field(default_factory=dict)

    def merged(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot combining ``self`` and ``other``."""
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges.get(name, value), value)
        histograms = {name: h.copy() for name, h in self.histograms.items()}
        for name, h in other.histograms.items():
            if name in histograms:
                histograms[name].add(h)
            else:
                histograms[name] = h.copy()
        spans = {name: s.copy() for name, s in self.spans.items()}
        for name, s in other.spans.items():
            if name in spans:
                spans[name].add(s)
            else:
                spans[name] = s.copy()
        return MetricsSnapshot(
            counters=counters, gauges=gauges, histograms=histograms, spans=spans
        )

    def to_jsonable(self) -> dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {
                name: h.to_jsonable()
                for name, h in sorted(self.histograms.items())
            },
            "spans": {
                name: s.to_jsonable() for name, s in sorted(self.spans.items())
            },
        }

    @classmethod
    def from_jsonable(cls, obj: Mapping) -> "MetricsSnapshot":
        return cls(
            counters={str(k): int(v) for k, v in obj.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in obj.get("gauges", {}).items()},
            histograms={
                str(k): HistogramData.from_jsonable(v)
                for k, v in obj.get("histograms", {}).items()
            },
            spans={
                str(k): SpanData.from_jsonable(v)
                for k, v in obj.get("spans", {}).items()
            },
        )


@dataclass(frozen=True)
class MeteredResult:
    """A worker task's result bundled with the metrics it accumulated.

    The supervisor unwraps this before validation/journaling, merging the
    snapshot into the parent registry only when the result is accepted —
    the mechanism behind retry-safe, serial-equivalent parallel metrics.
    ``timeline`` optionally carries the attempt's ``TimelineSnapshot``
    under the same accept-only discipline.
    """

    result: Any
    snapshot: MetricsSnapshot
    timeline: Any = None


class _NullSpan:
    """The disabled-mode span: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class Span:
    """Times one ``with`` block into its registry's span aggregate."""

    __slots__ = ("_registry", "name", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self._start = 0.0

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._registry.observe_span(self.name, time.perf_counter() - self._start)


class MetricsRegistry:
    """Counters, gauges, histograms, and spans under one roof.

    A disabled registry turns every method into a no-op, and the
    :func:`maybe_registry` accessor returns ``None`` for it so hot loops
    (the interpreter's ``step``) can hoist the check out entirely.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramData] = {}
        self._spans: dict[str, SpanData] = {}

    # -- recording ------------------------------------------------------ #

    def inc(self, name: str, value: int = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new high-water mark."""
        if not self.enabled:
            return
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def observe(
        self, name: str, value: float, *, bounds: Sequence[float] = STEP_BUCKETS
    ) -> None:
        """Record ``value`` into the fixed-bucket histogram ``name``."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramData.empty(bounds)
        histogram.observe(value)

    def span(self, name: str):
        """A context manager timing its block into span ``name``."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name)

    def observe_span(self, name: str, seconds: float) -> None:
        """Record one completed timing for span ``name``."""
        if not self.enabled:
            return
        data = self._spans.get(name)
        if data is None:
            data = self._spans[name] = SpanData()
        data.observe(seconds)

    # -- reading / merging ---------------------------------------------- #

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def snapshot(self) -> MetricsSnapshot:
        """A picklable copy of everything recorded so far."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={k: h.copy() for k, h in self._histograms.items()},
            spans={k: s.copy() for k, s in self._spans.items()},
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's snapshot into this registry (deterministic)."""
        if not self.enabled:
            return
        for name, value in snapshot.counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in snapshot.gauges.items():
            self.gauge_max(name, value)
        for name, histogram in snapshot.histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = histogram.copy()
            else:
                mine.add(histogram)
        for name, span_data in snapshot.spans.items():
            mine = self._spans.get(name)
            if mine is None:
                self._spans[name] = span_data.copy()
            else:
                mine.add(span_data)

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()


# --------------------------------------------------------------------- #
# The process-wide active registry.
# --------------------------------------------------------------------- #

#: metrics are off by default; `collecting()` swaps in an enabled registry.
_active: MetricsRegistry = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The active registry (possibly disabled)."""
    return _active


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _active
    previous, _active = _active, registry
    return previous


def maybe_registry() -> MetricsRegistry | None:
    """The active registry if enabled, else ``None``.

    The hot-path idiom: fetch once per unit of work, branch on ``None``
    per event.  A disabled campaign's entire metrics cost is that branch.
    """
    return _active if _active.enabled else None


def span(name: str):
    """Module-level convenience: time a block into the active registry."""
    return _active.span(name)


@contextmanager
def collecting(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Enable metrics collection for a block; restores the prior registry.

    This is both the user-facing switch (the CLI wraps a campaign in it
    when ``--metrics-out`` is given) and the worker-side scope the
    supervisor installs around each task attempt.
    """
    registry = registry if registry is not None else MetricsRegistry(enabled=True)
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


__all__ = [
    "MetricsRegistry",
    "MetricsSnapshot",
    "MeteredResult",
    "HistogramData",
    "SpanData",
    "Span",
    "NULL_SPAN",
    "STEP_BUCKETS",
    "WALL_BUCKETS",
    "get_registry",
    "set_registry",
    "maybe_registry",
    "span",
    "collecting",
]
