"""Campaign health: a one-way state machine that sheds load under pressure.

Long campaigns die of infrastructure, not logic: a trace cache fills the
disk, a worker leaks memory until the OOM-killer breaks the pool, a
corrupt cache entry poisons every analysis that touches it.  The
:class:`HealthController` is the small supervisor-of-supervisors that
turns those raw signals into a policy the rest of the stack can consult:

* ``healthy``  — nothing notable has happened; full service.
* ``degraded`` — pressure observed (a disk budget hit, repeated memory
  quarantines, a pool death, recurring trace corruption).  The campaign
  keeps producing complete verdicts but sheds optional load: the trace
  store stops persisting *new* cache entries once disk pressure repeats,
  and the supervisor shrinks its worker pool instead of rebuilding it at
  full width.
* ``critical`` — the infrastructure is actively failing (pool deaths at
  the serial-fallback threshold).  Everything optional is off; the
  campaign limps home inline.

The machine is deliberately **one-way per campaign** (healthy → degraded
→ critical, never back): de-escalation would make campaign behaviour
depend on *when* pressure happened, and every layer here trades
adaptivity for reproducibility.  Signals and transitions are counted in
the metrics registry (``health.*``), carried on the ``--progress`` line,
and therefore visible in ``--metrics-out`` run reports.

Import discipline: like the rest of :mod:`repro.obs`, this module imports
nothing from ``repro.runtime`` / ``repro.core`` / ``repro.trace`` — they
import *it* (the trace store and the campaign supervisor share one
controller per campaign).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from .registry import maybe_registry
from .timeline import maybe_timeline

HEALTHY = "healthy"
DEGRADED = "degraded"
CRITICAL = "critical"

HEALTH_STATES = (HEALTHY, DEGRADED, CRITICAL)

#: numeric rank of each state, exported as the ``health.state`` high-water
#: gauge (0 = healthy, 1 = degraded, 2 = critical).
STATE_RANK = {HEALTHY: 0, DEGRADED: 1, CRITICAL: 2}


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state change: where the machine went, and why."""

    state: str
    reason: str

    def describe(self) -> str:
        return f"-> {self.state}: {self.reason}"


class HealthController:
    """Fold infrastructure signals into a load-shedding policy.

    Thresholds (all counts are per controller, i.e. per campaign):

    Parameters:
        pool_death_degraded: pool deaths before ``degraded``.
        pool_death_critical: pool deaths before ``critical`` (align this
            with the supervisor's ``pool_death_limit + 1``: the same
            event that forces serial fallback marks the campaign
            critical).
        memory_degraded: ``memory``-kind task failures before
            ``degraded``.
        corrupt_degraded: quarantined corrupt traces before ``degraded``
            (a single recovered corruption is routine, not pressure).
        disk_disable_threshold: disk budget hits after which
            :attr:`trace_recording_enabled` turns off and new trace-store
            entries become ephemeral.
    """

    def __init__(
        self,
        *,
        pool_death_degraded: int = 1,
        pool_death_critical: int = 3,
        memory_degraded: int = 2,
        corrupt_degraded: int = 3,
        disk_disable_threshold: int = 3,
        on_transition: Callable[[HealthTransition], None] | None = None,
    ) -> None:
        if pool_death_critical < pool_death_degraded:
            raise ValueError(
                f"pool_death_critical ({pool_death_critical}) must be >= "
                f"pool_death_degraded ({pool_death_degraded})"
            )
        self.pool_death_degraded = pool_death_degraded
        self.pool_death_critical = pool_death_critical
        self.memory_degraded = memory_degraded
        self.corrupt_degraded = corrupt_degraded
        self.disk_disable_threshold = disk_disable_threshold
        self.on_transition = on_transition
        self.state = HEALTHY
        self.transitions: list[HealthTransition] = []
        self.pool_deaths = 0
        self.memory_failures = 0
        self.disk_budget_hits = 0
        self.corrupt_traces = 0
        self.quarantines = 0

    # -- the machine ---------------------------------------------------- #

    def _escalate(self, state: str, reason: str) -> None:
        """Move to ``state`` if it is strictly worse than where we are."""
        if STATE_RANK[state] <= STATE_RANK[self.state]:
            return
        self.state = state
        transition = HealthTransition(state=state, reason=reason)
        self.transitions.append(transition)
        m = maybe_registry()
        if m is not None:
            m.inc("health.transitions")
            m.inc(f"health.transitions.{state}")
            m.gauge_max("health.state", STATE_RANK[state])
        tl = maybe_timeline()
        if tl is not None:
            # "health" is a non-deterministic timeline kind: when (and
            # whether) pressure escalates depends on worker timing, so the
            # event lives in --timeline-out documents but stays out of the
            # run report's deterministic section.
            tl.emit(
                "health",
                (len(self.transitions), state),
                {"reason": reason},
                wall_s=time.time(),
            )
        if self.on_transition is not None:
            self.on_transition(transition)

    # -- signals -------------------------------------------------------- #

    def record_pool_death(self) -> None:
        """A worker pool broke (OOM-killed worker, segfault, ...)."""
        self.pool_deaths += 1
        m = maybe_registry()
        if m is not None:
            m.inc("health.pool_deaths")
        if self.pool_deaths >= self.pool_death_critical:
            self._escalate(
                CRITICAL, f"{self.pool_deaths} worker pool death(s)"
            )
        elif self.pool_deaths >= self.pool_death_degraded:
            self._escalate(
                DEGRADED, f"{self.pool_deaths} worker pool death(s)"
            )

    def record_memory_failure(self) -> None:
        """A task attempt blew its per-task memory budget."""
        self.memory_failures += 1
        m = maybe_registry()
        if m is not None:
            m.inc("health.memory_failures")
        if self.memory_failures >= self.memory_degraded:
            self._escalate(
                DEGRADED, f"{self.memory_failures} memory budget failure(s)"
            )

    def record_disk_budget_hit(self) -> None:
        """The trace store's disk budget forced an eviction (or ENOSPC)."""
        self.disk_budget_hits += 1
        m = maybe_registry()
        if m is not None:
            m.inc("health.disk_budget_hits")
        self._escalate(
            DEGRADED, f"{self.disk_budget_hits} disk budget hit(s)"
        )

    def record_corrupt_trace(self) -> None:
        """A corrupt trace-store entry was quarantined."""
        self.corrupt_traces += 1
        m = maybe_registry()
        if m is not None:
            m.inc("health.corrupt_traces")
        if self.corrupt_traces >= self.corrupt_degraded:
            self._escalate(
                DEGRADED, f"{self.corrupt_traces} corrupt trace(s) quarantined"
            )

    def record_quarantine(self, kind: str) -> None:
        """A task exhausted its retries (any failure kind)."""
        self.quarantines += 1
        if kind == "memory":
            # memory quarantines already escalated attempt-by-attempt.
            return

    # -- policy --------------------------------------------------------- #

    @property
    def trace_recording_enabled(self) -> bool:
        """May the trace store persist *new* cache entries?

        Off once disk pressure repeats (``disk_disable_threshold`` budget
        hits) or the campaign is critical.  Analysis still works — the
        store records ephemerally and discards — but the cache stops
        growing under pressure.
        """
        if self.state == CRITICAL:
            return False
        return self.disk_budget_hits < self.disk_disable_threshold

    def recommended_jobs(self, jobs: int) -> int:
        """Pool width to rebuild with after a death: halve, floor 1.

        A pool that died of OOM at width N has decent odds of surviving
        at N/2; repeated deaths walk the width down to the supervisor's
        inline fallback instead of thrashing at full fan-out.
        """
        if self.state == HEALTHY:
            return jobs
        return max(1, jobs // 2)

    def describe(self) -> str:
        if not self.transitions:
            return HEALTHY
        steps = "; ".join(t.describe() for t in self.transitions)
        return f"{self.state} ({steps})"


__all__ = [
    "HEALTHY",
    "DEGRADED",
    "CRITICAL",
    "HEALTH_STATES",
    "STATE_RANK",
    "HealthTransition",
    "HealthController",
]
