"""Versioned run reports: the exportable form of a campaign's metrics.

A run report is one JSON document with a schema version, provenance
(command, workload, environment), and the full
:class:`~repro.obs.registry.MetricsSnapshot` of the campaign.  CI smoke
jobs validate emitted reports against :func:`validate_run_report`;
humans read them back via ``repro stats`` (:func:`render_stats_table`)
or scrape them via :func:`render_prometheus`.

``write_run_report(..., merge_existing=True)`` is the checkpoint story:
a resumed ``--checkpoint`` campaign folds the prior report's snapshot
into its own instead of overwriting it, so counters keep accumulating
across kills and restarts exactly like the journal keeps verdicts.
"""

from __future__ import annotations

import json
import os
import platform
import re
from typing import Any, Mapping

from .registry import MetricsSnapshot
from .timeline import (
    TimelineSnapshot,
    merge_timeline_sections,
    timeline_section,
    validate_timeline_section,
)

#: bump when the report layout changes incompatibly.  v2 added the
#: ``schedule.*`` counters (campaign trial-allocation policy); v3 added
#: the optional ``timeline`` section (deterministic campaign events and
#: per-pair posterior trajectories).
REPORT_VERSION = 3

#: discriminator so tooling can reject arbitrary JSON files early.
REPORT_KIND = "repro-run-report"

#: the v1 required set, frozen: version-1 reports written before the
#: schedule layer existed must keep validating against what v1 promised.
REQUIRED_COUNTERS_V1: tuple[str, ...] = (
    "interp.executions",
    "interp.steps",
    "fuzz.trials",
    "fuzz.postpones",
    "fuzz.coin_flips",
    "fuzz.races_created",
    "supervisor.retries",
    "supervisor.deadline_kills",
    "supervisor.quarantines",
    "supervisor.journal_skipped",
    "trace.store_hits",
    "trace.store_misses",
    "trace.store_corrupt",
    "trace.store_recovered",
    "trace.store_evictions",
    "health.transitions",
)

#: counters every run report carries (zero-filled when a layer never ran),
#: so downstream dashboards can rely on the keys existing.
REQUIRED_COUNTERS: tuple[str, ...] = REQUIRED_COUNTERS_V1 + (
    "schedule.rounds",
    "schedule.trials_allocated",
    "schedule.pairs_confirmed",
    "schedule.pairs_early_stopped",
)


def required_counters_for(version: int) -> tuple[str, ...]:
    """The counter keys a report of ``version`` promised to carry.

    v3 added the optional ``timeline`` section without touching the
    counter contract, so v2 and v3 promise the same keys.
    """
    return REQUIRED_COUNTERS_V1 if version < 2 else REQUIRED_COUNTERS


def environment_metadata() -> dict:
    """Where this run happened — embedded in run reports and BENCH records
    so numbers are comparable across machines."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _timeline_to_section(timeline) -> dict | None:
    """Normalize a ``timeline=`` argument to a report section (or None).

    Accepts a :class:`~repro.obs.timeline.TimelineSnapshot` or an
    already-built section dict; ``None`` passes through (no section).
    """
    if timeline is None:
        return None
    if isinstance(timeline, TimelineSnapshot):
        return timeline_section(timeline)
    return dict(timeline)


def build_run_report(
    snapshot: MetricsSnapshot,
    *,
    command: str,
    workload: str | None = None,
    extra: Mapping[str, Any] | None = None,
    timeline=None,
) -> dict:
    """Assemble the versioned JSON document for one campaign's metrics.

    ``timeline`` (a :class:`~repro.obs.timeline.TimelineSnapshot` or a
    prebuilt section dict) attaches the v3 ``timeline`` section: the
    campaign's deterministic event stream plus per-pair posterior
    trajectories.  Omitted when not recording — v3 reports without the
    section stay valid.
    """
    counters = dict(snapshot.counters)
    for key in REQUIRED_COUNTERS:
        counters.setdefault(key, 0)
    report = {
        "kind": REPORT_KIND,
        "version": REPORT_VERSION,
        "command": command,
        "workload": workload,
        "env": environment_metadata(),
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(snapshot.gauges.items())),
        "histograms": {
            name: h.to_jsonable() for name, h in sorted(snapshot.histograms.items())
        },
        "spans": {
            name: s.to_jsonable() for name, s in sorted(snapshot.spans.items())
        },
    }
    section = _timeline_to_section(timeline)
    if section is not None:
        report["timeline"] = section
    if extra:
        report["extra"] = dict(extra)
    return report


def snapshot_from_report(report: Mapping) -> MetricsSnapshot:
    """Recover the mergeable snapshot a report was built from."""
    return MetricsSnapshot.from_jsonable(report)


def load_run_report(path) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def write_run_report(
    path,
    snapshot: MetricsSnapshot,
    *,
    command: str,
    workload: str | None = None,
    extra: Mapping[str, Any] | None = None,
    merge_existing: bool = False,
    timeline=None,
) -> dict:
    """Write a run report; returns the document written.

    With ``merge_existing`` (used when a campaign resumes from a
    ``--checkpoint`` journal), a valid prior report at ``path`` is folded
    into ``snapshot`` first, so the report accumulates across restarts
    instead of counting only the resumed tail.  An invalid or missing
    prior file is ignored.  A prior ``timeline`` section merges the same
    way (dedup union of event identities), so a resumed campaign's
    timeline equals an uninterrupted run's.
    """
    section = _timeline_to_section(timeline)
    if merge_existing:
        try:
            prior = load_run_report(path)
        except (OSError, json.JSONDecodeError):
            prior = None
        if prior is not None and not validate_run_report(prior):
            snapshot = snapshot_from_report(prior).merged(snapshot)
            prior_timeline = prior.get("timeline")
            if prior_timeline is not None:
                section = merge_timeline_sections(prior_timeline, section)
    report = build_run_report(
        snapshot, command=command, workload=workload, extra=extra,
        timeline=section,
    )
    tmp = f"{path}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")
    os.replace(tmp, path)
    return report


def validate_run_report(report: Any) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    errors: list[str] = []
    if not isinstance(report, Mapping):
        return [f"report must be a JSON object, got {type(report).__name__}"]
    if report.get("kind") != REPORT_KIND:
        errors.append(f"kind must be {REPORT_KIND!r}, got {report.get('kind')!r}")
    version = report.get("version")
    if not isinstance(version, int) or version < 1:
        errors.append(f"version must be a positive int, got {version!r}")
    elif version > REPORT_VERSION:
        errors.append(f"version {version} is newer than supported {REPORT_VERSION}")
    if not isinstance(report.get("command"), str) or not report.get("command"):
        errors.append("command must be a non-empty string")
    env = report.get("env")
    if not isinstance(env, Mapping) or "python" not in env or "cpu_count" not in env:
        errors.append("env must carry at least python and cpu_count")
    counters = report.get("counters")
    if not isinstance(counters, Mapping):
        errors.append("counters must be an object")
    else:
        # Old reports promise only their own version's key set: a v1
        # report predates schedule.* and must keep validating.
        required = required_counters_for(
            version if isinstance(version, int) else REPORT_VERSION
        )
        for key in required:
            if key not in counters:
                errors.append(f"missing required counter {key!r}")
        for key, value in counters.items():
            if not isinstance(value, int) or isinstance(value, bool) or value < 0:
                errors.append(f"counter {key!r} must be a non-negative int")
    gauges = report.get("gauges", {})
    if not isinstance(gauges, Mapping):
        errors.append("gauges must be an object")
    else:
        for key, value in gauges.items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(f"gauge {key!r} must be a number")
    histograms = report.get("histograms", {})
    if not isinstance(histograms, Mapping):
        errors.append("histograms must be an object")
    else:
        for key, h in histograms.items():
            if not isinstance(h, Mapping):
                errors.append(f"histogram {key!r} must be an object")
                continue
            bounds, counts = h.get("bounds"), h.get("counts")
            if not isinstance(bounds, list) or not isinstance(counts, list):
                errors.append(f"histogram {key!r} needs bounds and counts lists")
            elif len(counts) != len(bounds) + 1:
                errors.append(
                    f"histogram {key!r}: counts must have len(bounds)+1 entries"
                )
            elif sum(counts) != h.get("count"):
                errors.append(f"histogram {key!r}: counts do not sum to count")
    spans = report.get("spans", {})
    if not isinstance(spans, Mapping):
        errors.append("spans must be an object")
    else:
        for key, s in spans.items():
            if not isinstance(s, Mapping):
                errors.append(f"span {key!r} must be an object")
                continue
            if s.get("count", -1) < 0 or s.get("total_s", -1) < 0:
                errors.append(f"span {key!r}: count/total_s must be >= 0")
            if s.get("count", 0) > 0 and s.get("min_s", 0) > s.get("max_s", 0):
                errors.append(f"span {key!r}: min_s exceeds max_s")
    timeline = report.get("timeline")
    if timeline is not None:
        if isinstance(version, int) and version < 3:
            errors.append("timeline section requires report version >= 3")
        errors.extend(validate_timeline_section(timeline))
    return errors


# --------------------------------------------------------------------- #
# renderers
# --------------------------------------------------------------------- #


def _metric_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _format_value(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _escape_label(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote, and line feed (a raw newline would truncate
    the sample line and corrupt every series after it)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_prometheus(report: Mapping) -> str:
    """The report in Prometheus text exposition format.

    Counters and gauges become one series each; histograms follow the
    cumulative ``_bucket{le=...}`` convention; spans export as
    ``repro_span_seconds_*`` series labelled by span name.
    """
    lines: list[str] = []
    for name, value in sorted(report.get("counters", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in sorted(report.get("gauges", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, h in sorted(report.get("histograms", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(h["bounds"], h["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        cumulative += h["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_format_value(h['total'])}")
        lines.append(f"{metric}_count {h['count']}")
    spans = sorted(report.get("spans", {}).items())
    if spans:
        lines.append("# TYPE repro_span_seconds_count counter")
        lines.append("# TYPE repro_span_seconds_sum counter")
        lines.append("# TYPE repro_span_seconds_max gauge")
    for name, s in spans:
        label = _escape_label(name)
        lines.append(f'repro_span_seconds_count{{span="{label}"}} {s["count"]}')
        lines.append(
            f'repro_span_seconds_sum{{span="{label}"}} {_format_value(s["total_s"])}'
        )
        lines.append(
            f'repro_span_seconds_max{{span="{label}"}} {_format_value(s["max_s"])}'
        )
    return "\n".join(lines) + "\n"


def _render_section(title: str, headers: list[str], rows: list[list]) -> str:
    # Local minimal table renderer (repro.harness.render draws the same
    # style, but obs must stay import-clean of core/harness).
    table = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in table)) if table else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(row):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
    lines = [title, fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in table)
    return "\n".join(lines)


def render_stats_table(report: Mapping) -> str:
    """The ``repro stats`` payload: a run report as readable tables."""
    env = report.get("env", {})
    header = (
        f"run report v{report.get('version')} — command: {report.get('command')}"
        + (f", workload: {report['workload']}" if report.get("workload") else "")
        + f"\npython {env.get('python', '?')} on {env.get('platform', '?')}"
        f" ({env.get('cpu_count', '?')} cpus)"
    )
    sections = [header]
    counters = report.get("counters", {})
    if counters:
        sections.append(
            _render_section(
                "counters",
                ["name", "value"],
                [[name, value] for name, value in sorted(counters.items())],
            )
        )
    gauges = report.get("gauges", {})
    if gauges:
        sections.append(
            _render_section(
                "gauges",
                ["name", "value"],
                [[name, _format_value(value)] for name, value in sorted(gauges.items())],
            )
        )
    histograms = report.get("histograms", {})
    if histograms:
        rows = []
        for name, h in sorted(histograms.items()):
            mean = h["total"] / h["count"] if h["count"] else 0.0
            rows.append([name, h["count"], f"{mean:.1f}", f"{h['total']:.1f}"])
        sections.append(
            _render_section("histograms", ["name", "count", "mean", "total"], rows)
        )
    spans = report.get("spans", {})
    if spans:
        rows = []
        for name, s in sorted(spans.items()):
            mean = s["total_s"] / s["count"] if s["count"] else 0.0
            rows.append(
                [
                    name,
                    s["count"],
                    f"{s['total_s']:.4f}",
                    f"{mean:.4f}",
                    f"{s['min_s']:.4f}",
                    f"{s['max_s']:.4f}",
                ]
            )
        sections.append(
            _render_section(
                "spans (seconds)",
                ["name", "count", "total", "mean", "min", "max"],
                rows,
            )
        )
    return "\n\n".join(sections)


__all__ = [
    "REPORT_VERSION",
    "REPORT_KIND",
    "REQUIRED_COUNTERS",
    "REQUIRED_COUNTERS_V1",
    "required_counters_for",
    "environment_metadata",
    "build_run_report",
    "write_run_report",
    "load_run_report",
    "snapshot_from_report",
    "validate_run_report",
    "render_prometheus",
    "render_stats_table",
]
