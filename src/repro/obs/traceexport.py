"""Chrome trace-event export: timeline documents rendered for Perfetto.

``repro trace-export`` turns a ``--timeline-out`` document (or a v3 run
report's ``timeline`` section) into the Chrome trace-event JSON format —
the lingua franca of ``ui.perfetto.dev`` and ``chrome://tracing``.  The
mapping:

* every worker track (``p<pid>``) becomes a thread under the "workers"
  process, carrying the timed events that process actually executed
  (trials, chunks, store fills) as ``"X"`` complete slices;
* every racing pair becomes a thread under the "pairs" process, so the
  per-pair view lines the same chunks up by pair instead of by worker;
* untimed events (schedule rounds, posterior updates, health
  transitions) become ``"i"`` instants on their track.

Timestamps are wall-clock microseconds normalized to the earliest timed
event, so a campaign that ran at 3am renders starting at t=0.  Events
recorded without wall time (e.g. events from a run-report section, which
strips display fields) all land at t=0 as instants — structure survives,
layout does not.
"""

from __future__ import annotations

import json

from .timeline import TimelineSnapshot, snapshot_from_document

#: synthetic process ids for the two grouping views.
WORKER_PID = 1
PAIR_PID = 2

#: event kinds whose key starts with a pair label (mirrored onto the
#: per-pair process so chunks group by pair as well as by worker).
PAIR_KEYED_KINDS = frozenset({"chunk", "trial"})


def _event_name(event) -> str:
    key = "/".join(str(part) for part in event.key)
    return f"{event.kind}:{key}" if key else event.kind


def _args(event) -> dict:
    return {name: value for name, value in event.attrs}


def chrome_trace(document) -> dict:
    """Render a timeline document (or report section) as trace-event JSON.

    Returns the standard ``{"traceEvents": [...]}`` object-format wrapper
    Perfetto and ``chrome://tracing`` both load.
    """
    snapshot = (
        document
        if isinstance(document, TimelineSnapshot)
        else snapshot_from_document(document)
    )
    events = list(snapshot.events)
    timed = [e for e in events if e.wall_s > 0.0]
    origin = min((e.wall_s for e in timed), default=0.0)

    trace: list[dict] = []
    tracks: dict[str, int] = {}
    pair_tracks: dict[str, int] = {}

    def worker_tid(track: str) -> int:
        if track not in tracks:
            tracks[track] = len(tracks) + 1
            trace.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": WORKER_PID,
                    "tid": tracks[track],
                    "args": {"name": track or "main"},
                }
            )
        return tracks[track]

    def pair_tid(label: str) -> int:
        if label not in pair_tracks:
            pair_tracks[label] = len(pair_tracks) + 1
            trace.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": PAIR_PID,
                    "tid": pair_tracks[label],
                    "args": {"name": label},
                }
            )
        return pair_tracks[label]

    for pid, name in ((WORKER_PID, "workers"), (PAIR_PID, "pairs")):
        trace.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    for event in events:
        ts = int((event.wall_s - origin) * 1e6) if event.wall_s > 0.0 else 0
        base = {
            "name": _event_name(event),
            "cat": event.kind,
            "pid": WORKER_PID,
            "tid": worker_tid(event.track),
            "ts": ts,
            "args": _args(event),
        }
        if event.dur_s > 0.0:
            base["ph"] = "X"
            base["dur"] = max(1, int(event.dur_s * 1e6))
        else:
            base["ph"] = "i"
            base["s"] = "t"  # instant scoped to its thread
        trace.append(base)
        if event.kind in PAIR_KEYED_KINDS and event.key:
            mirrored = dict(base)
            mirrored["pid"] = PAIR_PID
            mirrored["tid"] = pair_tid(str(event.key[0]))
            trace.append(mirrored)

    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(path, document) -> dict:
    """Write :func:`chrome_trace` output to ``path``; returns the object."""
    trace = chrome_trace(document)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1)
        fh.write("\n")
    return trace


__all__ = ["chrome_trace", "write_chrome_trace", "WORKER_PID", "PAIR_PID"]
