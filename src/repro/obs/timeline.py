"""Campaign timeline: typed, causally-ordered events behind ``--timeline-out``.

The timeline is the narrative companion to the ``MetricsRegistry``
aggregates: *why* the campaign did what it did — which pairs the
scheduler bound and with what priors, what the Thompson draws were each
round, how every pair's posterior moved chunk by chunk, which trials
postponed/forced/released, where the supervisor retried or quarantined,
when health degraded, and how the trace store behaved.

Design rules (mirroring :mod:`repro.obs.registry`):

* **Off by default.**  The module-level recorder starts disabled and
  :func:`maybe_timeline` returns ``None`` unless recording is active, so
  instrumented hot paths pay one ``None``-check and nothing else.
* **Deterministic identity, incidental display.**  An event's identity
  is ``(kind, key, attrs)`` — all schedule-determined values.  Wall
  time, duration and the worker track are *display* fields: they ride
  along for Perfetto export but never participate in equality, ordering
  or dedup.  That is what makes serial == ``--jobs N`` below.
* **Merge is a dedup set-union.**  :meth:`TimelineSnapshot.merged`
  unions events by identity, sorts by the canonical order and truncates
  to the ring budget keeping the *smallest* identities — an associative,
  commutative (up to display fields) fold, so the supervisor can absorb
  worker snapshots in any settle order and a checkpoint-resumed
  campaign can union with the prior report's section and land on the
  same result as an uninterrupted run.
* **Deterministic section partition.**  Only :data:`DETERMINISTIC_KINDS`
  enter the run-report ``timeline`` section (the serial==parallel
  equality surface).  Store hits/misses, health transitions, retries
  and phase spans legitimately differ between execution modes (e.g. a
  parallel trace-store fill records worker misses plus parent hits
  where a serial run records only misses); they stay in the
  ``--timeline-out`` document for trace-export and the dashboard.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass

TIMELINE_VERSION = 1

#: Document kind written by ``--timeline-out``.
TIMELINE_KIND = "repro-timeline"

#: Default ring budget: events retained per snapshot.
DEFAULT_BUDGET = 8192

#: Event kinds whose identity stream is schedule-determined: identical
#: between serial, ``--jobs N`` and checkpoint-resumed campaigns.  Only
#: these enter the run-report ``timeline`` section.
DETERMINISTIC_KINDS = frozenset(
    {
        "schedule.bind",
        "pair.bind",
        "schedule.round",
        "schedule.posterior",
        "schedule.stop",
        "chunk",
        "trial",
        "detect",
        "funnel",
    }
)


def pair_label(pair):
    """Canonical display label for a statement pair (``siteA|siteB``)."""
    return f"{pair.first.site}|{pair.second.site}"


def _canon(value):
    """Canonical JSON encoding used for identity comparison and order."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class TimelineEvent:
    """One timeline entry.

    ``kind``/``key``/``attrs`` are the deterministic identity; ``wall_s``
    (absolute unix start), ``dur_s`` and ``track`` are display-only.
    """

    kind: str
    key: tuple
    attrs: tuple  # sorted ((name, value), ...)
    wall_s: float = 0.0
    dur_s: float = 0.0
    track: str = ""

    @property
    def identity(self):
        return (self.kind, _canon(list(self.key)), _canon([list(a) for a in self.attrs]))

    @property
    def attrs_dict(self):
        return dict(self.attrs)

    def to_jsonable(self):
        entry = {
            "kind": self.kind,
            "key": list(self.key),
            "attrs": {name: value for name, value in self.attrs},
        }
        if self.wall_s:
            entry["wall_s"] = self.wall_s
        if self.dur_s:
            entry["dur_s"] = self.dur_s
        if self.track:
            entry["track"] = self.track
        return entry

    @classmethod
    def from_jsonable(cls, entry):
        return cls(
            kind=entry["kind"],
            key=tuple(entry.get("key", ())),
            attrs=canonical_attrs(entry.get("attrs", {})),
            wall_s=entry.get("wall_s", 0.0),
            dur_s=entry.get("dur_s", 0.0),
            track=entry.get("track", ""),
        )


def canonical_attrs(attrs):
    """Normalise an attrs mapping/iterable into the sorted tuple form."""
    if attrs is None:
        return ()
    items = attrs.items() if hasattr(attrs, "items") else attrs
    return tuple(sorted((str(name), value) for name, value in items))


def _merge_events(event_lists, budget):
    """Dedup-union by identity, canonical sort, truncate to ``budget``.

    Keeping the *smallest* identities (rather than dropping by arrival)
    is what makes truncation associative: any grouping of the same
    multiset of events converges on the same retained set.
    """
    seen = {}
    for events in event_lists:
        for event in events:
            seen.setdefault(event.identity, event)
    ordered = [seen[identity] for identity in sorted(seen)]
    dropped = max(0, len(ordered) - budget)
    return ordered[:budget], dropped


@dataclass(frozen=True)
class TimelineSnapshot:
    """Immutable, picklable view of a recorder's events.

    ``events`` is sorted by canonical identity and bounded by ``budget``;
    ``dropped`` counts identities lost to the ring budget so far.
    """

    events: tuple = ()
    dropped: int = 0
    budget: int = DEFAULT_BUDGET

    def merged(self, other):
        budget = max(self.budget, other.budget)
        events, truncated = _merge_events((self.events, other.events), budget)
        return TimelineSnapshot(
            events=tuple(events),
            dropped=self.dropped + other.dropped + truncated,
            budget=budget,
        )

    def deterministic_events(self):
        return tuple(e for e in self.events if e.kind in DETERMINISTIC_KINDS)

    def to_jsonable(self):
        return {
            "version": TIMELINE_VERSION,
            "budget": self.budget,
            "dropped": self.dropped,
            "events": [event.to_jsonable() for event in self.events],
        }

    @classmethod
    def from_jsonable(cls, data):
        events = [TimelineEvent.from_jsonable(e) for e in data.get("events", ())]
        budget = data.get("budget", DEFAULT_BUDGET)
        merged, truncated = _merge_events((events,), budget)
        return cls(
            events=tuple(merged),
            dropped=data.get("dropped", 0) + truncated,
            budget=budget,
        )


class TimelineRecorder:
    """Collects timeline events into a bounded ring.

    Appends are O(1); the ring compacts lazily (dedup + canonical sort +
    keep-smallest truncation) once the raw list exceeds twice the
    budget, and always at :meth:`snapshot`.
    """

    def __init__(self, *, enabled=True, budget=DEFAULT_BUDGET):
        self.enabled = enabled
        self.budget = max(1, int(budget))
        self._events = []
        self._dropped = 0
        self._track = f"p{os.getpid()}"

    # -- recording --------------------------------------------------

    def emit(self, kind, key, attrs=None, *, wall_s=0.0, dur_s=0.0, track=None):
        if not self.enabled:
            return
        self._events.append(
            TimelineEvent(
                kind=kind,
                key=tuple(key),
                attrs=canonical_attrs(attrs),
                wall_s=wall_s,
                dur_s=dur_s,
                track=track if track is not None else self._track,
            )
        )
        if len(self._events) > 2 * self.budget:
            self._compact()

    @contextmanager
    def span(self, kind, key, attrs=None):
        """Emit ``kind`` with wall-clock start/duration on exit."""
        wall = time.time()
        start = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                kind,
                key,
                attrs,
                wall_s=wall,
                dur_s=time.perf_counter() - start,
            )

    # -- folding ----------------------------------------------------

    def merge_snapshot(self, snapshot):
        """Fold a worker snapshot into this recorder (any settle order)."""
        if not self.enabled or snapshot is None:
            return
        self._events.extend(snapshot.events)
        self._dropped += snapshot.dropped
        if len(self._events) > 2 * self.budget:
            self._compact()

    def _compact(self):
        merged, truncated = _merge_events((self._events,), self.budget)
        self._events = merged
        self._dropped += truncated

    def snapshot(self):
        self._compact()
        return TimelineSnapshot(
            events=tuple(self._events),
            dropped=self._dropped,
            budget=self.budget,
        )

    def clear(self):
        self._events = []
        self._dropped = 0


# -- module-level switch (mirrors registry.py's _active pattern) -----

_active = TimelineRecorder(enabled=False)


def get_timeline():
    return _active


def set_timeline(recorder):
    global _active
    previous = _active
    _active = recorder
    return previous


def maybe_timeline():
    """The active recorder, or ``None`` when recording is off.

    Instrumented call sites do ``tl = maybe_timeline()`` once and branch
    on ``tl is not None`` — the disabled path allocates nothing.
    """
    return _active if _active.enabled else None


@contextmanager
def recording_timeline(recorder=None, *, budget=DEFAULT_BUDGET):
    """Route timeline events to ``recorder`` (a fresh one by default)."""
    if recorder is None:
        recorder = TimelineRecorder(enabled=True, budget=budget)
    previous = set_timeline(recorder)
    try:
        yield recorder
    finally:
        set_timeline(previous)


# -- timeline documents (--timeline-out files) -----------------------


def build_timeline_document(snapshot, *, command, workload=None, extra=None):
    document = {
        "kind": TIMELINE_KIND,
        "version": TIMELINE_VERSION,
        "command": command,
        "budget": snapshot.budget,
        "dropped": snapshot.dropped,
        "events": [event.to_jsonable() for event in snapshot.events],
    }
    if workload is not None:
        document["workload"] = workload
    if extra:
        document.update(extra)
    return document


def write_timeline(path, snapshot, *, command, workload=None, extra=None):
    document = build_timeline_document(
        snapshot, command=command, workload=workload, extra=extra
    )
    tmp = f"{path}.tmp"
    with open(tmp, "w") as fh:
        json.dump(document, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return document


def load_timeline(path):
    with open(path) as fh:
        return json.load(fh)


def snapshot_from_document(document):
    """Rebuild a :class:`TimelineSnapshot` from a timeline document or
    a run-report ``timeline`` section.

    Section events are compact ``[kind, key, attrs]`` triples with the
    display fields stripped; document events are full dicts.  Both forms
    land in the same snapshot type.
    """
    events = document.get("events", ())
    if events and isinstance(events[0], (list, tuple)):
        merged, truncated = _merge_events(
            (_section_events(document),),
            document.get("budget", DEFAULT_BUDGET),
        )
        return TimelineSnapshot(
            events=tuple(merged),
            dropped=document.get("dropped", 0) + truncated,
            budget=document.get("budget", DEFAULT_BUDGET),
        )
    return TimelineSnapshot.from_jsonable(document)


# -- run-report v3 `timeline` section --------------------------------


def timeline_section(snapshot):
    """The deterministic slice of ``snapshot`` for the v3 run report.

    Events are restricted to :data:`DETERMINISTIC_KINDS` and stripped of
    display fields, so the section compares ``==`` between serial,
    ``--jobs N`` and checkpoint-resumed campaigns.  ``pairs`` carries the
    derived per-pair posterior trajectories for the dashboard.
    """
    events = snapshot.deterministic_events()
    return {
        "version": TIMELINE_VERSION,
        "budget": snapshot.budget,
        "dropped": snapshot.dropped,
        "events": [
            [e.kind, list(e.key), {name: value for name, value in e.attrs}]
            for e in events
        ],
        "pairs": pair_trajectories(events),
    }


def _section_events(section):
    out = []
    for entry in section.get("events", ()):
        kind, key, attrs = entry
        out.append(
            TimelineEvent(kind=kind, key=tuple(key), attrs=canonical_attrs(attrs))
        )
    return out


def merge_timeline_sections(first, second):
    """Dedup-union two report sections (used by checkpoint-resume merge).

    ``None`` arguments are identity elements: a resumed campaign that is
    not recording keeps the prior report's section untouched, and vice
    versa.
    """
    if first is None:
        return None if second is None else dict(second)
    if second is None:
        return dict(first)
    budget = max(
        first.get("budget", DEFAULT_BUDGET), second.get("budget", DEFAULT_BUDGET)
    )
    events, truncated = _merge_events(
        (_section_events(first), _section_events(second)), budget
    )
    return {
        "version": TIMELINE_VERSION,
        "budget": budget,
        "dropped": first.get("dropped", 0) + second.get("dropped", 0) + truncated,
        "events": [
            [e.kind, list(e.key), {name: value for name, value in e.attrs}]
            for e in events
        ],
        "pairs": pair_trajectories(events),
    }


def validate_timeline_section(section, *, path="timeline"):
    """Shape-check a report ``timeline`` section; returns error strings."""
    errors = []
    if not isinstance(section, dict):
        return [f"{path}: expected an object"]
    version = section.get("version")
    if not isinstance(version, int) or version < 1:
        errors.append(f"{path}.version: expected a positive integer")
    elif version > TIMELINE_VERSION:
        errors.append(
            f"{path}.version: {version} is newer than supported {TIMELINE_VERSION}"
        )
    for field_name in ("budget", "dropped"):
        value = section.get(field_name)
        if not isinstance(value, int) or value < 0:
            errors.append(f"{path}.{field_name}: expected a non-negative integer")
    events = section.get("events")
    if not isinstance(events, list):
        errors.append(f"{path}.events: expected a list")
    else:
        for i, entry in enumerate(events):
            if (
                not isinstance(entry, list)
                or len(entry) != 3
                or not isinstance(entry[0], str)
                or not isinstance(entry[1], list)
                or not isinstance(entry[2], dict)
            ):
                errors.append(
                    f"{path}.events[{i}]: expected [kind, key-list, attrs-object]"
                )
                break
    pairs = section.get("pairs")
    if pairs is not None and not isinstance(pairs, dict):
        errors.append(f"{path}.pairs: expected an object")
    return errors


# -- derived views ---------------------------------------------------


def pair_trajectories(events):
    """Per-pair posterior trajectory series, keyed by pair label.

    Reconstructed from deterministic *delta* events (``schedule.posterior``
    per settled chunk, ``chunk`` per executed chunk) sorted by seed
    range, so the series is identical no matter what order chunks
    settled in.  Adaptive campaigns carry explicit Beta priors from
    ``pair.bind``; fixed campaigns fall back to Beta(1, 1) so the
    dashboard can still plot a posterior-mean sparkline.
    """
    binds = {}  # pair index -> bind attrs
    posteriors = {}  # pair index -> [(seed_start, trials, created)]
    chunks = {}  # label -> [(seed_start, trials, created)]
    stops = {}  # pair index -> reason
    for event in events:
        if event.kind == "pair.bind":
            binds[event.key[0]] = event.attrs_dict
        elif event.kind == "schedule.posterior":
            index, seed_start = event.key[0], event.key[1]
            attrs = event.attrs_dict
            posteriors.setdefault(index, []).append(
                (seed_start, attrs.get("trials", 0), attrs.get("created", 0))
            )
        elif event.kind == "chunk":
            label, seed_start = event.key[0], event.key[1]
            attrs = event.attrs_dict
            chunks.setdefault(label, []).append(
                (seed_start, attrs.get("trials", 0), attrs.get("created", 0))
            )
        elif event.kind == "schedule.stop":
            stops[event.key[0]] = event.attrs_dict.get("reason")

    label_for = {
        index: attrs.get("pair", str(index)) for index, attrs in binds.items()
    }
    index_for = {label: index for index, label in label_for.items()}

    out = {}

    def _series(deltas, alpha0, beta0):
        trials = created = 0
        alpha, beta = alpha0, beta0
        points = [[0, round(alpha, 6), round(beta, 6)]]
        for _, chunk_trials, chunk_created in sorted(deltas):
            trials += chunk_trials
            created += chunk_created
            alpha += chunk_created
            beta += chunk_trials - chunk_created
            points.append([trials, round(alpha, 6), round(beta, 6)])
        return trials, created, points

    indices = set(binds) | set(posteriors)
    for index in sorted(indices, key=lambda i: (str(type(i)), str(i))):
        attrs = binds.get(index, {})
        label = label_for.get(index, str(index))
        alpha0 = attrs.get("alpha", 1.0)
        beta0 = attrs.get("beta", 1.0)
        deltas = posteriors.get(index)
        if deltas is None:
            deltas = chunks.get(label, [])
        trials, created, points = _series(deltas, alpha0, beta0)
        entry = {
            "index": index,
            "trials": trials,
            "created": created,
            "prior": [alpha0, beta0],
            "trajectory": points,
        }
        if "grade" in attrs:
            entry["grade"] = attrs["grade"]
        if index in stops:
            entry["stopped"] = stops[index]
        out[label] = entry

    # pairs seen only as executed chunks (e.g. fixed schedule without
    # bind events in the retained window)
    for label, deltas in chunks.items():
        if label in out or label in index_for:
            continue
        trials, created, points = _series(deltas, 1.0, 1.0)
        out[label] = {
            "trials": trials,
            "created": created,
            "prior": [1.0, 1.0],
            "trajectory": points,
        }
    return out


def funnel_counts(events):
    """The detector funnel (candidates → schedulable → confirmed)."""
    for event in events:
        if event.kind == "funnel":
            return event.attrs_dict
    return None


__all__ = [
    "DEFAULT_BUDGET",
    "DETERMINISTIC_KINDS",
    "TIMELINE_KIND",
    "TIMELINE_VERSION",
    "TimelineEvent",
    "TimelineRecorder",
    "TimelineSnapshot",
    "build_timeline_document",
    "canonical_attrs",
    "funnel_counts",
    "get_timeline",
    "load_timeline",
    "maybe_timeline",
    "merge_timeline_sections",
    "pair_label",
    "pair_trajectories",
    "recording_timeline",
    "set_timeline",
    "snapshot_from_document",
    "timeline_section",
    "validate_timeline_section",
    "write_timeline",
]
