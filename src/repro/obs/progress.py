"""Live campaign progress: the ``on_progress`` hook's value type and printer.

Long parallel campaigns were silent until the final report; the
supervisor now fires an ``on_settle`` callback every time a task reaches
a terminal state (success, cache hit, quarantine), which the engine
translates into :class:`ProgressUpdate` values for the caller's
``on_progress`` hook.  :class:`ProgressPrinter` is the stock consumer:
throttled one-line updates on stderr, always printing the final one.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass


@dataclass(frozen=True)
class ProgressUpdate:
    """One point-in-time view of a campaign phase."""

    phase: str
    done: int
    total: int
    #: pairs confirmed real so far (fuzz phases only; None elsewhere).
    confirms: int | None = None
    elapsed_s: float = 0.0
    #: campaign health state ("healthy" stays off the rendered line;
    #: "degraded"/"critical" are worth a reader's glance).
    health: str = "healthy"
    #: work units still *scheduled* to run, when the producer knows better
    #: than ``total - done`` — under ``stop_on_confirm`` cancellations or
    #: an adaptive schedule, much of ``total - done`` will never execute
    #: (or ``total`` will keep growing), so the naive extrapolation is
    #: nonsense.  ``None`` falls back to ``total - done``.
    remaining: int | None = None

    @property
    def eta_s(self) -> float | None:
        """Remaining-time estimate from the mean settled-task rate.

        Extrapolates over remaining *scheduled* work — :attr:`remaining`
        when the producer supplied it, else ``total - done``.
        """
        if self.done <= 0:
            return None
        if self.remaining is not None:
            return self.elapsed_s / self.done * self.remaining
        if self.total <= 0:
            return None
        return self.elapsed_s / self.done * (self.total - self.done)

    @property
    def final(self) -> bool:
        """Nothing left to run — trust :attr:`remaining` when supplied."""
        if self.remaining is not None:
            return self.remaining <= 0
        return self.done >= self.total

    def render(self) -> str:
        pct = 100.0 * self.done / self.total if self.total else 100.0
        bits = [f"[{self.phase}] {self.done}/{self.total} ({pct:.0f}%)"]
        if self.confirms is not None:
            bits.append(f"{self.confirms} confirmed")
        bits.append(f"{self.elapsed_s:.1f}s elapsed")
        eta = self.eta_s
        if eta is not None and not self.final:
            bits.append(f"eta {eta:.1f}s")
        if self.health != "healthy":
            bits.append(f"health={self.health}")
        return ", ".join(bits)


class ProgressPrinter:
    """Throttled line-per-update progress consumer (stderr by default)."""

    def __init__(
        self,
        stream=None,
        *,
        interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self._clock = clock
        self._last = float("-inf")

    def __call__(self, update: ProgressUpdate) -> None:
        now = self._clock()
        if not update.final and now - self._last < self.interval:
            return
        self._last = now
        print(update.render(), file=self.stream, flush=True)


__all__ = ["ProgressUpdate", "ProgressPrinter"]
