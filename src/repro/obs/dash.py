"""``repro dash``: a self-contained HTML dashboard for one campaign.

Zero dependencies by design — the output is a single HTML file with
inline CSS and hand-rolled SVG, so it opens anywhere a browser exists
(CI artifact viewers included) with no JS frameworks, no CDN fetches, no
network at all.  Input is either a v3 run report (``--metrics-out``) or
a raw timeline document (``--timeline-out``); both carry the
deterministic event stream the panels are derived from:

* **stat tiles** — the campaign's headline counters;
* **detector funnel** — candidate pairs → graded schedulable →
  confirmed real, from the ``funnel`` event;
* **posterior sparklines** — per-pair Beta posterior mean over
  cumulative trials, from the reconstructed trajectories;
* **budget burn-down** — trials allocated per schedule round;
* **health band** — the campaign's health state and transitions;
* **trial timeline** — wall-clock chunk lanes (timeline documents only:
  run-report sections strip display fields, so there is no layout to
  draw there).
"""

from __future__ import annotations

import html as _html

from .timeline import (
    TIMELINE_KIND,
    funnel_counts,
    pair_trajectories,
    snapshot_from_document,
)

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 64rem; color: #1a1a2e; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.05rem; margin-top: 2rem;
     border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
.meta { color: #666; font-size: .85rem; }
.tiles { display: flex; flex-wrap: wrap; gap: .8rem; margin-top: 1rem; }
.tile { border: 1px solid #ddd; border-radius: .5rem; padding: .6rem 1rem;
        min-width: 7rem; background: #fafaff; }
.tile .v { font-size: 1.3rem; font-weight: 600; }
.tile .k { color: #666; font-size: .75rem; }
table { border-collapse: collapse; margin-top: .6rem; font-size: .85rem; }
td, th { padding: .25rem .7rem; border-bottom: 1px solid #eee;
         text-align: left; }
.bar { height: .9rem; background: #4a6fa5; display: inline-block;
       vertical-align: middle; border-radius: .15rem; }
.bar.ok { background: #2e8b57; } .bar.warn { background: #c9a227; }
.health-healthy { color: #2e8b57; } .health-degraded { color: #c9a227; }
.health-critical { color: #b03030; }
svg { background: #fafaff; border: 1px solid #eee; border-radius: .3rem; }
.lane { fill: #4a6fa5; opacity: .85; }
.note { color: #888; font-size: .8rem; }
"""


def _esc(value) -> str:
    return _html.escape(str(value), quote=True)


def _sparkline(trajectory, *, width=220, height=44, pad=4) -> str:
    """An SVG polyline of posterior mean alpha/(alpha+beta) per step."""
    means = [
        (alpha / (alpha + beta) if alpha + beta else 0.0)
        for _, alpha, beta in trajectory
    ]
    if len(means) == 1:
        means = means * 2
    n = len(means) - 1
    points = " ".join(
        f"{pad + (width - 2 * pad) * i / n:.1f},"
        f"{height - pad - (height - 2 * pad) * m:.1f}"
        for i, m in enumerate(means)
    )
    last = means[-1]
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline points="{points}" fill="none" stroke="#4a6fa5" '
        f'stroke-width="1.5"/>'
        f'<title>posterior mean {last:.3f}</title></svg>'
    )


def _tiles(stats: dict) -> str:
    cells = "".join(
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(key)}</div></div>'
        for key, value in stats.items()
    )
    return f'<div class="tiles">{cells}</div>'


def _funnel_rows(funnel: dict) -> str:
    stages = [
        ("candidate pairs", funnel.get("candidates", 0), ""),
        ("graded schedulable", funnel.get("schedulable", 0), ""),
        ("graded speculative", funnel.get("speculative", 0), "warn"),
        ("ungraded", funnel.get("ungraded", 0), "warn"),
        ("confirmed real", funnel.get("confirmed", 0), "ok"),
    ]
    top = max((count for _, count, _ in stages), default=0) or 1
    rows = []
    for name, count, cls in stages:
        width = int(260 * count / top)
        rows.append(
            f"<tr><td>{_esc(name)}</td><td>{count}</td>"
            f'<td><span class="bar {cls}" style="width:{width}px"></span>'
            f"</td></tr>"
        )
    return "<table>" + "".join(rows) + "</table>"


def _pair_section(pairs: dict) -> str:
    rows = []
    # Pairs seen only as executed chunks (fixed schedule) carry no bind
    # index — sort those after the bound pairs, by label.
    def _order(kv):
        index = kv[1].get("index")
        return (index is None, str(index), kv[0])

    for label, info in sorted(pairs.items(), key=_order):
        trajectory = info.get("trajectory") or [[0, 1.0, 1.0]]
        alpha, beta = trajectory[-1][1], trajectory[-1][2]
        mean = alpha / (alpha + beta) if alpha + beta else 0.0
        grade = info.get("grade", "")
        stopped = info.get("stopped", "")
        rows.append(
            f"<tr><td><code>{_esc(label)}</code></td>"
            f"<td>{_esc(grade)}</td>"
            f"<td>{info.get('trials', 0)}</td>"
            f"<td>{info.get('created', 0)}</td>"
            f"<td>{mean:.3f}</td>"
            f"<td>{_sparkline(trajectory)}</td>"
            f"<td>{_esc(stopped)}</td></tr>"
        )
    if not rows:
        return '<p class="note">no per-pair trajectories recorded</p>'
    return (
        "<table><tr><th>pair</th><th>grade</th><th>trials</th>"
        "<th>created</th><th>post. mean</th><th>trajectory</th>"
        "<th>stopped</th></tr>" + "".join(rows) + "</table>"
    )


def _burndown(rounds: list) -> str:
    """Per-round allocation bars: trials issued by each schedule round."""
    if not rounds:
        return '<p class="note">no schedule rounds recorded</p>'
    top = max(trials for _, trials in rounds) or 1
    rows = []
    total = 0
    for index, trials in rounds:
        total += trials
        width = int(260 * trials / top)
        rows.append(
            f"<tr><td>round {index}</td><td>{trials}</td>"
            f'<td><span class="bar" style="width:{width}px"></span></td>'
            f"<td>{total}</td></tr>"
        )
    return (
        "<table><tr><th>round</th><th>trials</th><th></th>"
        "<th>cumulative</th></tr>" + "".join(rows) + "</table>"
    )


def _health_band(state: str, transitions: list) -> str:
    body = (
        f'<p>campaign health: <strong class="health-{_esc(state)}">'
        f"{_esc(state)}</strong></p>"
    )
    if transitions:
        rows = "".join(
            f"<tr><td>{_esc(step)}</td><td>{_esc(to_state)}</td>"
            f"<td>{_esc(reason)}</td></tr>"
            for step, to_state, reason in transitions
        )
        body += (
            "<table><tr><th>#</th><th>state</th><th>reason</th></tr>"
            + rows
            + "</table>"
        )
    return body


def _timeline_lanes(events, *, width=640, lane_h=14) -> str:
    """Wall-clock chunk lanes, one row per worker track."""
    timed = sorted(
        (e for e in events if e.kind == "chunk" and e.wall_s > 0.0),
        key=lambda e: e.wall_s,
    )
    if not timed:
        return (
            '<p class="note">no wall-clock chunk events (run-report '
            "sections strip display fields; use a --timeline-out "
            "document for the lane view)</p>"
        )
    origin = min(e.wall_s for e in timed)
    span = max(e.wall_s + e.dur_s for e in timed) - origin or 1e-9
    tracks = sorted({e.track for e in timed})
    height = lane_h * (len(tracks) + 1)
    parts = [f'<svg width="{width + 120}" height="{height + 8}">']
    for row, track in enumerate(tracks):
        y = 4 + row * lane_h
        parts.append(
            f'<text x="2" y="{y + lane_h - 4}" font-size="10" '
            f'fill="#666">{_esc(track or "main")}</text>'
        )
        for e in (e for e in timed if e.track == track):
            x = 110 + width * (e.wall_s - origin) / span
            w = max(2.0, width * e.dur_s / span)
            label = "/".join(str(part) for part in e.key)
            parts.append(
                f'<rect class="lane" x="{x:.1f}" y="{y}" '
                f'width="{w:.1f}" height="{lane_h - 3}">'
                f"<title>{_esc(label)} ({e.dur_s * 1e3:.1f} ms)</title>"
                f"</rect>"
            )
    parts.append("</svg>")
    return "".join(parts)


def _from_report(report: dict) -> dict:
    section = report.get("timeline") or {}
    counters = report.get("counters", {})
    gauges = report.get("gauges", {})
    snapshot = snapshot_from_document(section) if section else None
    events = snapshot.events if snapshot is not None else ()
    funnel = (funnel_counts(events) if events else None) or {}
    rank = gauges.get("health.state", 0)
    state = {0: "healthy", 1: "degraded", 2: "critical"}.get(int(rank), "healthy")
    return {
        "title": f"run report — {report.get('command', '?')}",
        "workload": report.get("workload"),
        "stats": {
            "trials": counters.get("fuzz.trials", 0),
            "races created": counters.get("fuzz.races_created", 0),
            "postpones": counters.get("fuzz.postpones", 0),
            "schedule rounds": counters.get("schedule.rounds", 0),
            "pairs confirmed": counters.get("schedule.pairs_confirmed", 0),
            "store hits": counters.get("trace.store_hits", 0),
            "retries": counters.get("supervisor.retries", 0),
        },
        "funnel": funnel,
        "pairs": section.get("pairs") or {},
        "rounds": _rounds_from_events(events),
        "health_state": state,
        "health_transitions": [],
        "events": events,
    }


def _rounds_from_events(events) -> list:
    rounds = []
    for e in events:
        if e.kind == "schedule.round":
            attrs = e.attrs_dict
            rounds.append((e.key[0] if e.key else len(rounds), attrs.get("trials", 0)))
    rounds.sort(key=lambda pair: pair[0])
    return rounds


def _from_timeline(document: dict) -> dict:
    snapshot = snapshot_from_document(document)
    events = snapshot.events
    trial_events = [e for e in events if e.kind == "trial"]
    chunk_events = [e for e in events if e.kind == "chunk"]
    created = sum(e.attrs_dict.get("created", 0) for e in trial_events)
    trials = len(trial_events)
    if not trial_events and chunk_events:
        created = sum(e.attrs_dict.get("created", 0) for e in chunk_events)
        trials = sum(e.attrs_dict.get("trials", 0) for e in chunk_events)
    health_events = sorted(
        (e for e in events if e.kind == "health"), key=lambda e: e.key
    )
    state = str(health_events[-1].key[1]) if health_events else "healthy"
    return {
        "title": f"timeline — {document.get('command', '?')}",
        "workload": document.get("workload"),
        "stats": {
            "events": len(events),
            "dropped": snapshot.dropped,
            "trials": trials,
            "races created": created,
            "store hits": sum(
                1 for e in events if e.kind == "store" and e.key[-1] == "hit"
            ),
            "retries": sum(1 for e in events if e.kind == "task.retry"),
        },
        "funnel": funnel_counts(events) or {},
        "pairs": pair_trajectories(snapshot.deterministic_events()),
        "rounds": _rounds_from_events(events),
        "health_state": state,
        "health_transitions": [
            (e.key[0], e.key[1], e.attrs_dict.get("reason", ""))
            for e in health_events
        ],
        "events": events,
    }


def render_dash(data: dict) -> str:
    """Render a v3 run report or a timeline document as standalone HTML."""
    if data.get("kind") == TIMELINE_KIND:
        model = _from_timeline(data)
    else:
        model = _from_report(data)
    workload = (
        f'<span class="meta"> · workload: {_esc(model["workload"])}</span>'
        if model["workload"]
        else ""
    )
    sections = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        "<title>repro dash</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(model['title'])}{workload}</h1>",
        _tiles(model["stats"]),
        "<h2>Detector funnel</h2>",
        _funnel_rows(model["funnel"]),
        "<h2>Pair posteriors</h2>",
        _pair_section(model["pairs"]),
        "<h2>Trial allocation burn-down</h2>",
        _burndown(model["rounds"]),
        "<h2>Health</h2>",
        _health_band(model["health_state"], model["health_transitions"]),
        "<h2>Trial timeline</h2>",
        _timeline_lanes(model["events"]),
        "</body></html>",
    ]
    return "\n".join(sections) + "\n"


def write_dash(path, data: dict) -> str:
    """Write :func:`render_dash` output to ``path``; returns the HTML."""
    html = render_dash(data)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(html)
    return html


__all__ = ["render_dash", "write_dash"]
