"""Schedulers for the native (real-threads) backend.

Mirrors :mod:`repro.core`: a uniform random scheduler as the passive
baseline, and the Algorithm 1 postponing scheduler directed at a racing
statement pair.  Both draw every decision from the runtime's seeded RNG,
so a native run replays from its seed exactly like a generator-engine run.
"""

from __future__ import annotations

from typing import Iterable

from repro.runtime.statement import Statement, StatementPair


class NativeScheduler:
    """Strategy for :class:`~repro.native.runtime.NativeRuntime` dispatch."""

    def attach(self, runtime) -> None:
        self.runtime = runtime

    def choose(self, enabled: list[int]) -> int | None:
        """Pick the tid to run next; ``None`` means "re-evaluate" (used by
        the postponing scheduler after a forced release)."""
        raise NotImplementedError


class RandomNativeScheduler(NativeScheduler):
    """Uniform random choice among enabled threads."""

    def choose(self, enabled: list[int]) -> int | None:
        return enabled[self.runtime.rng.randrange(len(enabled))]


class RaceDirectedNativeScheduler(NativeScheduler):
    """Algorithm 1 over real threads.

    Keeps the same postponed-set discipline as
    :class:`repro.core.postponing.PostponingDriver`: postpone threads whose
    next statement is in the racing pair, rendezvous on same-location
    conflicting accesses, coin-flip resolution, forced release when every
    enabled thread is postponed, and a patience watchdog.
    """

    def __init__(
        self,
        race_set: StatementPair | Iterable[Statement],
        patience: int = 400,
    ) -> None:
        if isinstance(race_set, StatementPair):
            statements = {race_set.first, race_set.second}
        else:
            statements = set(race_set)
        if not statements:
            raise ValueError("need a non-empty racing statement set")
        self.race_set = frozenset(statements)
        self.patience = patience
        self._postponed: dict[int, int] = {}  # tid -> op count when postponed
        self._exempt: set[int] = set()

    # ------------------------------------------------------------------ #

    def _is_target(self, tid: int) -> bool:
        op = self.runtime.next_op(tid)
        if op is None or not op.is_mem:
            return False
        return self.runtime.next_stmt(tid) in self.race_set

    def _conflicting(self, tid: int) -> list[int]:
        op = self.runtime.next_op(tid)
        rivals = []
        for other in sorted(self._postponed):
            other_op = self.runtime.next_op(other)
            if other_op is None or not other_op.is_mem:
                continue
            if other_op.location != op.location:
                continue
            if not (op.is_write or other_op.is_write):
                continue
            rivals.append(other)
        return rivals

    def choose(self, enabled: list[int]) -> int | None:
        runtime = self.runtime
        rng = runtime.rng
        now = runtime._ops

        # Watchdog: free threads postponed for too long.
        for tid, since in list(self._postponed.items()):
            if now - since > self.patience:
                del self._postponed[tid]
                self._exempt.add(tid)

        enabled_set = set(enabled)
        for tid in list(self._postponed):
            if tid not in enabled_set:
                del self._postponed[tid]

        choosable = [tid for tid in enabled if tid not in self._postponed]
        if not choosable:
            victim = sorted(self._postponed)[rng.randrange(len(self._postponed))]
            del self._postponed[victim]
            self._exempt.add(victim)
            return None  # re-evaluate with the victim released

        tid = choosable[rng.randrange(len(choosable))]
        if self._is_target(tid) and tid not in self._exempt:
            rivals = self._conflicting(tid)
            if rivals:
                return self._resolve(tid, rivals)
            self._postponed[tid] = now
            return None
        self._exempt.discard(tid)
        return tid

    def _resolve(self, tid: int, rivals: list[int]) -> int:
        """A real race: record it, resolve by coin flip, return the runner."""
        runtime = self.runtime
        stmt = runtime.next_stmt(tid)
        for rival in rivals:
            pair = StatementPair(stmt, runtime.next_stmt(rival))
            runtime.result.races_created += 1
            runtime.result.pairs_created.add(pair)
        if runtime.rng.random() < 0.5:
            return tid  # arrival first; rivals stay postponed
        # Rivals first: postpone the arrival, run one rival now (the others
        # surface on subsequent dispatches, still conflicting or released).
        self._postponed[tid] = runtime._ops
        rival = rivals[0]
        del self._postponed[rival]
        self._exempt.add(rival)
        return rival
