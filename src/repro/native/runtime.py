"""A RaceFuzzer backend for *real* Python threads.

The generator engine in :mod:`repro.runtime` is the reference substrate,
but CalFuzzer's point was instrumenting real programs.  This module brings
the same active-testing control to ordinary ``threading.Thread`` code: the
GIL plus a token protocol make real threads fully schedulable.

How it works
------------
Exactly one thread owns the *token* at any time; every other registered
thread is parked on one condition variable.  Instrumented programs route
all shared-state effects through a :class:`NativeRuntime` handle::

    rt = NativeRuntime(seed=7)
    balance = rt.var("balance", 100)
    lock = rt.lock("L")

    def teller(amount):
        current = rt.read(balance)          # a controlled scheduling point
        rt.write(balance, current + amount)

    def main():
        workers = [rt.spawn(teller, 10), rt.spawn(teller, -10)]
        for worker in workers:
            rt.join(worker)

    result = rt.run(main)

Each ``rt.*`` call is a checkpoint: the calling thread publishes the
operation it is *about* to perform (the paper's ``NextStmt``), parks, and
performs it only when the scheduler hands it the token.  Because only the
token holder ever touches shared state, locks, wait sets and variables are
pure bookkeeping — the real threads exist to carry real stacks, closures
and exception flow, not for parallelism.

The scheduler side (random or race-directed) lives in
:mod:`repro.native.fuzzing`; detectors from :mod:`repro.detectors` plug in
unchanged because checkpoints emit the same event objects as the generator
engine.  Statement identity is the *caller's* source line, mirroring
bytecode instrumentation, so Phase 1 pairs feed Phase 2 across executions
exactly as on the reference engine.

Scope: read/write/lock/unlock/wait/notify/notify_all/spawn/join/
yield_point/check.  Sleep and interrupt are generator-engine-only for now
(DESIGN.md notes the subset).
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.runtime.errors import (
    AssertionViolation,
    EngineError,
    IllegalMonitorState,
)
from repro.runtime.events import (
    Access,
    AcquireEvent,
    ErrorInfo,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.runtime.location import LockId, VarLoc, fresh_uid
from repro.runtime.observer import ExecutionObserver, ObserverChain
from repro.runtime.statement import Statement


class ExecutionAborted(BaseException):
    """Raised inside parked threads when the run is torn down (deadlock or
    budget exhaustion).  BaseException so user ``except Exception`` blocks
    cannot swallow the teardown."""


@dataclass
class NativeVar:
    """A shared cell; its value is only ever touched by the token holder."""

    loc: VarLoc
    value: Any

    @property
    def name(self) -> str:
        return self.loc.name


@dataclass
class NativeLock:
    """A virtual reentrant monitor (no OS lock needed: one runner at a time)."""

    id: LockId
    owner: int | None = None
    depth: int = 0
    wait_set: list[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.id.name


@dataclass(frozen=True)
class NativeHandle:
    """Reference to a spawned native thread."""

    tid: int
    name: str


@dataclass
class _PendingOp:
    """What a parked thread is about to do — the native ``NextStmt``."""

    kind: str  # read/write/lock/unlock/wait/notify/notify_all/join/yield/reacquire
    stmt: Statement
    var: NativeVar | None = None
    value: Any = None
    lock: NativeLock | None = None
    target: int | None = None
    reacquire_depth: int = 0
    error: BaseException | None = None

    @property
    def is_mem(self) -> bool:
        return self.kind in ("read", "write")

    @property
    def is_write(self) -> bool:
        return self.kind == "write"

    @property
    def location(self):
        return self.var.loc if self.var is not None else None


@dataclass
class _NThread:
    tid: int
    name: str
    thread: threading.Thread | None = None
    #: RUNNING (owns token), READY (parked with a pending op), WAITING (in
    #: a wait set), DONE
    state: str = "READY"
    pending: _PendingOp | None = None
    waiting_on: NativeLock | None = None
    wait_depth: int = 0
    notified_msg: int | None = None
    error: BaseException | None = None
    aborted: bool = False
    held: list[NativeLock] = field(default_factory=list)


@dataclass
class NativeResult:
    """Outcome of one :meth:`NativeRuntime.run`."""

    seed: int
    ops: int = 0
    crashes: list[tuple[str, str]] = field(default_factory=list)  # (thread, error)
    deadlock: bool = False
    truncated: bool = False
    #: filled by the race-directed scheduler (see repro.native.fuzzing)
    races_created: int = 0
    pairs_created: set = field(default_factory=set)

    @property
    def exception_types(self) -> list[str]:
        return [error for _, error in self.crashes]


class NativeRuntime:
    """Token-scheduled execution of real Python threads (one run per instance)."""

    def __init__(
        self,
        seed: int = 0,
        observers: tuple[ExecutionObserver, ...] = (),
        scheduler=None,
        max_ops: int = 200_000,
    ) -> None:
        import random

        self.seed = seed
        self.rng = random.Random(seed)
        self.max_ops = max_ops
        self._cond = threading.Condition()
        self._threads: dict[int, _NThread] = {}
        self._tls = threading.local()
        self._next_tid = 0
        self._next_msg = 0
        self._current: int | None = None
        self._term_msg: dict[int, int] = {}
        self._started = False
        self._torn_down = False
        self.result = NativeResult(seed=seed)
        self._ops = 0
        self.observer = ObserverChain(observers)
        self._observing = bool(observers)
        from .fuzzing import RandomNativeScheduler

        self.scheduler = scheduler or RandomNativeScheduler()
        self.scheduler.attach(self)

    # ----------------------------------------------------------------- #
    # program-facing API (world construction)

    def var(self, name: str, init: Any = None) -> NativeVar:
        return NativeVar(loc=VarLoc(fresh_uid(), name), value=init)

    def lock(self, name: str = "") -> NativeLock:
        return NativeLock(id=LockId(fresh_uid(), name))

    # ----------------------------------------------------------------- #
    # program-facing API (scheduling points; call only from inside run())

    def read(self, var: NativeVar, label: str | None = None) -> Any:
        return self._checkpoint(
            _PendingOp(kind="read", stmt=self._site(label), var=var)
        )

    def write(self, var: NativeVar, value: Any, label: str | None = None) -> None:
        self._checkpoint(
            _PendingOp(kind="write", stmt=self._site(label), var=var, value=value)
        )

    def acquire(self, lock: NativeLock, label: str | None = None) -> None:
        self._checkpoint(_PendingOp(kind="lock", stmt=self._site(label), lock=lock))

    def release(self, lock: NativeLock, label: str | None = None) -> None:
        self._checkpoint(_PendingOp(kind="unlock", stmt=self._site(label), lock=lock))

    def wait(self, lock: NativeLock, label: str | None = None) -> None:
        self._checkpoint(_PendingOp(kind="wait", stmt=self._site(label), lock=lock))

    def notify(self, lock: NativeLock, label: str | None = None) -> None:
        self._checkpoint(_PendingOp(kind="notify", stmt=self._site(label), lock=lock))

    def notify_all(self, lock: NativeLock, label: str | None = None) -> None:
        self._checkpoint(
            _PendingOp(kind="notify_all", stmt=self._site(label), lock=lock)
        )

    def yield_point(self, label: str | None = None) -> None:
        self._checkpoint(_PendingOp(kind="yield", stmt=self._site(label)))

    def check(self, condition: bool, message: str = "") -> None:
        self.yield_point()
        if not condition:
            raise AssertionViolation(message or "check failed")

    def spawn(self, fn: Callable, *args: Any, name: str | None = None) -> NativeHandle:
        """Start a controlled thread running ``fn(*args)``."""
        with self._cond:
            handle = self._spawn_locked(fn, args, name)
        # The child only runs when granted the token; announce the edge.
        self.yield_point()
        return handle

    def join(self, handle: NativeHandle, label: str | None = None) -> None:
        self._checkpoint(
            _PendingOp(kind="join", stmt=self._site(label), target=handle.tid)
        )

    # ----------------------------------------------------------------- #
    # running

    def run(self, main_fn: Callable, *args: Any) -> NativeResult:
        """Run ``main_fn`` as the root controlled thread to completion."""
        if self._started:
            raise EngineError("a NativeRuntime instance runs exactly once")
        self._started = True
        if self._observing:
            self.observer.on_start(self)
        with self._cond:
            root = self._spawn_locked(main_fn, args, "main")
            self._grant(root.tid)
        # Wait for every controlled thread to finish (teardown on deadlock
        # or budget exhaustion aborts parked threads, so this converges).
        # Spawns can add threads while we join, so sweep until stable.
        while True:
            snapshot = list(self._threads.values())
            for nthread in snapshot:
                nthread.thread.join()
            if len(snapshot) == len(self._threads):
                break
        self.result.ops = self._ops
        if self._observing:
            self.observer.on_finish(self)
        return self.result

    # ----------------------------------------------------------------- #
    # internals — all under self._cond unless noted

    def _spawn_locked(self, fn, args, name) -> NativeHandle:
        tid = self._next_tid
        self._next_tid += 1
        nthread = _NThread(tid=tid, name=name or getattr(fn, "__name__", "thread"))
        self._threads[tid] = nthread
        parent = getattr(self._tls, "tid", None)
        if self._observing:
            self.observer.on_event(
                ThreadStartEvent(
                    step=self._ops, tid=parent if parent is not None else tid,
                    child=tid, name=nthread.name,
                )
            )
        if parent is not None:
            msg = self._snd(parent)
            if self._observing:
                self.observer.on_event(RcvEvent(step=self._ops, tid=tid, msg_id=msg))

        def body():
            self._tls.tid = tid
            try:
                self._park_until_granted(nthread, first=True)
                fn(*args)
            except ExecutionAborted:
                pass
            except BaseException as error:  # the thread's crash domain
                nthread.error = error
                self.result.crashes.append((nthread.name, type(error).__name__))
            finally:
                self._finish_thread(nthread)

        nthread.state = "READY"
        nthread.pending = _PendingOp(kind="yield", stmt=Statement(label=f"start:{nthread.name}"))
        nthread.thread = threading.Thread(target=body, name=nthread.name, daemon=True)
        nthread.thread.start()
        return NativeHandle(tid=tid, name=nthread.name)

    def _site(self, label: str | None) -> Statement:
        if label is not None:
            return Statement(label=label)
        frame = sys._getframe(2)  # caller of the rt.* wrapper
        code = frame.f_code
        return Statement(
            file=code.co_filename,
            line=frame.f_lineno,
            func=getattr(code, "co_qualname", code.co_name),
        )

    def _snd(self, tid: int) -> int:
        self._next_msg += 1
        if self._observing:
            self.observer.on_event(
                SndEvent(step=self._ops, tid=tid, msg_id=self._next_msg)
            )
        return self._next_msg

    # --- the checkpoint protocol (called from controlled threads) ------- #

    def _checkpoint(self, op: _PendingOp) -> Any:
        me = self._threads[self._tls.tid]
        with self._cond:
            me.pending = op
            me.state = "READY"
            self._current = None
            self._dispatch()
            self._park_until_granted(me)
            # Token granted with our op already executed by _dispatch;
            # results (or a misuse error) are stashed on the pending op.
            me.pending = None
            if op.error is not None:
                raise op.error
            return op.value if op.kind == "read" else None

    def _park_until_granted(self, me: _NThread, first: bool = False) -> None:
        if first:
            self._cond.acquire()
        try:
            while self._current != me.tid:
                if me.aborted:
                    raise ExecutionAborted()
                self._cond.wait()
            if me.aborted:
                raise ExecutionAborted()
            me.state = "RUNNING"
        finally:
            if first:
                self._cond.release()

    def _finish_thread(self, me: _NThread) -> None:
        with self._cond:
            me.state = "DONE"
            me.pending = None
            # A crashing thread may still hold monitors; release them so the
            # run can make progress (Java would not, but leaving them held
            # turns every crash into a deadlock report).
            for lock in list(me.held):
                lock.owner = None
                lock.depth = 0
                me.held.remove(lock)
            self._term_msg[me.tid] = self._snd(me.tid)
            if self._observing:
                self.observer.on_event(
                    ThreadEndEvent(
                        step=self._ops,
                        tid=me.tid,
                        error=(
                            ErrorInfo.from_exception(me.error)
                            if me.error is not None
                            else None
                        ),
                    )
                )
            self._current = None
            if not self._torn_down:
                self._dispatch()

    # --- scheduling core ------------------------------------------------ #

    def enabled_tids(self) -> list[int]:
        """Threads whose pending op could execute right now."""
        enabled = []
        for tid, nthread in sorted(self._threads.items()):
            if nthread.state != "READY" or nthread.pending is None:
                continue
            if self._is_executable(nthread, nthread.pending):
                enabled.append(tid)
        return enabled

    def next_op(self, tid: int) -> _PendingOp | None:
        return self._threads[tid].pending

    def next_stmt(self, tid: int) -> Statement | None:
        pending = self._threads[tid].pending
        return pending.stmt if pending is not None else None

    def _is_executable(self, nthread: _NThread, op: _PendingOp) -> bool:
        if op.kind in ("lock", "reacquire"):
            return op.lock.owner is None or op.lock.owner == nthread.tid
        if op.kind == "join":
            return self._threads[op.target].state == "DONE"
        return True

    def _dispatch(self) -> None:
        """Pick the next thread (scheduler decides), execute its op, grant it
        the token.  Runs in whatever thread just parked/finished."""
        while True:
            if self._torn_down:
                return
            enabled = self.enabled_tids()
            alive = [t for t in self._threads.values() if t.state != "DONE"]
            if not alive:
                return
            if not enabled:
                # Every live thread is blocked: a real deadlock.
                self.result.deadlock = True
                self._teardown()
                return
            if self._ops >= self.max_ops:
                self.result.truncated = True
                self._teardown()
                return
            chosen = self.scheduler.choose(enabled)
            if chosen is None:
                # The scheduler postponed or released threads and wants the
                # enabled set re-evaluated.
                continue
            nthread = self._threads[chosen]
            op = nthread.pending
            try:
                self._execute(nthread, op)
            except (EngineError, IllegalMonitorState) as error:
                op.error = error  # delivered in the owner's checkpoint
            if nthread.state == "WAITING":
                continue  # it parked itself; pick somebody else
            self._grant(chosen)
            return

    def _grant(self, tid: int) -> None:
        self._current = tid
        self._cond.notify_all()

    def _teardown(self) -> None:
        self._torn_down = True
        for nthread in self._threads.values():
            if nthread.state != "DONE":
                nthread.aborted = True
        self._current = None
        self._cond.notify_all()

    # --- op execution (token-holder only, under the condition) ---------- #

    def _execute(self, nthread: _NThread, op: _PendingOp) -> None:
        self._ops += 1
        kind = op.kind
        if kind == "read":
            op.value = op.var.value
            self._emit_mem(nthread, op, Access.READ)
        elif kind == "write":
            op.var.value = op.value
            self._emit_mem(nthread, op, Access.WRITE)
        elif kind in ("lock", "reacquire"):
            lock = op.lock
            if lock.owner is not None and lock.owner != nthread.tid:
                raise EngineError("scheduler granted an unacquirable lock")
            outermost = lock.owner is None
            lock.owner = nthread.tid
            lock.depth += op.reacquire_depth if kind == "reacquire" else 1
            if outermost:
                nthread.held.append(lock)
                if self._observing:
                    self.observer.on_event(
                        AcquireEvent(
                            step=self._ops, tid=nthread.tid, lock=lock.id,
                            stmt=op.stmt,
                        )
                    )
            if kind == "reacquire" and nthread.notified_msg is not None:
                if self._observing:
                    self.observer.on_event(
                        RcvEvent(
                            step=self._ops, tid=nthread.tid,
                            msg_id=nthread.notified_msg,
                        )
                    )
                nthread.notified_msg = None
        elif kind == "unlock":
            lock = op.lock
            if lock.owner != nthread.tid:
                raise IllegalMonitorState(
                    f"{nthread.name} released {lock.id} it does not hold"
                )
            lock.depth -= 1
            if lock.depth == 0:
                lock.owner = None
                nthread.held.remove(lock)
                if self._observing:
                    self.observer.on_event(
                        ReleaseEvent(
                            step=self._ops, tid=nthread.tid, lock=lock.id,
                            stmt=op.stmt,
                        )
                    )
        elif kind == "wait":
            lock = op.lock
            if lock.owner != nthread.tid:
                raise IllegalMonitorState(
                    f"{nthread.name} waits on {lock.id} it does not hold"
                )
            nthread.wait_depth = lock.depth
            lock.owner = None
            lock.depth = 0
            nthread.held.remove(lock)
            if self._observing:
                self.observer.on_event(
                    ReleaseEvent(
                        step=self._ops, tid=nthread.tid, lock=lock.id, stmt=op.stmt
                    )
                )
            lock.wait_set.append(nthread.tid)
            nthread.state = "WAITING"
            nthread.waiting_on = lock
        elif kind in ("notify", "notify_all"):
            lock = op.lock
            if lock.owner != nthread.tid:
                raise IllegalMonitorState(
                    f"{nthread.name} notifies {lock.id} it does not hold"
                )
            if lock.wait_set:
                if kind == "notify":
                    index = self.rng.randrange(len(lock.wait_set))
                    woken = [lock.wait_set.pop(index)]
                else:
                    woken, lock.wait_set[:] = list(lock.wait_set), []
                msg = self._snd(nthread.tid)
                for tid in woken:
                    waiter = self._threads[tid]
                    waiter.state = "READY"
                    waiter.waiting_on = None
                    waiter.notified_msg = msg
                    waiter.pending = _PendingOp(
                        kind="reacquire",
                        stmt=waiter.pending.stmt,
                        lock=lock,
                        reacquire_depth=waiter.wait_depth,
                    )
        elif kind == "join":
            msg = self._term_msg.get(op.target)
            if msg is not None and self._observing:
                self.observer.on_event(
                    RcvEvent(step=self._ops, tid=nthread.tid, msg_id=msg)
                )
        elif kind == "yield":
            pass
        else:  # pragma: no cover - defensive
            raise EngineError(f"unknown native op kind {kind!r}")

    def _emit_mem(self, nthread: _NThread, op: _PendingOp, access: Access) -> None:
        if not self._observing or not self.observer.wants_mem_events:
            return
        self.observer.on_event(
            MemEvent(
                step=self._ops,
                tid=nthread.tid,
                stmt=op.stmt,
                location=op.var.loc,
                access=access,
                locks_held=frozenset(lock.id for lock in nthread.held),
            )
        )
