"""Race-directed testing of *real* Python threads (the settrace-era backend).

The generator engine is the reference substrate; this package applies the
same two-phase pipeline to ordinary ``threading``-style code instrumented
through a :class:`NativeRuntime` handle.  The detectors are shared — a
native run emits the same event objects — and the schedulers mirror
:mod:`repro.core`.

Helpers:

* :func:`detect_races_native` — Phase 1 over native runs;
* :func:`fuzz_native` — Phase 2: one race-directed native run per seed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

from repro.detectors import HybridRaceDetector, RaceReport
from repro.runtime.statement import StatementPair

from .fuzzing import (
    NativeScheduler,
    RaceDirectedNativeScheduler,
    RandomNativeScheduler,
)
from .runtime import (
    ExecutionAborted,
    NativeHandle,
    NativeLock,
    NativeResult,
    NativeRuntime,
    NativeVar,
)

#: a "native program" is a callable taking the runtime: program(rt) builds
#: the world and runs the main thread's body.
NativeProgram = Callable[[NativeRuntime], None]


def detect_races_native(
    program: NativeProgram,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_ops: int = 200_000,
) -> RaceReport:
    """Phase 1 on the native backend: hybrid detection over random runs."""
    merged: RaceReport | None = None
    for seed in seeds:
        detector = HybridRaceDetector()
        runtime = NativeRuntime(seed=seed, observers=(detector,), max_ops=max_ops)
        runtime.run(program, runtime)
        if merged is None:
            merged = detector.report
        else:
            merged.merge(detector.report)
    assert merged is not None, "detect_races_native needs at least one seed"
    merged.program = getattr(program, "__name__", "native-program")
    return merged


def fuzz_native(
    program: NativeProgram,
    pair: StatementPair,
    *,
    seeds: Iterable[int] = range(50),
    patience: int = 400,
    max_ops: int = 200_000,
) -> list[NativeResult]:
    """Phase 2 on the native backend: one directed run per seed."""
    results = []
    for seed in seeds:
        scheduler = RaceDirectedNativeScheduler(pair, patience=patience)
        runtime = NativeRuntime(seed=seed, scheduler=scheduler, max_ops=max_ops)
        results.append(runtime.run(program, runtime))
    return results


__all__ = [
    "NativeRuntime",
    "NativeVar",
    "NativeLock",
    "NativeHandle",
    "NativeResult",
    "NativeProgram",
    "NativeScheduler",
    "RandomNativeScheduler",
    "RaceDirectedNativeScheduler",
    "ExecutionAborted",
    "detect_races_native",
    "fuzz_native",
]
