"""RaceFuzzer: race-directed random testing of concurrent programs.

A full reproduction of Koushik Sen's PLDI 2008 paper, built on a
deterministic concurrent abstract machine:

* :mod:`repro.runtime` — the abstract machine (threads as generators,
  Java-semantics monitors, seed-owned scheduling non-determinism);
* :mod:`repro.detectors` — Phase 1: hybrid / happens-before / lockset
  dynamic race detection;
* :mod:`repro.core` — Phase 2: the RaceFuzzer active random scheduler
  (Algorithms 1-2), the two-phase pipeline, seed replay, and the deadlock-
  and atomicity-directed generalizations;
* :mod:`repro.jdk` — a mini JDK collections library containing the real
  bugs of Section 5.3;
* :mod:`repro.workloads` — one benchmark per Table 1 row;
* :mod:`repro.harness` — regenerates every table and figure;
* :mod:`repro.obs` — campaign telemetry: the metrics registry, phase
  spans, live progress, and exportable run reports.

Quickstart::

    from repro import Program, race_directed_test
    report = race_directed_test(my_program, trials=100)
    print(report)   # real races, harmful races, per-pair probabilities
"""

from .core import (
    AtomicityFuzzer,
    AtomicRegion,
    CampaignReport,
    DeadlockFuzzer,
    DefaultScheduler,
    FuzzResult,
    PairVerdict,
    ParallelCampaign,
    RaceFuzzer,
    RandomScheduler,
    baseline_exceptions,
    detect_lock_order_inversions,
    detect_races,
    fuzz_pair,
    fuzz_races,
    race_directed_test,
    replay_race,
    replays_identically,
)
from .detectors import (
    EraserLocksetDetector,
    HappensBeforeDetector,
    HybridRaceDetector,
    RaceReport,
    VectorClock,
    make_detector,
)
from .obs import MetricsRegistry, MetricsSnapshot, collecting
from .runtime import (
    AtomicCounter,
    Barrier,
    BlockingQueue,
    CountDownLatch,
    Execution,
    ExecutionResult,
    Lock,
    Program,
    SharedArray,
    SharedCells,
    SharedObject,
    SharedVar,
    Statement,
    StatementPair,
    join_all,
    ops,
    program,
    spawn_all,
    synchronized,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # runtime
    "ops",
    "Program",
    "program",
    "Execution",
    "ExecutionResult",
    "Statement",
    "StatementPair",
    "SharedVar",
    "SharedCells",
    "SharedArray",
    "SharedObject",
    "Lock",
    "synchronized",
    "Barrier",
    "CountDownLatch",
    "BlockingQueue",
    "AtomicCounter",
    "spawn_all",
    "join_all",
    # detectors
    "HybridRaceDetector",
    "HappensBeforeDetector",
    "EraserLocksetDetector",
    "RaceReport",
    "VectorClock",
    "make_detector",
    # core
    "RaceFuzzer",
    "ParallelCampaign",
    "fuzz_pair",
    "FuzzResult",
    "race_directed_test",
    "detect_races",
    "fuzz_races",
    "baseline_exceptions",
    "CampaignReport",
    "PairVerdict",
    "replay_race",
    "replays_identically",
    "RandomScheduler",
    "DefaultScheduler",
    "DeadlockFuzzer",
    "detect_lock_order_inversions",
    "AtomicityFuzzer",
    "AtomicRegion",
    # observability
    "MetricsRegistry",
    "MetricsSnapshot",
    "collecting",
]
