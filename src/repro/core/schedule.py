"""Campaign trial allocation policies: who gets fuzzed next, and how much.

Phase 2 of the paper spends a *fixed* budget — "we ran RaceFuzzer 100
times for each racing pair of statements" (Section 5.2) — which is what
makes large campaigns intractable: most candidate pairs are hopeless
while the racing ones confirm within a handful of trials (Table 1's
per-pair probabilities are mostly 0.0 or near 1.0).  This module carves
the allocation decision out of the drivers into a policy object so the
protocol is chosen once, at the top, instead of being hard-wired through
every layer:

* :class:`FixedSchedule` — the paper's protocol, byte-identical to the
  pre-policy drivers for every workload, serial and parallel.  Table 1
  reproduction pins this.
* :class:`AdaptiveSchedule` — an online allocator in the bandit style:
  each pair carries a beta-Bernoulli posterior over its race-creation
  probability, rounds of chunks are allocated by Thompson sampling
  (deterministic given ``seed``), pairs whose posterior upper bound falls
  below a threshold are early-stopped, and a *global* trial/wall-clock
  budget replaces per-pair counts.

The executor contract (both the serial loop in
:mod:`repro.core.driver` and the supervised engine in
:mod:`repro.core.parallel` honour it):

1. ``bind(pairs, base_seed=..., chunk_size=...)`` once per campaign;
2. repeatedly take :meth:`~CampaignSchedule.next_batch` and run every
   :class:`TrialChunk` in it (order inside a batch is the submission
   order — deterministic);
3. feed each chunk's *delta* verdict back through
   :meth:`~CampaignSchedule.record` (or :meth:`record_failure` /
   :meth:`cancel` for chunks that never produced one);
4. stop when ``next_batch`` returns an empty list.

Posterior updates are pure count accumulations — commutative and
associative — so feedback may arrive in completion order (it does, via
the supervisor's ``on_settle`` hook) while allocation decisions read the
posterior only at batch boundaries.  That is what makes ``jobs=N``
adaptive campaigns identical to serial ones for the same seed.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from random import Random
from typing import Sequence

from repro.obs import maybe_registry
from repro.obs.timeline import maybe_timeline, pair_label
from repro.runtime.statement import StatementPair


@dataclass(frozen=True)
class TrialChunk:
    """One schedulable unit: ``count`` consecutive seeded trials of a pair.

    Pairs are addressed by index into the bound pair list so a chunk is a
    tiny value object that crosses layers (and process boundaries, inside
    a :class:`~repro.core.parallel.FuzzTask`) without dragging statement
    objects along.
    """

    pair_index: int
    seed_start: int
    count: int


def chunk_spans(start: int, count: int, chunk_size: int) -> list[tuple[int, int]]:
    """Split ``count`` consecutive seeds from ``start`` into chunk spans.

    The range-aware core of :func:`repro.core.parallel.chunk_ranges`; the
    adaptive schedule uses it to cut an incremental allocation at an
    arbitrary seed cursor into worker-sized pieces.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (s, min(chunk_size, start + count - s))
        for s in range(start, start + count, chunk_size)
    ]


def beta_mean(alpha: float, beta: float) -> float:
    """Posterior mean of a Beta(alpha, beta) distribution."""
    return alpha / (alpha + beta)


def beta_upper_bound(alpha: float, beta: float, z: float = 2.0) -> float:
    """An upper credible bound on the success probability.

    Normal approximation (mean + z standard deviations) of the
    Beta(alpha, beta) posterior, clamped to [0, 1].  For the
    zero-successes case that drives early stopping this tracks the exact
    quantile closely enough, and it is a pure function — no SciPy.
    """
    n = alpha + beta
    mean = alpha / n
    var = (alpha * beta) / (n * n * (n + 1.0))
    return min(1.0, mean + z * math.sqrt(var))


class CampaignSchedule:
    """Base policy: the fixed protocol's bookkeeping, overridable planning.

    Subclasses implement :meth:`plan_round`; the base class owns the
    executor-facing surface (binding, budget/round accounting, metrics,
    the allocation log used by determinism tests).
    """

    #: the ``--schedule`` spelling of this policy.
    name = "base"

    def __init__(self) -> None:
        self.pairs: list[StatementPair] = []
        self.base_seed = 0
        self.chunk_size = 25
        self.rounds = 0
        self.trials_allocated = 0
        #: every allocation ever issued, as (pair_index, seed_start, count)
        #: — the determinism witness asserted by tests/core/test_schedule.py.
        self.allocation_log: list[tuple[int, int, int]] = []
        #: per-pair Phase-1 ``schedulable`` grade (None until bind).
        self.grades: list[bool | None] = []
        #: per-pair next unused seed (parallel fixed chunking and adaptive
        #: incremental allocation both consume seeds from these cursors).
        self._cursors: list[int] = []
        self._bound = False

    # -- executor surface ---------------------------------------------- #

    def bind(
        self,
        pairs: Sequence[StatementPair],
        *,
        base_seed: int = 0,
        chunk_size: int = 25,
        grades: Sequence[bool | None] | None = None,
    ) -> None:
        """Attach the campaign's pair list; must precede ``next_batch``.

        ``grades`` optionally aligns a Phase-1 ``schedulable`` grade with
        each pair (``True`` = graded schedulable, ``False`` = speculative,
        ``None`` = ungraded).  The base policy only records them;
        :class:`AdaptiveSchedule` boosts graded-schedulable priors.
        """
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.pairs = list(pairs)
        self.base_seed = base_seed
        self.chunk_size = chunk_size
        if grades is None:
            self.grades: list[bool | None] = [None] * len(self.pairs)
        else:
            self.grades = list(grades)
            if len(self.grades) != len(self.pairs):
                raise ValueError(
                    f"grades length {len(self.grades)} != "
                    f"pairs length {len(self.pairs)}"
                )
        self._cursors = [base_seed] * len(self.pairs)
        self._bound = True

    def next_batch(self) -> list[TrialChunk]:
        """The next round of chunks to execute ([] = campaign done)."""
        assert self._bound, "bind() must be called before next_batch()"
        tl = maybe_timeline()
        if tl is not None and self.rounds == 0:
            self._emit_bind_events(tl)
        batch = self.plan_round()
        if not batch:
            return []
        self.rounds += 1
        for chunk in batch:
            self.trials_allocated += chunk.count
            self.allocation_log.append(
                (chunk.pair_index, chunk.seed_start, chunk.count)
            )
        m = maybe_registry()
        if m is not None:
            m.inc("schedule.rounds")
            m.inc("schedule.trials_allocated", sum(c.count for c in batch))
        if tl is not None:
            attrs = {
                "chunks": len(batch),
                "trials": sum(c.count for c in batch),
                "allocated": [
                    [c.pair_index, c.seed_start, c.count] for c in batch
                ],
            }
            attrs.update(self._round_event_attrs())
            tl.emit("schedule.round", (self.rounds - 1,), attrs)
        return batch

    def record(self, chunk: TrialChunk, verdict) -> None:
        """Feed one executed chunk's delta verdict back into the policy.

        ``verdict`` is the :class:`~repro.core.results.PairVerdict` for
        *this chunk alone* (not the pair's running aggregate).  Updates
        must stay commutative: parallel executors deliver them in
        completion order.
        """

    def record_failure(self, chunk: TrialChunk) -> None:
        """A chunk was quarantined: its trials ran (or tried to) but
        produced no verdict.  Budget stays spent; the posterior is not
        touched."""

    def cancel(self, chunk: TrialChunk) -> None:
        """A chunk was cancelled before running (``stop_on_confirm``)."""

    def planned_trials(self) -> int:
        """Trials the policy still expects to issue beyond those already
        allocated (best estimate).

        Drives the ``--progress`` ETA: remaining *scheduled* work, not a
        static planned total, so early exit shrinks the estimate.
        """
        return 0

    def planned_chunks(self) -> int:
        """`planned_trials` in chunk units (the executors' work unit)."""
        return -(-self.planned_trials() // self.chunk_size)

    # -- policy hook ---------------------------------------------------- #

    def plan_round(self) -> list[TrialChunk]:
        raise NotImplementedError

    # -- helpers for subclasses ----------------------------------------- #

    def _emit_bind_events(self, tl) -> None:
        """Timeline: one ``schedule.bind`` summary plus a ``pair.bind``
        per pair, emitted lazily before the first planned round (so
        subclass state — posteriors, finalized budgets — exists)."""
        tl.emit("schedule.bind", (), self._bind_event_attrs())
        for index in range(len(self.pairs)):
            tl.emit("pair.bind", (index,), self._pair_bind_attrs(index))

    def _bind_event_attrs(self) -> dict:
        return {
            "policy": self.name,
            "pairs": len(self.pairs),
            "chunk_size": self.chunk_size,
            "base_seed": self.base_seed,
        }

    def _pair_bind_attrs(self, index: int) -> dict:
        attrs = {"pair": pair_label(self.pairs[index])}
        grade = self.grades[index] if index < len(self.grades) else None
        if grade is not None:
            attrs["grade"] = "schedulable" if grade else "speculative"
        return attrs

    def _round_event_attrs(self) -> dict:
        """Extra deterministic attrs for ``schedule.round`` events."""
        return {}

    def take_seeds(self, pair_index: int, count: int) -> list[TrialChunk]:
        """Consume ``count`` seeds from a pair's cursor as sized chunks."""
        start = self._cursors[pair_index]
        self._cursors[pair_index] = start + count
        return [
            TrialChunk(pair_index=pair_index, seed_start=s, count=c)
            for s, c in chunk_spans(start, count, self.chunk_size)
        ]

    def summary(self) -> dict:
        """Policy state worth surfacing in run reports / BENCH records."""
        return {
            "schedule": self.name,
            "rounds": self.rounds,
            "trials_allocated": self.trials_allocated,
        }


class FixedSchedule(CampaignSchedule):
    """The paper's protocol: every pair gets exactly ``trials`` trials.

    One batch containing every chunk, pair-major with ascending seed
    ranges — exactly the task list (parallel) and trial order (serial)
    the pre-policy drivers produced, so campaign output is ``==``-
    identical to theirs.  Table 1 reproduction pins this schedule.
    """

    name = "fixed"

    def __init__(self, trials: int = 100) -> None:
        super().__init__()
        if trials < 0:
            raise ValueError(f"trials must be >= 0, got {trials}")
        self.trials = trials

    def plan_round(self) -> list[TrialChunk]:
        if self.rounds > 0:
            return []
        batch: list[TrialChunk] = []
        for index in range(len(self.pairs)):
            batch.extend(self.take_seeds(index, self.trials))
        return batch

    def planned_trials(self) -> int:
        if self.rounds > 0:
            return 0
        return self.trials * len(self.pairs)


@dataclass
class _PairPosterior:
    """Beta-Bernoulli belief about one pair's race-creation probability."""

    alpha: float
    beta: float
    trials: int = 0
    created: int = 0
    issued: int = 0
    stopped: bool = False

    @property
    def confirmed(self) -> bool:
        return self.created > 0

    def mean(self) -> float:
        return beta_mean(self.alpha, self.beta)

    def upper(self, z: float) -> float:
        return beta_upper_bound(self.alpha, self.beta, z)


class AdaptiveSchedule(CampaignSchedule):
    """Bandit allocation: spend the budget where expected yield is.

    Each round draws one Thompson sample per live pair from its
    Beta(alpha, beta) posterior — using ``Random(f"{seed}:{round}")``, so
    the draw sequence is a pure function of the constructor seed and the
    (deterministic) round number — and allocates one ``chunk_size`` chunk
    to each of the ``round_width`` highest-sampled pairs.  A pair leaves
    the live set when it is *confirmed* (one created race proves it real;
    further trials add nothing to the confirmed-race set) or
    *early-stopped* (``min_trials`` trials without a single creation and
    a posterior upper bound below ``stop_threshold``).  The campaign ends
    when the live set empties, the global ``trial_budget`` is spent, or
    ``time_budget_s`` of wall-clock has elapsed (the one deliberately
    nondeterministic stop — equivalence tests leave it off).
    """

    name = "adaptive"

    def __init__(
        self,
        *,
        trial_budget: int | None = None,
        time_budget_s: float | None = None,
        seed: int = 0,
        round_width: int = 8,
        min_trials: int = 25,
        stop_threshold: float = 0.1,
        stop_z: float = 2.0,
        prior: tuple[float, float] = (1.0, 1.0),
        max_trials_per_pair: int | None = None,
        grade_boost: float = 1.0,
    ) -> None:
        super().__init__()
        if trial_budget is not None and trial_budget < 1:
            raise ValueError(f"trial_budget must be >= 1, got {trial_budget}")
        if time_budget_s is not None and time_budget_s <= 0:
            raise ValueError(
                f"time_budget_s must be positive, got {time_budget_s}"
            )
        if round_width < 1:
            raise ValueError(f"round_width must be >= 1, got {round_width}")
        if not 0.0 < stop_threshold < 1.0:
            raise ValueError(
                f"stop_threshold must be in (0, 1), got {stop_threshold}"
            )
        if prior[0] <= 0 or prior[1] <= 0:
            raise ValueError(f"prior pseudo-counts must be positive, got {prior}")
        if grade_boost < 0:
            raise ValueError(f"grade_boost must be >= 0, got {grade_boost}")
        self.trial_budget = trial_budget
        self.time_budget_s = time_budget_s
        self.seed = seed
        self.round_width = round_width
        self.min_trials = min_trials
        self.stop_threshold = stop_threshold
        self.stop_z = stop_z
        self.prior = prior
        self.max_trials_per_pair = max_trials_per_pair
        self.grade_boost = grade_boost
        self.early_stopped = 0
        self.confirmed = 0
        self.budget_exhausted = False
        self.time_exhausted = False
        self._posteriors: list[_PairPosterior] = []
        self._started: float | None = None
        self._last_draws: list[list] = []

    # -- executor surface ----------------------------------------------- #

    def bind(self, pairs, *, base_seed=0, chunk_size=25, grades=None) -> None:
        super().bind(
            pairs, base_seed=base_seed, chunk_size=chunk_size, grades=grades
        )
        # A Phase-1 "schedulable" grade is strong evidence the pair can
        # actually be brought adjacent, so it starts with extra prior
        # pseudo-successes and wins early Thompson rounds.  Deterministic
        # and off unless grades were supplied (all-None adds nothing).
        self._posteriors = [
            _PairPosterior(
                alpha=self.prior[0]
                + (self.grade_boost if self.grades[i] else 0.0),
                beta=self.prior[1],
            )
            for i in range(len(self.pairs))
        ]
        self._started = None

    def record(self, chunk: TrialChunk, verdict) -> None:
        post = self._posteriors[chunk.pair_index]
        was_confirmed = post.confirmed
        post.trials += verdict.trials
        post.created += verdict.times_created
        post.alpha += verdict.times_created
        post.beta += verdict.trials - verdict.times_created
        tl = maybe_timeline()
        if tl is not None:
            # Deltas, not running totals: feedback arrives in completion
            # order under --jobs N, so the event must not depend on what
            # settled before it.  Trajectories are rebuilt by seed order.
            tl.emit(
                "schedule.posterior",
                (chunk.pair_index, chunk.seed_start),
                {"trials": verdict.trials, "created": verdict.times_created},
            )
        if post.confirmed and not was_confirmed:
            self.confirmed += 1
            m = maybe_registry()
            if m is not None:
                m.inc("schedule.pairs_confirmed")
            if tl is not None:
                tl.emit(
                    "schedule.stop",
                    (chunk.pair_index,),
                    {"reason": "confirmed"},
                )

    def cancel(self, chunk: TrialChunk) -> None:
        # Refund the seeds so budget accounting reflects work not done.
        # Only reachable under stop_on_confirm, whose trial counts are
        # documented as timing-dependent anyway.
        self._posteriors[chunk.pair_index].issued -= chunk.count
        self.trials_allocated -= chunk.count

    def planned_trials(self) -> int:
        live = [
            i
            for i, p in enumerate(self._posteriors)
            if not p.stopped and not p.confirmed
        ]
        if not live or self.time_exhausted or self.budget_exhausted:
            return 0
        # Estimate one more round over the live set (bounded by the
        # budget) — a deliberately conservative floor that shrinks as
        # pairs resolve, which is all the ETA needs.
        planned = min(len(live), self.round_width) * self.chunk_size
        if self.trial_budget is not None:
            planned = min(
                planned, max(0, self.trial_budget - self.trials_allocated)
            )
        return planned

    # -- the policy ------------------------------------------------------ #

    def _out_of_time(self) -> bool:
        if self.time_budget_s is None:
            return False
        if self._started is None:
            self._started = time.monotonic()
            return False
        if time.monotonic() - self._started >= self.time_budget_s:
            if not self.time_exhausted:
                self.time_exhausted = True
                m = maybe_registry()
                if m is not None:
                    m.inc("schedule.time_budget_exhausted")
            return True
        return False

    def _retire_hopeless(self) -> None:
        for index, post in enumerate(self._posteriors):
            if post.stopped or post.confirmed:
                continue
            if post.trials < self.min_trials:
                continue
            if post.created == 0 and post.upper(self.stop_z) < self.stop_threshold:
                post.stopped = True
                self.early_stopped += 1
                m = maybe_registry()
                if m is not None:
                    m.inc("schedule.pairs_early_stopped")
                tl = maybe_timeline()
                if tl is not None:
                    # Retirement reads only the full posterior at a round
                    # boundary, so the decision is settle-order-free.
                    tl.emit(
                        "schedule.stop",
                        (index,),
                        {"reason": "early_stopped"},
                    )

    def _live_indices(self) -> list[int]:
        live = []
        for index, post in enumerate(self._posteriors):
            if post.stopped or post.confirmed:
                continue
            if (
                self.max_trials_per_pair is not None
                and post.issued >= self.max_trials_per_pair
            ):
                continue
            live.append(index)
        return live

    def plan_round(self) -> list[TrialChunk]:
        if self._out_of_time():
            return []
        budget_left = (
            None
            if self.trial_budget is None
            else self.trial_budget - self.trials_allocated
        )
        if budget_left is not None and budget_left <= 0:
            self.budget_exhausted = True
            return []
        self._retire_hopeless()
        live = self._live_indices()
        if not live:
            return []
        # One Thompson draw per live pair, in pair order, from an RNG
        # keyed on (seed, round): reproducible regardless of how many
        # pairs were live in earlier rounds.
        rng = Random(f"{self.seed}:{self.rounds}")
        sampled = [(rng.betavariate(
            self._posteriors[i].alpha, self._posteriors[i].beta
        ), i) for i in live]
        # The draws are pure functions of (seed, round, posterior), so
        # they are safe inside deterministic timeline events.
        self._last_draws = [
            [i, round(sample, 6)] for sample, i in sampled
        ]
        # Highest sampled win the round; ties break on pair order.
        sampled.sort(key=lambda pair: (-pair[0], pair[1]))
        winners = [i for _, i in sampled[: self.round_width]]
        winners.sort()  # issue chunks in pair order within the round
        batch: list[TrialChunk] = []
        for index in winners:
            grant = self.chunk_size
            if self.max_trials_per_pair is not None:
                grant = min(
                    grant,
                    self.max_trials_per_pair - self._posteriors[index].issued,
                )
            if budget_left is not None:
                grant = min(grant, budget_left)
            if grant <= 0:
                continue
            for chunk in self.take_seeds(index, grant):
                batch.append(chunk)
                self._posteriors[index].issued += chunk.count
            if budget_left is not None:
                budget_left -= grant
        if budget_left is not None and budget_left <= 0:
            self.budget_exhausted = True
        m = maybe_registry()
        if m is not None and batch:
            means = [p.mean() for p in self._posteriors]
            m.gauge_max("schedule.posterior_mean_max", max(means))
            m.gauge_max("schedule.budget_spent", float(self.trials_allocated))
        return batch

    def _bind_event_attrs(self) -> dict:
        attrs = super()._bind_event_attrs()
        attrs.update(
            {
                "round_width": self.round_width,
                "grade_boost": self.grade_boost,
            }
        )
        if self.trial_budget is not None:
            attrs["trial_budget"] = self.trial_budget
        return attrs

    def _pair_bind_attrs(self, index: int) -> dict:
        attrs = super()._pair_bind_attrs(index)
        post = self._posteriors[index]
        attrs["alpha"] = post.alpha
        attrs["beta"] = post.beta
        return attrs

    def _round_event_attrs(self) -> dict:
        return {"draws": self._last_draws}

    def summary(self) -> dict:
        base = super().summary()
        base.update(
            {
                "pairs": len(self.pairs),
                "confirmed": self.confirmed,
                "early_stopped": self.early_stopped,
                "budget_exhausted": self.budget_exhausted,
                "time_exhausted": self.time_exhausted,
                "posterior_means": [
                    round(p.mean(), 6) for p in self._posteriors
                ],
            }
        )
        return base


#: the ``--schedule`` registry.
SCHEDULES = ("fixed", "adaptive")


def make_schedule(
    spec: str | CampaignSchedule | None,
    *,
    trials: int = 100,
    trial_budget: int | None = None,
    time_budget_s: float | None = None,
    seed: int = 0,
) -> CampaignSchedule:
    """Resolve a ``--schedule`` spelling (or pass a policy through).

    ``None`` and ``"fixed"`` give the paper's protocol.  ``"adaptive"``
    defaults its global trial budget to ``trials`` per pair — the same
    total spend as fixed, allocated by expected yield — unless an
    explicit ``trial_budget`` overrides it; pair count isn't known here,
    so that default is finalized at ``bind`` time via
    :attr:`AdaptiveSchedule.trial_budget` staying ``None`` until then.
    """
    if isinstance(spec, CampaignSchedule):
        return spec
    if spec is None or spec == "fixed":
        return FixedSchedule(trials=trials)
    if spec == "adaptive":
        schedule = _AdaptiveWithDefaultBudget(
            trial_budget=trial_budget,
            time_budget_s=time_budget_s,
            seed=seed,
        )
        schedule.default_trials_per_pair = (
            trials if trial_budget is None else None
        )
        return schedule
    raise ValueError(
        f"unknown schedule {spec!r}; expected one of {', '.join(SCHEDULES)}"
    )


class _AdaptiveWithDefaultBudget(AdaptiveSchedule):
    """Adaptive schedule whose default budget is ``trials x len(pairs)``.

    The CLI knows ``--trials`` but not the pair count; this subclass
    finalizes the budget when the pair list arrives.
    """

    default_trials_per_pair: int | None = None

    def bind(self, pairs, *, base_seed=0, chunk_size=25, grades=None) -> None:
        super().bind(
            pairs, base_seed=base_seed, chunk_size=chunk_size, grades=grades
        )
        if self.trial_budget is None and self.default_trials_per_pair is not None:
            self.trial_budget = max(1, self.default_trials_per_pair * len(self.pairs))


__all__ = [
    "TrialChunk",
    "CampaignSchedule",
    "FixedSchedule",
    "AdaptiveSchedule",
    "SCHEDULES",
    "make_schedule",
    "chunk_spans",
    "beta_mean",
    "beta_upper_bound",
]
