"""Schedule-coverage metrics: how much of the interleaving space did a
testing strategy actually explore?

The Related-Work argument for RAPOS over a naive random walk is not bug
counts but *coverage of partial orders*: a uniform walk over
interleavings oversamples schedules that have many equivalent
linearizations.  This module makes that measurable:

* :func:`conflict_signature` — a canonical fingerprint of an execution's
  partial order: for every memory location, the sequence of conflicting
  accesses (thread, statement, kind) in execution order, ignoring the
  interleaving of *independent* operations.  Two executions with equal
  signatures are equivalent up to commuting independent ops — the
  classic Mazurkiewicz-trace view.
* :func:`measure_coverage` — run a strategy over N seeds and count the
  distinct signatures it produced.

``benchmarks/bench_coverage.py`` uses this to regenerate the comparison:
the passive strategies (uniform walk, RAPOS) spread their run budget over
dozens of partial orders, while RaceFuzzer intentionally collapses
coverage onto the error-prone corner of the space — high diversity is
exactly what the paper argues does NOT find rare bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.runtime.events import MemEvent
from repro.runtime.interpreter import Execution
from repro.runtime.observer import EventTrace
from repro.runtime.program import Program

from .schedulers import RandomScheduler


def conflict_signature(events) -> tuple:
    """Canonical partial-order fingerprint of one execution's trace.

    Per location, record the sequence of accesses that *conflict* with
    their predecessor context — concretely: every write, plus every read
    together with the index of the last preceding write (reads between the
    same writes commute, so they are recorded as an unordered set).
    Location uids differ across executions, so locations are keyed by
    their first-access order and display name instead.
    """
    per_location: dict = {}
    for event in events:
        if not isinstance(event, MemEvent):
            continue
        # Key locations by display name: uids are per-execution and
        # first-access order is itself schedule-dependent.  Same-named
        # distinct locations merge, which coarsens but never invents
        # distinctions — acceptable for a coverage metric.
        key = event.location.describe()
        writes, pending_reads = per_location.setdefault(key, ([], set()))
        actor = (event.tid, event.stmt.site)
        if event.is_write:
            # Seal the reads since the previous write (order-free).
            writes.append((frozenset(pending_reads), actor))
            pending_reads.clear()
        else:
            pending_reads.add(actor)
    signature = []
    for key in sorted(per_location):
        writes, trailing_reads = per_location[key]
        signature.append((key, tuple(writes), frozenset(trailing_reads)))
    return tuple(signature)


@dataclass
class CoverageReport:
    """Distinct partial orders observed over a batch of runs."""

    strategy: str
    runs: int
    distinct_signatures: int
    crashing_runs: int
    #: how often each signature was produced (frequencies sum to ``runs``)
    signature_counts: dict = None

    @property
    def diversity(self) -> float:
        """Distinct partial orders per run (1.0 = every run new)."""
        if self.runs == 0:
            return 0.0
        return self.distinct_signatures / self.runs

    @property
    def minority_share(self) -> float:
        """Frequency of the rarest observed partial order.

        The metric that shows RAPOS's point: a uniform interleaving walk
        oversamples partial orders with many linearizations, starving the
        rare ones; partial-order sampling evens the shares out.
        """
        if not self.signature_counts:
            return 0.0
        return min(self.signature_counts.values()) / self.runs

    def __str__(self) -> str:
        return (
            f"{self.strategy}: {self.distinct_signatures} distinct partial "
            f"orders in {self.runs} runs (diversity {self.diversity:.2f}, "
            f"{self.crashing_runs} crashing)"
        )


def measure_coverage(
    program: Program,
    *,
    strategy: str = "random",
    seeds: Sequence[int] = range(50),
    max_steps: int = 200_000,
    run_once: Callable | None = None,
) -> CoverageReport:
    """Count distinct conflict signatures over seeded runs of one strategy.

    ``strategy`` may be ``"random"``, ``"rapos"``, or ``"custom"`` with a
    ``run_once(program, seed, observers) -> result`` callable.
    """
    from collections import Counter

    signatures: Counter = Counter()
    crashes = 0
    for seed in seeds:
        trace = EventTrace()
        if run_once is not None:
            result = run_once(program, seed, [trace])
        elif strategy == "rapos":
            result = _rapos_traced(program, seed, trace, max_steps)
        elif strategy == "random":
            result = Execution(
                program, seed=seed, observers=[trace], max_steps=max_steps
            ).run(RandomScheduler(preemption="every"))
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        signatures[conflict_signature(trace.events)] += 1
        crashes += bool(result.crashes)
    return CoverageReport(
        strategy=strategy if run_once is None else "custom",
        runs=len(list(seeds)),
        distinct_signatures=len(signatures),
        crashing_runs=crashes,
        signature_counts=dict(signatures),
    )


def _rapos_traced(program, seed, trace, max_steps):
    from .rapos import RaposDriver

    return RaposDriver(max_steps=max_steps).run(program, seed=seed, observers=[trace])
