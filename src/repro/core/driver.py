"""The two-phase RaceFuzzer pipeline, end to end.

``detect_races``      — Phase 1: run an imprecise detector over one or more
                        randomly scheduled executions, union the reports.
``fuzz_races``        — Phase 2: for every potentially racing pair, run
                        RaceFuzzer ``trials`` times with distinct seeds.
``race_directed_test``— both phases; returns a :class:`CampaignReport`
                        whose fields map 1:1 onto the paper's Table 1
                        columns for one benchmark program.
``baseline_exceptions``— the passive-scheduler control (columns 10 and,
                        for Figure 2, the probability comparison).

Every entry point of the two-phase pipeline takes ``jobs=``: ``1``
(default) runs the exact serial path in-process; ``N > 1`` (or ``None``/
``0`` for one worker per core) fans the independent executions out across
a process pool via :class:`~repro.core.parallel.ParallelCampaign`.
Parallel campaigns rebuild the program in each worker from the workload
registry, so the program must be a registered workload (``program.name``
resolvable via :func:`repro.workloads.get`); merged results are identical
to the serial run for the same seed set.

Supervised campaigns additionally take ``deadline=`` (per-task wall-clock
budget), ``retries=`` (bounded retry with backoff), ``checkpoint=``
(append-only JSONL journal for kill/resume) and ``faults=`` (a
deterministic :class:`~repro.core.faults.FaultPlan`); any of these routes
the pipeline through the supervisor even at ``jobs=1``.  See
:mod:`repro.core.supervisor` for the failure semantics.
"""

from __future__ import annotations

import time
from collections import Counter
from typing import Iterable, Sequence

from repro.detectors import (
    RaceReport,
    make_detector,
    schedulable_grades,
    union_reports,
)
from repro.obs import ProgressUpdate, span
from repro.obs.timeline import maybe_timeline, pair_label
from repro.runtime.interpreter import Execution
from repro.runtime.program import Program
from repro.runtime.statement import StatementPair

from .parallel import ParallelCampaign, pair_span_name
from .racefuzzer import RaceFuzzer
from .results import CampaignReport, PairVerdict
from .schedule import CampaignSchedule, make_schedule
from .schedulers import RandomScheduler, baseline_scheduler


def _registered_name(program: Program) -> str:
    """Resolve a program to its workload-registry name (parallel mode).

    Worker processes rebuild the program from the registry, so a parallel
    campaign is only meaningful for programs whose registry entry builds
    the same program the caller holds.
    """
    from repro import workloads  # deferred: core must import without workloads

    try:
        workloads.get(program.name)
    except KeyError:
        raise ValueError(
            f"jobs>1 needs a registered workload so worker processes can "
            f"rebuild the program, but {program.name!r} is not in "
            f"repro.workloads; register it or use jobs=1"
        ) from None
    return program.name


def _parallel(jobs: int | None) -> bool:
    """Did the caller ask for a worker pool?

    The ``jobs=`` contract, shared by every pipeline entry point:
    ``None`` and ``0`` both mean "auto" (one worker per core), ``1``
    means the exact serial in-process path, and ``N >= 2`` means a pool
    of N workers.  Only negative values are rejected.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(
            f"jobs must be None, 0 (one worker per core) or a positive "
            f"int, got {jobs}"
        )
    return jobs is None or jobs == 0 or jobs > 1


def _supervised(*options) -> bool:
    """Does any resilience option force the supervised engine path?

    The plain serial loops below have no deadline/retry/checkpoint
    machinery, so any of those options routes through
    :class:`ParallelCampaign` even at ``jobs=1`` (whose inline path is
    still byte-identical on the success side).
    """
    return any(option is not None for option in options)


def _detect_from_traces(
    program: Program,
    detectors: Sequence[str],
    seed_list: Sequence[int],
    *,
    max_steps: int,
    history_cap: int,
    trace_dir,
    jobs: int,
    deadline: float | None,
    retries: int | None,
    faults=None,
    store_quota: int | None = None,
) -> dict[str, RaceReport]:
    """Record-once / analyze-many Phase 1 backed by a :class:`TraceStore`.

    Reports are *always* produced by replaying the stored trace — on cold
    and warm caches alike — so the result is bit-identical regardless of
    cache state, and a warm store performs zero program executions.  In
    parallel mode the workers only record (publishing via the store's
    atomic rename); the cheap detector passes run in the parent.

    Every analysis read goes through the store's
    :meth:`~repro.trace.TraceStore.with_recovery`: a corrupt or truncated
    cache entry is quarantined and transparently re-recorded, costing one
    execution instead of the campaign.  ``store_quota`` bounds the cache
    in bytes (LRU eviction); repeated budget hits flip the shared health
    controller to ephemeral recording.
    """
    from repro.obs import HealthController
    from repro.trace import TraceStore, analyze_trace, detect_key

    health = HealthController()
    store = TraceStore(
        trace_dir, max_bytes=store_quota, health=health
    )
    keys = {
        seed: detect_key(program.name, seed, max_steps=max_steps)
        for seed in seed_list
    }
    missing = [seed for seed in seed_list if store.get(keys[seed]) is None]
    if missing and (_parallel(jobs) or _supervised(deadline, retries, faults)):
        with ParallelCampaign(
            jobs=jobs, deadline=deadline, retry=retries, faults=faults,
            health=health,
        ) as engine:
            engine.record(
                _registered_name(program),
                seeds=missing,
                max_steps=max_steps,
                trace_dir=str(store.root),
            )
    merged: dict[str, RaceReport] = {}
    tl = maybe_timeline()
    for seed in seed_list:
        # with_recovery covers every seed: warm hit, serial fill, the
        # fallback for a quarantined record task, and the re-record path
        # when the cached entry turns out to be damaged.
        reports = store.with_recovery(
            keys[seed],
            program,
            lambda path: analyze_trace(path, detectors, history_cap=history_cap),
        )
        if tl is not None:
            _emit_detect_event(tl, program.name, seed, reports)
        for name in detectors:
            if name in merged:
                merged[name].merge(reports[name])
            else:
                merged[name] = reports[name]
    return merged


def _emit_detect_event(tl, workload: str, seed: int, reports) -> None:
    """One deterministic ``detect`` event per analyzed Phase-1 seed.

    ``reports`` maps detector name -> that seed's :class:`RaceReport`;
    the attrs carry per-detector candidate counts.  Emitted identically
    by the serial loop, the worker entrypoint and the trace-replay path,
    so the event stream is mode-independent.
    """
    tl.emit(
        "detect",
        (workload, seed),
        {name: len(report.evidence) for name, report in reports.items()},
    )


def detect_races(
    program: Program,
    *,
    detector: str | Sequence[str] = "hybrid",
    seeds: Sequence[int] = (0, 1, 2),
    max_steps: int = 1_000_000,
    history_cap: int = 128,
    jobs: int = 1,
    deadline: float | None = None,
    retries: int | None = None,
    trace_dir=None,
    faults=None,
    store_quota: int | None = None,
) -> RaceReport | dict[str, RaceReport]:
    """Phase 1: collect potentially racing statement pairs.

    Runs the program once per seed under a fully preemptive random
    scheduler with the chosen detector observing every access, and unions
    the resulting reports (more Phase-1 executions -> more coverage, as
    with any dynamic analysis).  Seed runs are independent, so ``jobs=N``
    (``None``/``0`` = one worker per core, ``1`` = serial, negatives
    rejected) distributes them across workers with identical merged
    output.  ``deadline``/``retries`` enable the campaign supervisor: a
    seed run that exceeds its wall-clock deadline or keeps crashing is
    retried and eventually quarantined instead of aborting the phase.

    ``detector`` may be one name (returns that :class:`RaceReport`,
    unchanged API) or a sequence of names (returns ``{name: report}``);
    either way each seed executes the program once, with every requested
    detector observing the same event stream.

    ``trace_dir`` enables record-once / analyze-many semantics: each
    seed's execution is recorded into a :class:`~repro.trace.TraceStore`
    under that directory (workers record for the parent in parallel
    mode), and every report comes from replaying the stored trace.  A
    warm store therefore answers a repeated call with *zero* program
    executions, and adding detectors to a later call costs only detector
    passes — the ROADMAP's caching lever.

    ``store_quota`` (bytes) bounds the trace cache with LRU eviction, and
    ``faults`` injects a deterministic plan into the recording campaign
    (phase name ``"record"``) — both only meaningful with ``trace_dir``.
    """
    seed_list = list(seeds)
    assert seed_list, "detect_races needs at least one seed"
    single = isinstance(detector, str)
    detectors = [detector] if single else list(detector)
    assert detectors, "detect_races needs at least one detector"

    merged: dict[str, RaceReport]
    if trace_dir is not None:
        with span("phase1.detect"):
            merged = _detect_from_traces(
                program,
                detectors,
                seed_list,
                max_steps=max_steps,
                history_cap=history_cap,
                trace_dir=trace_dir,
                jobs=jobs,
                deadline=deadline,
                retries=retries,
                faults=faults,
                store_quota=store_quota,
            )
    elif _parallel(jobs) or _supervised(deadline, retries, faults):
        with ParallelCampaign(
            jobs=jobs, deadline=deadline, retry=retries, faults=faults
        ) as engine:
            # One multi-detector call: each seed executes once with every
            # requested detector attached, mirroring the serial loop.
            result = engine.detect(
                _registered_name(program),
                detector=detectors,
                seeds=seed_list,
                max_steps=max_steps,
                history_cap=history_cap,
            )
            assert isinstance(result, dict)
            merged = result
    else:
        merged = {}
        tl = maybe_timeline()
        with span("phase1.detect"):
            for seed in seed_list:
                observers = {
                    det: make_detector(det, history_cap=history_cap)
                    for det in detectors
                }
                execution = Execution(
                    program,
                    seed=seed,
                    observers=list(observers.values()),
                    max_steps=max_steps,
                )
                execution.run(RandomScheduler(preemption="every"))
                if tl is not None:
                    _emit_detect_event(
                        tl,
                        program.name,
                        seed,
                        {det: obs.report for det, obs in observers.items()},
                    )
                for det, observer in observers.items():
                    if det in merged:
                        merged[det].merge(observer.report)
                    else:
                        merged[det] = observer.report
    return merged[detector] if single else merged


def _fuzz_scheduled_serial(
    program: Program,
    pair_list: Sequence[StatementPair],
    sched: CampaignSchedule,
    *,
    preemption: str,
    patience: int,
    max_steps: int,
    fast_mode: bool,
    stop_on_confirm: bool,
    on_progress,
) -> dict[StatementPair, PairVerdict]:
    """THE serial Phase-2 loop: execute a schedule's batches in-process.

    Every serial fuzz path funnels through here (``fuzz_races`` directly,
    ``race_directed_test`` via ``fuzz_races``), so trial-allocation policy
    lives in exactly one place.  Consecutive same-pair chunks run under
    one ``pair.*`` span — the fixed schedule emits each pair's chunks
    contiguously, reproducing the historical one-span-per-pair metrics
    exactly.
    """
    verdicts: dict[StatementPair, PairVerdict] = {
        pair: PairVerdict(pair=pair) for pair in pair_list
    }
    start = time.monotonic() if on_progress is not None else 0.0
    confirmed: set[int] = set()
    done = issued = 0
    tl = maybe_timeline()
    with span("phase2.fuzz"):
        while True:
            batch = sched.next_batch()
            if not batch:
                break
            issued += len(batch)
            position = 0
            while position < len(batch):
                pair_index = batch[position].pair_index
                group = []
                while (
                    position < len(batch)
                    and batch[position].pair_index == pair_index
                ):
                    group.append(batch[position])
                    position += 1
                pair = pair_list[pair_index]
                fuzzer = RaceFuzzer(
                    pair, preemption=preemption, patience=patience,
                    max_steps=max_steps, fast_mode=fast_mode,
                )
                with span(pair_span_name(pair)):
                    for chunk in group:
                        if (
                            stop_on_confirm
                            and verdicts[pair].times_created > 0
                        ):
                            sched.cancel(chunk)
                            done += 1
                            continue
                        delta = PairVerdict(pair=pair)
                        chunk_wall = time.time() if tl is not None else 0.0
                        chunk_t0 = (
                            time.perf_counter() if tl is not None else 0.0
                        )
                        for seed in range(
                            chunk.seed_start, chunk.seed_start + chunk.count
                        ):
                            delta.absorb(fuzzer.run(program, seed=seed))
                            if stop_on_confirm and delta.times_created > 0:
                                break
                        if tl is not None:
                            # Same identity the worker path emits from
                            # run_fuzz_task, so serial == --jobs N.
                            tl.emit(
                                "chunk",
                                (pair_label(pair), chunk.seed_start),
                                {
                                    "count": chunk.count,
                                    "trials": delta.trials,
                                    "created": delta.times_created,
                                },
                                wall_s=chunk_wall,
                                dur_s=time.perf_counter() - chunk_t0,
                            )
                        verdicts[pair].merge(delta)
                        sched.record(chunk, delta)
                        done += 1
                if on_progress is not None:
                    if verdicts[pair].times_created > 0:
                        confirmed.add(pair_index)
                    planned = sched.planned_chunks()
                    on_progress(
                        ProgressUpdate(
                            phase="fuzz",
                            done=done,
                            total=issued + planned,
                            confirms=len(confirmed),
                            elapsed_s=time.monotonic() - start,
                            remaining=(issued - done) + planned,
                        )
                    )
    return verdicts


def fuzz_races(
    program: Program,
    pairs: Iterable[StatementPair],
    *,
    trials: int = 100,
    base_seed: int = 0,
    preemption: str = "sync",
    patience: int = 400,
    max_steps: int = 1_000_000,
    fast_mode: bool = False,
    jobs: int = 1,
    chunk_size: int = 25,
    stop_on_confirm: bool = False,
    deadline: float | None = None,
    retries: int | None = None,
    checkpoint=None,
    faults=None,
    memory_budget_mb: float | None = None,
    on_progress=None,
    schedule: str | CampaignSchedule | None = None,
    trial_budget: int | None = None,
    time_budget: float | None = None,
    grades: Sequence[bool | None] | None = None,
) -> dict[StatementPair, PairVerdict]:
    """Phase 2: fuzz the candidate pairs under a trial-allocation policy.

    ``grades`` optionally aligns Phase-1 ``schedulable`` grades with the
    pairs (see :func:`repro.detectors.schedulable_grades`); the adaptive
    schedule boosts graded-schedulable priors so those pairs win early
    Thompson rounds.  Deterministic, and a no-op when absent or under the
    fixed schedule.

    ``schedule`` picks the policy (see :mod:`repro.core.schedule`):
    ``None``/``"fixed"`` is the paper's protocol — exactly ``trials``
    seeded trials per pair — and ``"adaptive"`` reallocates a *global*
    budget round by round toward pairs whose posterior race probability
    is still worth buying evidence about (``trial_budget`` caps total
    trials, defaulting to ``trials`` per pair; ``time_budget`` caps
    campaign wall-clock seconds; ``base_seed`` also seeds the Thompson
    draws, so adaptive campaigns are deterministic per seed).  A
    pre-built :class:`~repro.core.schedule.CampaignSchedule` may be
    passed for tuned parameters.

    ``fast_mode=True`` turns on the interpreter's sync-only fast path:
    MemEvents are emitted only for the racing statements themselves (all
    lock/thread/msg events are unaffected).  Verdicts are identical in
    either mode — Phase 2 reads ops directly, not events — so this is
    purely a throughput lever for campaigns with observers attached.

    ``jobs=N`` (``None``/``0`` = one worker per core, ``1`` = serial,
    negatives rejected) splits each round's allocations into
    ``chunk_size``-sized tasks across a worker pool; merged verdicts are
    identical to the serial loop (posterior updates are commutative, and
    allocation decisions happen only at round boundaries).
    ``stop_on_confirm`` abandons a pair's remaining trials once one trial
    confirms the race real — same classification, fewer trials (and
    timing-dependent trial counts when ``jobs > 1``).

    The resilience options route through the campaign supervisor (even at
    ``jobs=1``): ``deadline`` bounds each chunk's wall-clock (distinct
    from ``max_steps``), ``retries`` bounds re-attempts of failing
    chunks, ``checkpoint`` journals completed chunks to an append-only
    JSONL file so a killed campaign resumes where it left off, and
    ``faults`` injects a deterministic
    :class:`~repro.core.faults.FaultPlan`.  ``memory_budget_mb`` bounds
    each attempt's memory growth (``ru_maxrss`` delta), turning a leaky
    chunk into a retryable ``memory``-kind failure.  A chunk that fails
    every attempt is quarantined onto its verdict's ``errors`` instead of
    sinking the campaign.  These paths require a registered workload
    (like ``jobs>1``) so the program can be rebuilt from its name.
    """
    pair_list = list(pairs)
    sched = make_schedule(
        schedule,
        trials=trials,
        trial_budget=trial_budget,
        time_budget_s=time_budget,
        seed=base_seed,
    )
    if _parallel(jobs) or _supervised(
        deadline, retries, checkpoint, faults, memory_budget_mb
    ):
        with ParallelCampaign(
            jobs=jobs,
            chunk_size=chunk_size,
            stop_on_confirm=stop_on_confirm,
            deadline=deadline,
            retry=retries,
            checkpoint=checkpoint,
            faults=faults,
            memory_budget_mb=memory_budget_mb,
            on_progress=on_progress,
        ) as engine:
            return engine.fuzz(
                _registered_name(program),
                pair_list,
                trials=trials,
                base_seed=base_seed,
                preemption=preemption,
                patience=patience,
                max_steps=max_steps,
                fast_mode=fast_mode,
                schedule=sched,
                grades=grades,
            )
    sched.bind(
        pair_list, base_seed=base_seed, chunk_size=chunk_size, grades=grades
    )
    return _fuzz_scheduled_serial(
        program,
        pair_list,
        sched,
        preemption=preemption,
        patience=patience,
        max_steps=max_steps,
        fast_mode=fast_mode,
        stop_on_confirm=stop_on_confirm,
        on_progress=on_progress,
    )


def _emit_funnel(report: CampaignReport) -> CampaignReport:
    """Timeline: the campaign's detector funnel, candidate -> confirmed.

    Derived entirely from the merged campaign report, so the event is
    identical however the campaign executed.
    """
    tl = maybe_timeline()
    if tl is not None:
        grades = schedulable_grades(report.phase1, report.phase1.pairs)
        tl.emit(
            "funnel",
            (report.program,),
            {
                "candidates": len(report.phase1.pairs),
                "schedulable": sum(1 for g in grades if g is True),
                "speculative": sum(1 for g in grades if g is False),
                "ungraded": sum(1 for g in grades if g is None),
                "confirmed": sum(
                    1
                    for verdict in report.verdicts.values()
                    if verdict.times_created > 0
                ),
            },
        )
    return report


def race_directed_test(
    program: Program,
    *,
    detector: str | Sequence[str] = "hybrid",
    phase1_seeds: Sequence[int] = (0, 1, 2),
    trials: int = 100,
    base_seed: int = 0,
    preemption: str = "sync",
    patience: int = 400,
    max_steps: int = 1_000_000,
    fast_mode: bool = False,
    pairs: Iterable[StatementPair] | None = None,
    jobs: int = 1,
    chunk_size: int = 25,
    stop_on_confirm: bool = False,
    deadline: float | None = None,
    retries: int | None = None,
    checkpoint=None,
    faults=None,
    memory_budget_mb: float | None = None,
    on_progress=None,
    schedule: str | CampaignSchedule | None = None,
    trial_budget: int | None = None,
    time_budget: float | None = None,
) -> CampaignReport:
    """The full RaceFuzzer pipeline over one program.

    ``pairs`` may be supplied directly (e.g. from a static tool, or the
    worked examples); otherwise Phase 1 computes them.  ``detector`` may
    be a sequence of names — each Phase-1 seed then executes once with
    every detector attached and Phase 2 fuzzes the *union* of the
    reports, so a predictive detector's extra candidates ride along with
    the hybrid baseline at no added Phase-1 execution cost.  ``jobs=N``
    (``None``/``0`` = one worker per core, ``1`` = serial, negatives
    rejected) parallelizes both phases over one supervised process pool.
    The resilience options (``deadline``, ``retries``, ``checkpoint``,
    ``faults`` — see :func:`fuzz_races`) apply to both phases; tasks that
    fail every retry end up on ``CampaignReport.failures`` instead of
    aborting the campaign.  ``fast_mode`` applies to Phase 2 only (see
    :func:`fuzz_races`); Phase 1 detectors need every MemEvent, and so do
    ``schedule``/``trial_budget``/``time_budget``, Phase 2's
    trial-allocation policy knobs.
    """
    sched = make_schedule(
        schedule,
        trials=trials,
        trial_budget=trial_budget,
        time_budget_s=time_budget,
        seed=base_seed,
    )
    if _parallel(jobs) or _supervised(
        deadline, retries, checkpoint, faults, memory_budget_mb
    ):
        # One engine (and one worker pool) spans both phases, so that
        # quarantine records from Phase 1 and Phase 2 land on the same
        # campaign report.
        with ParallelCampaign(
            jobs=jobs,
            chunk_size=chunk_size,
            stop_on_confirm=stop_on_confirm,
            deadline=deadline,
            retry=retries,
            checkpoint=checkpoint,
            faults=faults,
            memory_budget_mb=memory_budget_mb,
            on_progress=on_progress,
        ) as engine:
            name = _registered_name(program)
            if pairs is None:
                return _emit_funnel(
                    engine.run(
                        name,
                        detector=detector,
                        phase1_seeds=phase1_seeds,
                        trials=trials,
                        base_seed=base_seed,
                        preemption=preemption,
                        patience=patience,
                        max_steps=max_steps,
                        fast_mode=fast_mode,
                        schedule=sched,
                    )
                )
            pair_list = list(pairs)
            phase1 = RaceReport.from_pairs(pair_list, program=name)
            verdicts = engine.fuzz(
                name,
                pair_list,
                trials=trials,
                base_seed=base_seed,
                preemption=preemption,
                patience=patience,
                max_steps=max_steps,
                fast_mode=fast_mode,
                schedule=sched,
            )
            return _emit_funnel(
                CampaignReport(
                    program=name,
                    phase1=phase1,
                    verdicts=verdicts,
                    failures=list(engine.failures),
                )
            )
    grades = None
    if pairs is None:
        phase1 = detect_races(
            program,
            detector=detector,
            seeds=phase1_seeds,
            max_steps=max_steps,
        )
        if isinstance(phase1, dict):
            phase1 = union_reports(phase1, program=program.name)
        pair_list = phase1.pairs
        grades = schedulable_grades(phase1, pair_list)
    else:
        pair_list = list(pairs)
        phase1 = RaceReport.from_pairs(pair_list, program=program.name)
    verdicts = fuzz_races(
        program,
        pair_list,
        trials=trials,
        base_seed=base_seed,
        preemption=preemption,
        patience=patience,
        max_steps=max_steps,
        fast_mode=fast_mode,
        chunk_size=chunk_size,
        stop_on_confirm=stop_on_confirm,
        on_progress=on_progress,
        schedule=sched,
        grades=grades,
    )
    return _emit_funnel(
        CampaignReport(program=program.name, phase1=phase1, verdicts=verdicts)
    )


def baseline_exceptions(
    program: Program,
    *,
    runs: int = 100,
    scheduler: str = "default",
    base_seed: int = 0,
    max_steps: int = 1_000_000,
    jobs: int = 1,
    chunk_size: int = 25,
    deadline: float | None = None,
    retries: int | None = None,
) -> Counter:
    """Count exception types over passive-scheduler runs (Table 1, col 10).

    Baseline runs are independent seeded executions, so ``jobs=N``
    (``None``/``0`` = one worker per core, ``1`` = serial, negatives
    rejected) fans ``chunk_size``-run chunks out across workers; Counter
    addition is commutative, so the merged tally matches the serial loop.
    ``deadline``/``retries`` route through the campaign supervisor like
    every other pipeline entry point; a chunk that fails every attempt
    drops its runs (quarantined on the campaign's failure list) instead
    of aborting the control experiment.
    """
    baseline_scheduler(scheduler)  # reject unknown specs before any run
    if _parallel(jobs) or _supervised(deadline, retries):
        with ParallelCampaign(
            jobs=jobs, chunk_size=chunk_size, deadline=deadline, retry=retries
        ) as engine:
            return engine.baseline(
                _registered_name(program),
                runs=runs,
                scheduler=scheduler,
                base_seed=base_seed,
                max_steps=max_steps,
            )
    crashes: Counter = Counter()
    with span("baseline"):
        for run in range(runs):
            execution = Execution(
                program, seed=base_seed + run, max_steps=max_steps
            )
            result = execution.run(baseline_scheduler(scheduler))
            for crash in result.crashes:
                crashes[crash.error_type] += 1
            if result.deadlock:
                crashes["Deadlock"] += 1
    return crashes
