"""The two-phase RaceFuzzer pipeline, end to end.

``detect_races``      — Phase 1: run an imprecise detector over one or more
                        randomly scheduled executions, union the reports.
``fuzz_races``        — Phase 2: for every potentially racing pair, run
                        RaceFuzzer ``trials`` times with distinct seeds.
``race_directed_test``— both phases; returns a :class:`CampaignReport`
                        whose fields map 1:1 onto the paper's Table 1
                        columns for one benchmark program.
``baseline_exceptions``— the passive-scheduler control (columns 10 and,
                        for Figure 2, the probability comparison).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.detectors import DETECTORS, RaceReport
from repro.runtime.interpreter import Execution
from repro.runtime.program import Program
from repro.runtime.statement import StatementPair

from .racefuzzer import RaceFuzzer
from .results import CampaignReport, PairVerdict
from .schedulers import DefaultScheduler, RandomScheduler, Scheduler


def detect_races(
    program: Program,
    *,
    detector: str = "hybrid",
    seeds: Sequence[int] = (0, 1, 2),
    max_steps: int = 1_000_000,
    history_cap: int = 128,
) -> RaceReport:
    """Phase 1: collect potentially racing statement pairs.

    Runs the program once per seed under a fully preemptive random
    scheduler with the chosen detector observing every access, and unions
    the resulting reports (more Phase-1 executions -> more coverage, as
    with any dynamic analysis).
    """
    detector_cls = DETECTORS[detector]
    merged: RaceReport | None = None
    for seed in seeds:
        if detector == "lockset":
            observer = detector_cls()
        else:
            observer = detector_cls(history_cap=history_cap)
        execution = Execution(
            program, seed=seed, observers=[observer], max_steps=max_steps
        )
        execution.run(RandomScheduler(preemption="every"))
        if merged is None:
            merged = observer.report
        else:
            merged.merge(observer.report)
    assert merged is not None, "detect_races needs at least one seed"
    return merged


def fuzz_races(
    program: Program,
    pairs: Iterable[StatementPair],
    *,
    trials: int = 100,
    base_seed: int = 0,
    preemption: str = "sync",
    patience: int = 400,
    max_steps: int = 1_000_000,
) -> dict[StatementPair, PairVerdict]:
    """Phase 2: fuzz every pair ``trials`` times; aggregate verdicts."""
    verdicts: dict[StatementPair, PairVerdict] = {}
    for pair in pairs:
        fuzzer = RaceFuzzer(
            pair, preemption=preemption, patience=patience, max_steps=max_steps
        )
        verdict = PairVerdict(pair=pair)
        for trial in range(trials):
            outcome = fuzzer.run(program, seed=base_seed + trial)
            verdict.absorb(outcome)
        verdicts[pair] = verdict
    return verdicts


def race_directed_test(
    program: Program,
    *,
    detector: str = "hybrid",
    phase1_seeds: Sequence[int] = (0, 1, 2),
    trials: int = 100,
    base_seed: int = 0,
    preemption: str = "sync",
    patience: int = 400,
    max_steps: int = 1_000_000,
    pairs: Iterable[StatementPair] | None = None,
) -> CampaignReport:
    """The full RaceFuzzer pipeline over one program.

    ``pairs`` may be supplied directly (e.g. from a static tool, or the
    worked examples); otherwise Phase 1 computes them.
    """
    if pairs is None:
        phase1 = detect_races(
            program, detector=detector, seeds=phase1_seeds, max_steps=max_steps
        )
        pair_list = phase1.pairs
    else:
        pair_list = list(pairs)
        phase1 = RaceReport(program=program.name, detector="supplied")
        phase1.evidence = {pair: None for pair in pair_list}  # type: ignore[assignment]
    verdicts = fuzz_races(
        program,
        pair_list,
        trials=trials,
        base_seed=base_seed,
        preemption=preemption,
        patience=patience,
        max_steps=max_steps,
    )
    return CampaignReport(program=program.name, phase1=phase1, verdicts=verdicts)


def baseline_exceptions(
    program: Program,
    *,
    runs: int = 100,
    scheduler: str = "default",
    base_seed: int = 0,
    max_steps: int = 1_000_000,
) -> Counter:
    """Count exception types over passive-scheduler runs (Table 1, col 10)."""
    crashes: Counter = Counter()
    for run in range(runs):
        sched: Scheduler
        if scheduler == "default":
            sched = DefaultScheduler()
        elif scheduler == "random":
            sched = RandomScheduler(preemption="every")
        elif scheduler == "random-sync":
            sched = RandomScheduler(preemption="sync")
        else:
            raise ValueError(f"unknown scheduler: {scheduler!r}")
        execution = Execution(program, seed=base_seed + run, max_steps=max_steps)
        result = execution.run(sched)
        for crash in result.crashes:
            crashes[crash.error_type] += 1
        if result.deadlock:
            crashes["Deadlock"] += 1
    return crashes
