"""Parallel campaign engine: process-pool fan-out for both phases.

The paper observes that RaceFuzzer is embarrassingly parallel: "since
different invocations of RaceFuzzer are independent of each other,
performance of RaceFuzzer can be increased linearly with the number of
processors or cores" (Section 1).  A trial is a pure function of
``(program, pair, seed)``, and a Phase-1 detection run is a pure function
of ``(program, detector, seed)`` — so a campaign is a bag of independent
tasks.  This module fans that bag out across a
:class:`concurrent.futures.ProcessPoolExecutor`.

Design constraints, and how they are met:

* **Tasks must be picklable.**  A :class:`~repro.runtime.program.Program`
  wraps an arbitrary factory closure, so programs never cross the process
  boundary.  Instead a task spec (:class:`DetectTask` / :class:`FuzzTask`)
  addresses the workload *by registry name*; the worker rebuilds the
  program in the child via :func:`repro.workloads.get`.  Pairs travel as
  :class:`~repro.runtime.statement.StatementPair` value objects (plain
  frozen dataclasses of strings and ints), seeds as explicit
  ``(start, count)`` ranges.
* **Results must merge deterministically.**  Workers return compact
  :class:`~repro.detectors.RaceReport` / :class:`.results.PairVerdict`
  deltas (pure value objects).  The parent indexes every future by its
  submission position and folds results in *submission* order — never
  completion order — so the merged campaign is identical to the serial
  run for the same seed set, regardless of worker scheduling.  (Location
  uids inside Phase-1 evidence are per-process and only meaningful for
  display; pair identity lives in statements, which are stable across
  processes.)
* **``jobs=1`` is exactly the serial path.**  The engine runs task bodies
  inline, in submission order, with no pool — byte-for-byte the same
  work the serial drivers do.

``stop_on_confirm`` adds the one useful deviation from strict determinism:
once any chunk confirms a pair real (``times_created > 0``), the pair's
not-yet-started chunks are cancelled.  Verdict *classification* is
unaffected (a confirmed pair stays confirmed) but trial counts then depend
on worker timing, so equivalence tests must keep it off.

Every dispatch goes through the :mod:`~repro.core.supervisor` layer, which
adds the failure story: per-task wall-clock deadlines, retry with backoff,
broken-pool recovery, quarantine, and checkpoint/resume.  See that module
for the semantics; this one stays about *what* a task is and *how* results
merge.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.detectors import (
    RaceReport,
    make_detector,
    schedulable_grades,
    union_reports,
)
from repro.obs import ProgressUpdate, span
from repro.obs.health import HealthController
from repro.obs.timeline import maybe_timeline, pair_label
from repro.runtime.interpreter import Execution
from repro.runtime.statement import StatementPair

from .faults import FaultPlan
from .results import CampaignReport, PairVerdict
from .schedule import CampaignSchedule, chunk_spans, make_schedule
from .schedulers import RandomScheduler
from .supervisor import CampaignSupervisor, RetryPolicy, resolve_jobs

T = TypeVar("T")
R = TypeVar("R")


def pair_key(pair: StatementPair) -> tuple[str, str]:
    """Stable cross-process identity for a pair (sorting / grouping key)."""
    return (str(pair.first), str(pair.second))


def pair_span_name(pair: StatementPair) -> str:
    """The per-pair wall-clock span's name, stable across processes."""
    return f"pair.{pair.first.site}|{pair.second.site}"


def _validate_chunk_size(chunk_size: int) -> int:
    """Shared guard for every chunking entry point."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return chunk_size


# --------------------------------------------------------------------- #
# Task specs: the picklable unit of work shipped to a worker process.
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class DetectTask:
    """One Phase-1 detection run: (workload, detector(s), seed).

    ``detectors`` non-empty selects the multi-detector protocol: the
    worker attaches every named detector to *one* execution of the seed
    and returns a ``{name: RaceReport}`` dict — one program run feeds all
    analyses, exactly like offline multi-detector trace analysis.  Empty
    ``detectors`` is the classic single-``detector`` task returning a
    bare :class:`RaceReport`.
    """

    workload: str
    detector: str = "hybrid"
    seed: int = 0
    max_steps: int = 1_000_000
    history_cap: int = 128
    detectors: tuple[str, ...] = ()


@dataclass(frozen=True)
class RecordTask:
    """One trace-recording run: fill a shared :class:`TraceStore` entry.

    Workers record into the store directory via its atomic temp-name +
    rename publish, so concurrent recorders of one key race benignly and
    the parent can replay any published trace the moment the task
    completes.  The worker returns the trace path as a string.
    """

    workload: str
    seed: int = 0
    max_steps: int = 1_000_000
    trace_dir: str = ""
    compress: bool = False


@dataclass(frozen=True)
class BaselineTask:
    """One passive-scheduler baseline chunk: ``count`` consecutive runs."""

    workload: str
    scheduler: str = "default"
    seed_start: int = 0
    count: int = 1
    max_steps: int = 1_000_000


@dataclass(frozen=True)
class FuzzTask:
    """One Phase-2 chunk: ``count`` consecutive seeded trials of one pair."""

    workload: str
    pair: StatementPair
    seed_start: int = 0
    count: int = 1
    preemption: str = "sync"
    patience: int = 400
    max_steps: int = 1_000_000
    #: suppress off-pair MemEvent emission in the worker (verdict-neutral).
    fast_mode: bool = False


def _build_workload(name: str):
    """Rebuild the program in the worker from its registry name."""
    from repro import workloads  # deferred: keep core importable alone

    return workloads.get(name).build()


def run_detect_task(task: DetectTask) -> "RaceReport | dict[str, RaceReport]":
    """Worker entrypoint: one seed's detection run(s), returning deltas.

    One execution of the seed drives every requested detector — attaching
    N observers to one run costs one program execution, not N.
    """
    program = _build_workload(task.workload)
    names = task.detectors if task.detectors else (task.detector,)
    observers = {
        name: make_detector(name, history_cap=task.history_cap)
        for name in names
    }
    execution = Execution(
        program,
        seed=task.seed,
        observers=list(observers.values()),
        max_steps=task.max_steps,
    )
    execution.run(RandomScheduler(preemption="every"))
    tl = maybe_timeline()
    if tl is not None:
        # Same identity the serial loop emits (driver._emit_detect_event),
        # so the deterministic event stream is mode-independent.
        tl.emit(
            "detect",
            (task.workload, task.seed),
            {name: len(obs.report.evidence) for name, obs in observers.items()},
        )
    if task.detectors:
        return {name: observer.report for name, observer in observers.items()}
    return observers[task.detector].report


def run_record_task(task: RecordTask) -> str:
    """Worker entrypoint: ensure one trace exists in the shared store."""
    from repro.trace import TraceStore, detect_key  # deferred: avoid cycle

    program = _build_workload(task.workload)
    store = TraceStore(task.trace_dir, compress=task.compress)
    path = store.ensure(
        detect_key(task.workload, task.seed, max_steps=task.max_steps), program
    )
    return str(path)


def run_baseline_task(task: BaselineTask) -> Counter:
    """Worker entrypoint: count crash kinds over one baseline seed range."""
    from .schedulers import baseline_scheduler  # deferred: avoid cycle

    program = _build_workload(task.workload)
    crashes: Counter = Counter()
    for seed in range(task.seed_start, task.seed_start + task.count):
        execution = Execution(program, seed=seed, max_steps=task.max_steps)
        result = execution.run(baseline_scheduler(task.scheduler))
        for crash in result.crashes:
            crashes[crash.error_type] += 1
        if result.deadlock:
            crashes["Deadlock"] += 1
    return crashes


def run_fuzz_task(task: FuzzTask) -> PairVerdict:
    """Worker entrypoint: fuzz one pair over one seed range."""
    from .racefuzzer import RaceFuzzer  # deferred: avoid import cycle

    program = _build_workload(task.workload)
    fuzzer = RaceFuzzer(
        task.pair,
        preemption=task.preemption,
        patience=task.patience,
        max_steps=task.max_steps,
        fast_mode=task.fast_mode,
    )
    verdict = PairVerdict(pair=task.pair)
    tl = maybe_timeline()
    chunk_wall = time.time() if tl is not None else 0.0
    chunk_t0 = time.perf_counter() if tl is not None else 0.0
    with span(pair_span_name(task.pair)):
        for seed in range(task.seed_start, task.seed_start + task.count):
            verdict.absorb(fuzzer.run(program, seed=seed))
    if tl is not None:
        # Same identity the serial loop emits in _fuzz_scheduled_serial,
        # so serial == --jobs N on the deterministic event stream.
        tl.emit(
            "chunk",
            (pair_label(task.pair), task.seed_start),
            {
                "count": task.count,
                "trials": verdict.trials,
                "created": verdict.times_created,
            },
            wall_s=chunk_wall,
            dur_s=time.perf_counter() - chunk_t0,
        )
    return verdict


def fuzz_task_key(task: FuzzTask) -> str:
    """Stable checkpoint-journal key for one Phase-2 chunk.

    Covers every field that affects the chunk's verdict, so a journaled
    result is only reused by a campaign running the *same* protocol; any
    parameter change misses the cache and re-executes.  ``fast_mode`` is
    deliberately excluded: it only gates MemEvent emission to observers
    (workers attach none), so verdicts are identical either way and old
    journals stay valid.
    """
    first, second = task.pair.first, task.pair.second
    return json.dumps(
        {
            "workload": task.workload,
            "pair": [
                [first.file, first.line, first.label],
                [second.file, second.line, second.label],
            ],
            "seed_start": task.seed_start,
            "count": task.count,
            "preemption": task.preemption,
            "patience": task.patience,
            "max_steps": task.max_steps,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def chunk_ranges(base_seed: int, trials: int, chunk_size: int) -> list[tuple[int, int]]:
    """Split ``trials`` consecutive seeds into ``(start, count)`` chunks.

    A thin alias of :func:`repro.core.schedule.chunk_spans` — the
    schedule layer owns range math now, so incremental allocations
    starting at an arbitrary seed cursor chunk identically to a full
    fixed campaign.
    """
    return chunk_spans(base_seed, trials, chunk_size)


def pool_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    jobs: int | None = None,
    *,
    on_progress: Callable[[int, int], None] | None = None,
) -> list[R]:
    """Order-preserving process-pool map; ``jobs=1`` runs inline.

    The harness modules (Table 1 rows, the Figure 2 sweep) use this for
    coarse-grained fan-out where every task is one independent measurement
    and results are consumed positionally.  ``on_progress(done, total)``
    fires as tasks complete (completion order; results still merge in
    submission order).
    """
    jobs = resolve_jobs(jobs)
    total = len(items)
    if jobs == 1 or total <= 1:
        results = []
        for index, item in enumerate(items):
            results.append(fn(item))
            if on_progress is not None:
                on_progress(index + 1, total)
        return results
    with ProcessPoolExecutor(max_workers=min(jobs, total)) as pool:
        if on_progress is None:
            return list(pool.map(fn, items))
        futures = [pool.submit(fn, item) for item in items]
        outstanding = set(futures)
        while outstanding:
            done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
            on_progress(total - len(outstanding), total)
        return [future.result() for future in futures]


# --------------------------------------------------------------------- #
# The campaign engine.
# --------------------------------------------------------------------- #


class ParallelCampaign:
    """Fan a two-phase campaign out across supervised worker processes.

    Every task — Phase-1 detection runs and Phase-2 fuzz chunks alike —
    is dispatched through a :class:`~repro.core.supervisor.CampaignSupervisor`,
    which adds per-task wall-clock deadlines, bounded retry with backoff,
    broken-pool recovery (with graceful degradation to inline serial
    execution), quarantine of persistently failing tasks, and
    checkpoint/resume for Phase-2 chunks.

    Parameters:
        jobs: worker processes (``None``/``0`` = one per core; ``1`` =
            run inline with no pool, the exact serial path).
        chunk_size: Phase-2 seeds per task.  Small chunks parallelize
            better; large chunks amortize per-task overhead.  Chunking
            never changes merged aggregates (trials are independent and
            the merge is associative).
        stop_on_confirm: cancel a pair's remaining chunks once one chunk
            confirms the race real.  Faster on campaigns with
            high-probability races, but trial counts become
            timing-dependent (classification does not).
        deadline: per-task wall-clock budget in seconds (distinct from
            the abstract ``max_steps`` budget; ``None`` = unlimited).
        retry: a :class:`~repro.core.supervisor.RetryPolicy`, or an int
            meaning ``RetryPolicy(max_retries=N)``, or ``None`` for the
            default (2 retries, exponential backoff with seeded jitter).
        checkpoint: path to an append-only JSONL journal of completed
            Phase-2 chunks; a restarted campaign skips journaled chunks.
        faults: a :class:`~repro.core.faults.FaultPlan` for deterministic
            failure injection.
        pool_death_limit: rebuild a broken worker pool at most this many
            times before degrading to inline serial execution.
        memory_budget_mb: per-attempt memory budget in MiB, enforced
            worker-side as a ``ru_maxrss`` delta.
        health: shared :class:`~repro.obs.health.HealthController`; one
            is created when not given, and its state rides on every
            :class:`~repro.obs.ProgressUpdate`.

    Quarantined tasks accumulate on :attr:`failures` (and, for fuzz
    chunks, on the owning verdict's ``errors``); :attr:`last_report`
    holds the :class:`~repro.core.supervisor.SupervisorReport` of the
    most recent batch.  Use as a context manager (or call :meth:`close`)
    to reclaim the pool.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunk_size: int = 25,
        stop_on_confirm: bool = False,
        deadline: float | None = None,
        retry: RetryPolicy | int | None = None,
        checkpoint=None,
        faults: FaultPlan | None = None,
        pool_death_limit: int = 2,
        memory_budget_mb: float | None = None,
        health: HealthController | None = None,
        on_progress: Callable[[ProgressUpdate], None] | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        self.chunk_size = _validate_chunk_size(chunk_size)
        self.stop_on_confirm = stop_on_confirm
        self.on_progress = on_progress
        self.health = health if health is not None else HealthController(
            pool_death_critical=pool_death_limit + 1
        )
        self.supervisor = CampaignSupervisor(
            jobs=self.jobs,
            deadline=deadline,
            retry=retry,
            pool_death_limit=pool_death_limit,
            checkpoint=checkpoint,
            faults=faults,
            memory_budget_mb=memory_budget_mb,
            health=self.health,
        )
        self.failures = []
        self.last_report = None

    # -- lifecycle ----------------------------------------------------- #

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self.supervisor.close()

    def __enter__(self) -> "ParallelCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _settle_hook(self, phase: str, total: int, count_confirm=None):
        """An ``on_settle`` callback feeding :attr:`on_progress` updates.

        ``count_confirm(index, result)`` (optional) returns the running
        number of confirmed pairs to display.
        """
        if self.on_progress is None:
            return None
        start = time.monotonic()
        state = {"done": 0}

        def on_settle(index: int, result, outcome: str) -> None:
            state["done"] += 1
            confirms = (
                count_confirm(index, result) if count_confirm is not None else None
            )
            self.on_progress(
                ProgressUpdate(
                    phase=phase,
                    done=state["done"],
                    total=total,
                    confirms=confirms,
                    elapsed_s=time.monotonic() - start,
                    health=self.health.state,
                )
            )

        return on_settle

    # -- Phase 1 ------------------------------------------------------- #

    def detect(
        self,
        workload: str,
        *,
        detector: "str | Sequence[str]" = "hybrid",
        seeds: Sequence[int] = (0, 1, 2),
        max_steps: int = 1_000_000,
        history_cap: int = 128,
    ) -> "RaceReport | dict[str, RaceReport]":
        """Run one detection per seed concurrently; union the reports.

        Reports merge in seed order (not completion order), so the union
        — pair set, per-pair counts, first-witness evidence — matches the
        serial loop exactly.

        ``detector`` may be a sequence of names: each seed then executes
        *once* with every detector attached, and the result is a
        ``{name: merged report}`` dict (a string argument keeps the bare
        :class:`RaceReport` return).
        """
        multi = not isinstance(detector, str)
        names: tuple[str, ...] = tuple(detector) if multi else (detector,)
        assert names, "detect needs at least one detector"
        seed_list = list(seeds)
        assert seed_list, "detect needs at least one seed"
        tasks = [
            DetectTask(
                workload=workload,
                detector=names[0],
                seed=seed,
                max_steps=max_steps,
                history_cap=history_cap,
                detectors=names if multi else (),
            )
            for seed in seed_list
        ]
        expect = dict if multi else RaceReport
        with span("phase1.detect"):
            report = self.supervisor.supervise(
                "detect",
                tasks,
                validate=lambda task, r: isinstance(r, expect),
                on_settle=self._settle_hook("detect", len(tasks)),
            )
        self.last_report = report
        self.failures.extend(report.failures)
        # Quarantined seeds lose their coverage contribution (recorded on
        # `failures`) but never abort the phase.
        results = [r for r in report.results if r is not None]
        if not multi:
            if not results:
                return RaceReport(program=workload, detector=names[0])
            merged = results[0]
            for other in results[1:]:
                merged.merge(other)
            return merged
        merged_by_name: dict[str, RaceReport] = {
            name: RaceReport(program=workload, detector=name) for name in names
        }
        for result in results:  # seed order
            for name in names:
                merged_by_name[name].merge(result[name])
        return merged_by_name

    def record(
        self,
        workload: str,
        *,
        seeds: Sequence[int],
        max_steps: int = 1_000_000,
        trace_dir: str = "",
        compress: bool = False,
    ) -> list[str | None]:
        """Record one trace per seed into a shared store directory.

        Workers publish through the store's atomic rename, so the parent
        may replay every returned path immediately.  A quarantined seed
        yields ``None`` in its slot (and a failure record); callers that
        need the trace anyway can fall back to recording it inline.
        """
        tasks = [
            RecordTask(
                workload=workload,
                seed=seed,
                max_steps=max_steps,
                trace_dir=str(trace_dir),
                compress=compress,
            )
            for seed in seeds
        ]
        with span("phase1.record"):
            report = self.supervisor.supervise(
                "record",
                tasks,
                validate=lambda task, r: isinstance(r, str),
                on_settle=self._settle_hook("record", len(tasks)),
            )
        self.last_report = report
        self.failures.extend(report.failures)
        return list(report.results)

    # -- baseline (passive-scheduler control) -------------------------- #

    def baseline(
        self,
        workload: str,
        *,
        runs: int = 100,
        scheduler: str = "default",
        base_seed: int = 0,
        max_steps: int = 1_000_000,
    ) -> Counter:
        """Chunked passive-scheduler control runs; summed crash counter.

        Counter addition is commutative, so the merged tally is identical
        to the serial loop for whatever chunks completed; quarantined
        chunks drop their runs (recorded on :attr:`failures`) instead of
        sinking the control experiment.
        """
        tasks = [
            BaselineTask(
                workload=workload,
                scheduler=scheduler,
                seed_start=start,
                count=count,
                max_steps=max_steps,
            )
            for start, count in chunk_ranges(base_seed, runs, self.chunk_size)
        ]
        with span("baseline"):
            report = self.supervisor.supervise(
                "baseline",
                tasks,
                validate=lambda task, r: isinstance(r, Counter),
                on_settle=self._settle_hook("baseline", len(tasks)),
            )
        self.last_report = report
        self.failures.extend(report.failures)
        crashes: Counter = Counter()
        for result in report.results:
            if result is not None:
                crashes.update(result)
        return crashes

    # -- Phase 2 ------------------------------------------------------- #

    def fuzz(
        self,
        workload: str,
        pairs: Iterable[StatementPair],
        *,
        trials: int = 100,
        base_seed: int = 0,
        preemption: str = "sync",
        patience: int = 400,
        max_steps: int = 1_000_000,
        fast_mode: bool = False,
        schedule: str | CampaignSchedule | None = None,
        grades: "Sequence[bool | None] | None" = None,
    ) -> dict[StatementPair, PairVerdict]:
        """Fuzz every pair under a trial-allocation policy; merge verdicts.

        ``schedule`` picks the allocation policy (see
        :mod:`repro.core.schedule`): ``None``/``"fixed"`` spends exactly
        ``trials`` per pair — one batch of pair-major chunks, identical
        to the pre-schedule engine — while ``"adaptive"`` (or a bound-
        ready :class:`CampaignSchedule` instance, for tuned parameters)
        runs the batch loop round by round, feeding every settled chunk's
        verdict back into the policy between batches.

        ``grades`` (optional, aligned with ``pairs``) forwards Phase-1
        ``schedulable`` grades into the schedule — the adaptive policy
        boosts graded-schedulable pairs' prior alpha deterministically.

        Chunk verdicts for one pair merge in seed order within each
        round, and posterior updates are commutative, so aggregates are
        identical to the serial loop for the same seed set and schedule
        (except wall-clock sums, which are measured, and trial counts
        under ``stop_on_confirm``).
        """
        pair_list = list(pairs)
        sched = make_schedule(schedule, trials=trials)
        sched.bind(
            pair_list,
            base_seed=base_seed,
            chunk_size=self.chunk_size,
            grades=grades,
        )
        verdicts: dict[StatementPair, PairVerdict] = {
            pair: PairVerdict(pair=pair) for pair in pair_list
        }
        confirmed: set[tuple[str, str]] = set()  # stop_on_confirm, all rounds
        confirmed_pairs: set[tuple[str, str]] = set()  # progress display
        start = time.monotonic()
        state = {"done": 0, "issued": 0}

        with span("phase2.fuzz"):
            while True:
                batch = sched.next_batch()
                if not batch:
                    break
                tasks = [
                    FuzzTask(
                        workload=workload,
                        pair=pair_list[chunk.pair_index],
                        seed_start=chunk.seed_start,
                        count=chunk.count,
                        preemption=preemption,
                        patience=patience,
                        max_steps=max_steps,
                        fast_mode=fast_mode,
                    )
                    for chunk in batch
                ]
                state["issued"] += len(tasks)
                settled: set[int] = set()
                marked: set[int] = set()  # cancel-requested, not yet settled

                on_result = None
                if self.stop_on_confirm:

                    def on_result(index: int, verdict) -> list[int]:
                        if not isinstance(verdict, PairVerdict):
                            return []
                        key = pair_key(tasks[index].pair)
                        if verdict.times_created > 0 and key not in confirmed:
                            confirmed.add(key)
                            cancels = [
                                other
                                for other, task in enumerate(tasks)
                                if other != index
                                and other not in settled
                                and pair_key(task.pair) == key
                            ]
                            marked.update(cancels)
                            return cancels
                        return []

                def on_settle(index: int, result, outcome: str) -> None:
                    settled.add(index)
                    marked.discard(index)
                    chunk = batch[index]
                    if outcome in ("ok", "cached") and isinstance(
                        result, PairVerdict
                    ):
                        sched.record(chunk, result)
                    elif outcome == "quarantined":
                        sched.record_failure(chunk)
                    elif outcome == "cancelled":
                        sched.cancel(chunk)
                    state["done"] += 1
                    if self.on_progress is not None:
                        if isinstance(result, PairVerdict) and result.times_created > 0:
                            confirmed_pairs.add(pair_key(tasks[index].pair))
                        planned = sched.planned_chunks()
                        self.on_progress(
                            ProgressUpdate(
                                phase="fuzz",
                                done=state["done"],
                                total=state["issued"] + planned,
                                confirms=len(confirmed_pairs),
                                elapsed_s=time.monotonic() - start,
                                health=self.health.state,
                                remaining=max(
                                    0,
                                    state["issued"]
                                    - state["done"]
                                    - len(marked),
                                )
                                + planned,
                            )
                        )

                report = self.supervisor.supervise(
                    "fuzz",
                    tasks,
                    validate=lambda task, r: (
                        isinstance(r, PairVerdict) and r.pair == task.pair
                    ),
                    key_fn=fuzz_task_key,
                    encode=lambda verdict: verdict.to_jsonable(),
                    decode=PairVerdict.from_jsonable,
                    on_result=on_result,
                    on_settle=on_settle,
                )
                self.last_report = report
                self.failures.extend(report.failures)
                for task, verdict in zip(tasks, report.results):  # submission order
                    if verdict is not None:
                        verdicts[task.pair].merge(verdict)
                for failure in report.failures:
                    verdicts[tasks[failure.index].pair].errors.append(failure)
        return verdicts

    def run(
        self,
        workload: str,
        *,
        detector: "str | Sequence[str]" = "hybrid",
        phase1_seeds: Sequence[int] = (0, 1, 2),
        trials: int = 100,
        base_seed: int = 0,
        preemption: str = "sync",
        patience: int = 400,
        max_steps: int = 1_000_000,
        fast_mode: bool = False,
        schedule: str | CampaignSchedule | None = None,
    ) -> CampaignReport:
        """Both phases end to end, against one registered workload.

        A detector sequence runs a multi-detector Phase 1 (one execution
        per seed feeding all of them) and fuzzes the *union* of their
        candidate pairs — the predictive Phase-1 pipeline.
        """
        phase1 = self.detect(
            workload,
            detector=detector,
            seeds=phase1_seeds,
            max_steps=max_steps,
        )
        if isinstance(phase1, dict):
            phase1 = union_reports(phase1, program=workload)
        pair_list = phase1.pairs
        # Same grade plumbing race_directed_test applies on the serial
        # path, so both engines seed identical adaptive priors.
        grades = schedulable_grades(phase1, pair_list)
        verdicts = self.fuzz(
            workload,
            pair_list,
            trials=trials,
            base_seed=base_seed,
            preemption=preemption,
            patience=patience,
            max_steps=max_steps,
            fast_mode=fast_mode,
            schedule=schedule,
            grades=grades,
        )
        return CampaignReport(
            program=workload,
            phase1=phase1,
            verdicts=verdicts,
            failures=list(self.failures),
        )


__all__ = [
    "ParallelCampaign",
    "DetectTask",
    "FuzzTask",
    "RecordTask",
    "BaselineTask",
    "run_detect_task",
    "run_fuzz_task",
    "run_record_task",
    "run_baseline_task",
    "chunk_ranges",
    "fuzz_task_key",
    "pool_map",
    "pair_key",
    "pair_span_name",
    "resolve_jobs",
]
