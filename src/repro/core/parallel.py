"""Parallel campaign engine: process-pool fan-out for both phases.

The paper observes that RaceFuzzer is embarrassingly parallel: "since
different invocations of RaceFuzzer are independent of each other,
performance of RaceFuzzer can be increased linearly with the number of
processors or cores" (Section 1).  A trial is a pure function of
``(program, pair, seed)``, and a Phase-1 detection run is a pure function
of ``(program, detector, seed)`` — so a campaign is a bag of independent
tasks.  This module fans that bag out across a
:class:`concurrent.futures.ProcessPoolExecutor`.

Design constraints, and how they are met:

* **Tasks must be picklable.**  A :class:`~repro.runtime.program.Program`
  wraps an arbitrary factory closure, so programs never cross the process
  boundary.  Instead a task spec (:class:`DetectTask` / :class:`FuzzTask`)
  addresses the workload *by registry name*; the worker rebuilds the
  program in the child via :func:`repro.workloads.get`.  Pairs travel as
  :class:`~repro.runtime.statement.StatementPair` value objects (plain
  frozen dataclasses of strings and ints), seeds as explicit
  ``(start, count)`` ranges.
* **Results must merge deterministically.**  Workers return compact
  :class:`~repro.detectors.RaceReport` / :class:`.results.PairVerdict`
  deltas (pure value objects).  The parent indexes every future by its
  submission position and folds results in *submission* order — never
  completion order — so the merged campaign is identical to the serial
  run for the same seed set, regardless of worker scheduling.  (Location
  uids inside Phase-1 evidence are per-process and only meaningful for
  display; pair identity lives in statements, which are stable across
  processes.)
* **``jobs=1`` is exactly the serial path.**  The engine runs task bodies
  inline, in submission order, with no pool — byte-for-byte the same
  work the serial drivers do.

``stop_on_confirm`` adds the one useful deviation from strict determinism:
once any chunk confirms a pair real (``times_created > 0``), the pair's
not-yet-started chunks are cancelled.  Verdict *classification* is
unaffected (a confirmed pair stays confirmed) but trial counts then depend
on worker timing, so equivalence tests must keep it off.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.detectors import RaceReport, make_detector
from repro.runtime.interpreter import Execution
from repro.runtime.statement import StatementPair

from .results import CampaignReport, PairVerdict
from .schedulers import RandomScheduler

T = TypeVar("T")
R = TypeVar("R")


def pair_key(pair: StatementPair) -> tuple[str, str]:
    """Stable cross-process identity for a pair (sorting / grouping key)."""
    return (str(pair.first), str(pair.second))


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs=`` argument: ``None``/``0`` means one per core."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be positive or None, got {jobs}")
    return jobs


# --------------------------------------------------------------------- #
# Task specs: the picklable unit of work shipped to a worker process.
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class DetectTask:
    """One Phase-1 detection run: (workload, detector, seed)."""

    workload: str
    detector: str = "hybrid"
    seed: int = 0
    max_steps: int = 1_000_000
    history_cap: int = 128


@dataclass(frozen=True)
class FuzzTask:
    """One Phase-2 chunk: ``count`` consecutive seeded trials of one pair."""

    workload: str
    pair: StatementPair
    seed_start: int = 0
    count: int = 1
    preemption: str = "sync"
    patience: int = 400
    max_steps: int = 1_000_000


def _build_workload(name: str):
    """Rebuild the program in the worker from its registry name."""
    from repro import workloads  # deferred: keep core importable alone

    return workloads.get(name).build()


def run_detect_task(task: DetectTask) -> RaceReport:
    """Worker entrypoint: one detector run, returning its report delta."""
    program = _build_workload(task.workload)
    observer = make_detector(task.detector, history_cap=task.history_cap)
    execution = Execution(
        program, seed=task.seed, observers=[observer], max_steps=task.max_steps
    )
    execution.run(RandomScheduler(preemption="every"))
    return observer.report


def run_fuzz_task(task: FuzzTask) -> PairVerdict:
    """Worker entrypoint: fuzz one pair over one seed range."""
    from .racefuzzer import RaceFuzzer  # deferred: avoid import cycle

    program = _build_workload(task.workload)
    fuzzer = RaceFuzzer(
        task.pair,
        preemption=task.preemption,
        patience=task.patience,
        max_steps=task.max_steps,
    )
    verdict = PairVerdict(pair=task.pair)
    for seed in range(task.seed_start, task.seed_start + task.count):
        verdict.absorb(fuzzer.run(program, seed=seed))
    return verdict


def chunk_ranges(base_seed: int, trials: int, chunk_size: int) -> list[tuple[int, int]]:
    """Split ``trials`` consecutive seeds into ``(start, count)`` chunks."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [
        (start, min(chunk_size, base_seed + trials - start))
        for start in range(base_seed, base_seed + trials, chunk_size)
    ]


def pool_map(
    fn: Callable[[T], R], items: Sequence[T], jobs: int | None = None
) -> list[R]:
    """Order-preserving process-pool map; ``jobs=1`` runs inline.

    The harness modules (Table 1 rows, the Figure 2 sweep) use this for
    coarse-grained fan-out where every task is one independent measurement
    and results are consumed positionally.
    """
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        return list(pool.map(fn, items))


# --------------------------------------------------------------------- #
# The campaign engine.
# --------------------------------------------------------------------- #


class ParallelCampaign:
    """Fan a two-phase campaign out across worker processes.

    Parameters:
        jobs: worker processes (``None``/``0`` = one per core; ``1`` =
            run inline with no pool, the exact serial path).
        chunk_size: Phase-2 seeds per task.  Small chunks parallelize
            better; large chunks amortize per-task overhead.  Chunking
            never changes merged aggregates (trials are independent and
            the merge is associative).
        stop_on_confirm: cancel a pair's remaining chunks once one chunk
            confirms the race real.  Faster on campaigns with
            high-probability races, but trial counts become
            timing-dependent (classification does not).

    Use as a context manager (or call :meth:`close`) to reclaim the pool;
    the pool is created lazily on first parallel use.
    """

    def __init__(
        self,
        jobs: int | None = None,
        *,
        chunk_size: int = 25,
        stop_on_confirm: bool = False,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = chunk_size
        self.stop_on_confirm = stop_on_confirm
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------- #

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelCampaign":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- Phase 1 ------------------------------------------------------- #

    def detect(
        self,
        workload: str,
        *,
        detector: str = "hybrid",
        seeds: Sequence[int] = (0, 1, 2),
        max_steps: int = 1_000_000,
        history_cap: int = 128,
    ) -> RaceReport:
        """Run one detection per seed concurrently; union the reports.

        Reports merge in seed order (not completion order), so the union
        — pair set, per-pair counts, first-witness evidence — matches the
        serial loop exactly.
        """
        seed_list = list(seeds)
        assert seed_list, "detect needs at least one seed"
        tasks = [
            DetectTask(
                workload=workload,
                detector=detector,
                seed=seed,
                max_steps=max_steps,
                history_cap=history_cap,
            )
            for seed in seed_list
        ]
        reports = self._map(run_detect_task, tasks)
        merged = reports[0]
        for report in reports[1:]:
            merged.merge(report)
        return merged

    # -- Phase 2 ------------------------------------------------------- #

    def fuzz(
        self,
        workload: str,
        pairs: Iterable[StatementPair],
        *,
        trials: int = 100,
        base_seed: int = 0,
        preemption: str = "sync",
        patience: int = 400,
        max_steps: int = 1_000_000,
    ) -> dict[StatementPair, PairVerdict]:
        """Fuzz every pair over chunked seed ranges; merge chunk verdicts.

        Chunk verdicts for one pair merge in seed order, so aggregates
        are identical to the serial trial loop for the same seed set
        (except wall-clock sums, which are measured, and trial counts
        under ``stop_on_confirm``).
        """
        pair_list = list(pairs)
        tasks: list[FuzzTask] = []
        for pair in pair_list:
            for start, count in chunk_ranges(base_seed, trials, self.chunk_size):
                tasks.append(
                    FuzzTask(
                        workload=workload,
                        pair=pair,
                        seed_start=start,
                        count=count,
                        preemption=preemption,
                        patience=patience,
                        max_steps=max_steps,
                    )
                )
        chunk_verdicts = self._run_fuzz_tasks(tasks)
        verdicts: dict[StatementPair, PairVerdict] = {
            pair: PairVerdict(pair=pair) for pair in pair_list
        }
        for task, verdict in zip(tasks, chunk_verdicts):  # submission order
            if verdict is not None:
                verdicts[task.pair].merge(verdict)
        return verdicts

    def run(
        self,
        workload: str,
        *,
        detector: str = "hybrid",
        phase1_seeds: Sequence[int] = (0, 1, 2),
        trials: int = 100,
        base_seed: int = 0,
        preemption: str = "sync",
        patience: int = 400,
        max_steps: int = 1_000_000,
    ) -> CampaignReport:
        """Both phases end to end, against one registered workload."""
        phase1 = self.detect(
            workload,
            detector=detector,
            seeds=phase1_seeds,
            max_steps=max_steps,
        )
        verdicts = self.fuzz(
            workload,
            phase1.pairs,
            trials=trials,
            base_seed=base_seed,
            preemption=preemption,
            patience=patience,
            max_steps=max_steps,
        )
        return CampaignReport(program=workload, phase1=phase1, verdicts=verdicts)

    # -- internals ------------------------------------------------------ #

    def _map(self, fn: Callable[[T], R], tasks: Sequence[T]) -> list[R]:
        """Order-preserving map over the pool (inline when jobs=1)."""
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        return list(self._executor().map(fn, tasks))

    def _run_fuzz_tasks(self, tasks: list[FuzzTask]) -> list[PairVerdict | None]:
        """Run fuzz chunks; ``None`` marks chunks cancelled by early exit."""
        if not self.stop_on_confirm:
            return self._map(run_fuzz_task, tasks)
        if self.jobs == 1 or len(tasks) <= 1:
            return self._run_fuzz_serial_early_exit(tasks)
        pool = self._executor()
        futures = [pool.submit(run_fuzz_task, task) for task in tasks]
        index_of = {future: index for index, future in enumerate(futures)}
        confirmed: set[tuple[str, str]] = set()
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if future.cancelled():
                    continue
                verdict = future.result()
                key = pair_key(tasks[index_of[future]].pair)
                if verdict.times_created > 0 and key not in confirmed:
                    confirmed.add(key)
                    for other_index, other in enumerate(futures):
                        if (
                            pair_key(tasks[other_index].pair) == key
                            and not other.done()
                        ):
                            other.cancel()
        return [
            future.result() if future.done() and not future.cancelled() else None
            for future in futures
        ]

    def _run_fuzz_serial_early_exit(
        self, tasks: list[FuzzTask]
    ) -> list[PairVerdict | None]:
        """Inline early-exit: skip a pair's later chunks once confirmed."""
        confirmed: set[tuple[str, str]] = set()
        results: list[PairVerdict | None] = []
        for task in tasks:
            key = pair_key(task.pair)
            if key in confirmed:
                results.append(None)
                continue
            verdict = run_fuzz_task(task)
            if verdict.times_created > 0:
                confirmed.add(key)
            results.append(verdict)
        return results


__all__ = [
    "ParallelCampaign",
    "DetectTask",
    "FuzzTask",
    "run_detect_task",
    "run_fuzz_task",
    "chunk_ranges",
    "pool_map",
    "pair_key",
    "resolve_jobs",
]
