"""Human-readable rendering of execution traces.

The paper's replay feature exists for *debugging*: once a seed reproduces
a race, the developer wants to read the interleaving.  This module turns
an event list (from :class:`~repro.runtime.observer.EventTrace` or
:func:`~repro.core.replay.replay_race`) into an aligned listing, one
column per thread, in execution order — the classic interleaving diagram.
"""

from __future__ import annotations

from repro.runtime.events import (
    AcquireEvent,
    DeadlockEvent,
    ErrorEvent,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)


def _describe(event: Event) -> str:
    if isinstance(event, MemEvent):
        verb = "write" if event.is_write else "read"
        locks = (
            " {" + ",".join(sorted(l.describe() for l in event.locks_held)) + "}"
            if event.locks_held
            else ""
        )
        return f"{verb} {event.location.describe()} @ {event.stmt.site}{locks}"
    if isinstance(event, AcquireEvent):
        return f"acquire {event.lock.describe()}"
    if isinstance(event, ReleaseEvent):
        return f"release {event.lock.describe()}"
    if isinstance(event, ThreadStartEvent):
        return f"start {event.name}#{event.child}"
    if isinstance(event, ThreadEndEvent):
        suffix = f" ({event.error.type})" if event.error else ""
        return f"end{suffix}"
    if isinstance(event, ErrorEvent):
        where = f" at {event.stmt.site}" if event.stmt else ""
        return f"!! {event.error.type}: {event.error.message}{where}"
    if isinstance(event, SndEvent):
        return f"snd m{event.msg_id}"
    if isinstance(event, RcvEvent):
        return f"rcv m{event.msg_id}"
    if isinstance(event, DeadlockEvent):
        return f"DEADLOCK {list(event.blocked)}"
    return type(event).__name__


def format_trace(
    events: list[Event],
    *,
    show_messages: bool = False,
    highlight_stmts: frozenset | None = None,
    max_events: int | None = None,
) -> str:
    """Render events as a per-thread interleaving listing.

    Args:
        events: the trace, in execution order.
        show_messages: include SND/RCV happens-before bookkeeping rows.
        highlight_stmts: statements to mark with ``>>`` (e.g. a racing pair).
        max_events: truncate long traces (a note records the omission).
    """
    tids = sorted({event.tid for event in events if event.tid >= 0})
    column_of = {tid: index for index, tid in enumerate(tids)}
    width = 34
    header = "step  " + "".join(f"T{tid}".ljust(width) for tid in tids)
    lines = [header, "-" * len(header)]
    # Filter first so the truncation note can account honestly: the
    # hidden count must cover only displayable rows that were cut, not
    # SND/RCV rows that would never have been shown (nor rows already
    # printed above the note).
    rows = [
        event
        for event in events
        if show_messages or not isinstance(event, (SndEvent, RcvEvent))
    ]
    filtered = len(events) - len(rows)
    shown = len(rows) if max_events is None else min(max_events, len(rows))
    for event in rows[:shown]:
        text = _describe(event)
        marker = "  "
        if (
            highlight_stmts
            and isinstance(event, MemEvent)
            and event.stmt in highlight_stmts
        ):
            marker = ">>"
        if event.tid < 0:  # engine-level events (deadlock)
            lines.append(f"{event.step:>4}  {text}")
            continue
        indent = column_of[event.tid] * width
        lines.append(f"{event.step:>4}  " + " " * indent + f"{marker}{text}")
    if shown < len(rows):
        note = (
            f"... truncated: showing {shown} of {len(rows)} events, "
            f"{len(rows) - shown} hidden"
        )
        if filtered:
            note += f" ({filtered} SND/RCV rows filtered)"
        lines.append(note)
    return "\n".join(lines)


def format_trace_file(path, **kwargs) -> str:
    """Render a recorded trace file as an interleaving listing.

    Built on :class:`~repro.trace.TraceReader`, so the diagram renders
    from any trace the ``record`` command (or a :class:`TraceStore`)
    produced — no re-execution, no live ``Execution`` required.  Keyword
    arguments pass through to :func:`format_trace`.
    """
    from repro.trace import TraceReader  # deferred: trace imports runtime only

    with TraceReader(path) as reader:
        header = reader.header
        events = reader.read_events()
        footer = reader.footer
    lines = [
        f"trace: {header.program} seed={header.seed} "
        f"scheduler={header.scheduler or '?'}",
        "",
        format_trace(events, **kwargs),
    ]
    if footer is not None:
        summary = f"steps={footer.steps} events={footer.events}"
        if footer.crashes:
            kinds = ", ".join(
                sorted((c.get("e") or {}).get("t", "?") for c in footer.crashes)
            )
            summary += f" crashes=[{kinds}]"
        if footer.deadlock:
            summary += f" DEADLOCK {list(footer.deadlocked_tids)}"
        if footer.truncated:
            summary += " (truncated by max_steps)"
        lines += ["", f"result: {summary}"]
    return "\n".join(lines)


def format_replay(replayed, pair=None, **kwargs) -> str:
    """Render a :class:`~repro.core.replay.ReplayedRun` with its racing
    pair highlighted."""
    highlight = None
    if pair is not None:
        highlight = frozenset({pair.first, pair.second})
    body = format_trace(replayed.events, highlight_stmts=highlight, **kwargs)
    outcome = replayed.outcome
    footer = [
        "",
        f"result: {outcome.result}",
        f"races created: {len(outcome.hits)} "
        f"({', '.join(sorted(str(p) for p in outcome.pairs_created)) or 'none'})",
    ]
    return body + "\n".join(footer)
