"""Human-readable rendering of execution traces.

The paper's replay feature exists for *debugging*: once a seed reproduces
a race, the developer wants to read the interleaving.  This module turns
an event list (from :class:`~repro.runtime.observer.EventTrace` or
:func:`~repro.core.replay.replay_race`) into an aligned listing, one
column per thread, in execution order — the classic interleaving diagram.
"""

from __future__ import annotations

from repro.runtime.events import (
    AcquireEvent,
    DeadlockEvent,
    ErrorEvent,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)


def _describe(event: Event) -> str:
    if isinstance(event, MemEvent):
        verb = "write" if event.is_write else "read"
        locks = (
            " {" + ",".join(sorted(l.describe() for l in event.locks_held)) + "}"
            if event.locks_held
            else ""
        )
        return f"{verb} {event.location.describe()} @ {event.stmt.site}{locks}"
    if isinstance(event, AcquireEvent):
        return f"acquire {event.lock.describe()}"
    if isinstance(event, ReleaseEvent):
        return f"release {event.lock.describe()}"
    if isinstance(event, ThreadStartEvent):
        return f"start {event.name}#{event.child}"
    if isinstance(event, ThreadEndEvent):
        suffix = f" ({type(event.error).__name__})" if event.error else ""
        return f"end{suffix}"
    if isinstance(event, ErrorEvent):
        where = f" at {event.stmt.site}" if event.stmt else ""
        return f"!! {type(event.error).__name__}: {event.error}{where}"
    if isinstance(event, SndEvent):
        return f"snd m{event.msg_id}"
    if isinstance(event, RcvEvent):
        return f"rcv m{event.msg_id}"
    if isinstance(event, DeadlockEvent):
        return f"DEADLOCK {list(event.blocked)}"
    return type(event).__name__


def format_trace(
    events: list[Event],
    *,
    show_messages: bool = False,
    highlight_stmts: frozenset | None = None,
    max_events: int | None = None,
) -> str:
    """Render events as a per-thread interleaving listing.

    Args:
        events: the trace, in execution order.
        show_messages: include SND/RCV happens-before bookkeeping rows.
        highlight_stmts: statements to mark with ``>>`` (e.g. a racing pair).
        max_events: truncate long traces (a note records the omission).
    """
    tids = sorted({event.tid for event in events if event.tid >= 0})
    column_of = {tid: index for index, tid in enumerate(tids)}
    width = 34
    header = "step  " + "".join(f"T{tid}".ljust(width) for tid in tids)
    lines = [header, "-" * len(header)]
    shown = 0
    for event in events:
        if not show_messages and isinstance(event, (SndEvent, RcvEvent)):
            continue
        if max_events is not None and shown >= max_events:
            lines.append(f"... {len(events)} events total (truncated)")
            break
        text = _describe(event)
        marker = "  "
        if (
            highlight_stmts
            and isinstance(event, MemEvent)
            and event.stmt in highlight_stmts
        ):
            marker = ">>"
        if event.tid < 0:  # engine-level events (deadlock)
            lines.append(f"{event.step:>4}  {text}")
            shown += 1
            continue
        indent = column_of[event.tid] * width
        lines.append(f"{event.step:>4}  " + " " * indent + f"{marker}{text}")
        shown += 1
    return "\n".join(lines)


def format_replay(replayed, pair=None, **kwargs) -> str:
    """Render a :class:`~repro.core.replay.ReplayedRun` with its racing
    pair highlighted."""
    highlight = None
    if pair is not None:
        highlight = frozenset({pair.first, pair.second})
    body = format_trace(replayed.events, highlight_stmts=highlight, **kwargs)
    outcome = replayed.outcome
    footer = [
        "",
        f"result: {outcome.result}",
        f"races created: {len(outcome.hits)} "
        f"({', '.join(sorted(str(p) for p in outcome.pairs_created)) or 'none'})",
    ]
    return body + "\n".join(footer)
