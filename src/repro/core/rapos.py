"""RAPOS — random partial-order sampling (Sen, ASE 2007; [45] in the paper).

The paper positions RaceFuzzer against the author's own earlier baseline:
"We recently proposed an effective random testing algorithm, called RAPOS,
to sample partial orders almost uniformly at random.  However, we observed
that RAPOS cannot often discover error-prone schedules with high
probability because the number of partial orders ... can be astronomically
large.  Therefore, we focused on testing error-prone schedules."

This module reimplements RAPOS from its published description so the
comparison can be *run* (``benchmarks/bench_rapos_comparison.py``): instead
of a uniform random walk over interleavings (which oversamples schedules
with many equivalent linearizations), RAPOS repeatedly

1. takes the set of enabled threads,
2. samples a random subset whose pending operations are pairwise
   *independent* (no two touch the same location with a write, contend for
   the same lock, or otherwise interact) — each independent candidate is
   included with probability 1/2, so batch composition itself is sampled
   rather than maximal,
3. executes that whole batch in random order, then repeats.

Batching independent operations collapses equivalent interleavings, so the
walk is spread over partial orders rather than totals.  It remains a
*passive* technique: nothing steers it toward the racing pair, which is
exactly the gap RaceFuzzer fills.
"""

from __future__ import annotations

from repro.runtime.interpreter import Execution, ExecutionResult
from repro.runtime.ops import Op, OpKind
from repro.runtime.program import Program


def _dependent(first: Op, second: Op) -> bool:
    """Would executing these two operations in either order differ?

    Conservative dependence: conflicting accesses to one location, any two
    operations on the same lock, and all thread-lifecycle ops (spawn/join/
    interrupt) depend on everything — they change the thread structure the
    batch was sampled against.
    """
    structural = (OpKind.SPAWN, OpKind.JOIN, OpKind.INTERRUPT)
    if first.kind in structural or second.kind in structural:
        return True
    if first.is_mem and second.is_mem:
        if first.location == second.location:
            return first.is_write or second.is_write
        return False
    if first.lock is not None and second.lock is not None:
        return first.lock == second.lock
    return False


class RaposDriver:
    """Executes a program by sampling batches of independent operations."""

    def __init__(self, max_steps: int = 1_000_000):
        self.max_steps = max_steps

    def run(self, program: Program, seed: int = 0, observers=()) -> ExecutionResult:
        """One RAPOS-sampled execution (optionally observed, e.g. traced)."""
        execution = Execution(
            program, seed=seed, observers=observers, max_steps=self.max_steps
        )
        execution.start()
        rng = execution.rng
        while True:
            enabled = execution.schedulable()
            if not enabled:
                break
            batch = self._sample_independent_batch(execution, enabled)
            rng.shuffle(batch)
            for tid in batch:
                # A batch member may have been disabled by an earlier batch
                # member only if our independence test missed an interaction;
                # being conservative there makes this a no-op guard.
                if execution.is_enabled(tid):
                    execution.step(tid)
        return execution.finish()

    def _sample_independent_batch(
        self, execution: Execution, enabled: list[int]
    ) -> list[int]:
        """A random pairwise-independent subset of the enabled threads.

        Candidates are visited in shuffled order; each one that is
        independent of the batch so far joins with probability 1/2 (a
        maximal batch would make the sampler nearly deterministic on
        straight-line programs — the randomness must extend to batch
        composition, not just batch order).
        """
        rng = execution.rng
        candidates = list(enabled)
        rng.shuffle(candidates)
        batch: list[int] = []
        batch_ops: list[Op] = []
        for tid in candidates:
            op = execution.next_op(tid)
            if op is None:
                continue
            if any(_dependent(op, other) for other in batch_ops):
                continue
            if rng.random() < 0.5:
                batch.append(tid)
                batch_ops.append(op)
        if not batch:  # always make progress
            batch = [candidates[0]]
        return batch


def rapos_exceptions(program: Program, runs: int = 100, **kwargs):
    """Exception census over RAPOS runs (the Table-1-style baseline column)."""
    from collections import Counter

    census: Counter = Counter()
    driver = RaposDriver(**kwargs)
    for seed in range(runs):
        result = driver.run(program, seed=seed)
        for crash_type in result.exception_types:
            census[crash_type] += 1
        if result.deadlock:
            census["Deadlock"] += 1
    return census
