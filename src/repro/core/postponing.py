"""The postponing main loop shared by all active random fuzzers.

This is Algorithm 1 of the paper with its target-specific predicates pulled
out into overridable hooks, because Section 1 observes that "the only thing
the random scheduler needs to know is a set of statements whose simultaneous
execution could lead to a concurrency problem" — races, atomicity
violations, or deadlocks.  :class:`~repro.core.racefuzzer.RaceFuzzer`
instantiates the hooks with the racing-pair semantics of Algorithm 2;
the deadlock and atomicity fuzzers instantiate them differently.

Loop structure (paper line numbers in comments):

* pick a random enabled thread outside ``postponed``       (line 5)
* if its next statement is a target statement:             (line 6)
  * find conflicting postponed threads ``R``               (line 7, Alg. 2)
  * if ``R`` nonempty: the target situation is *real* —
    report it and resolve randomly                         (lines 8-19)
  * else postpone the thread                               (line 21)
* otherwise just execute                                   (line 24)
* if every enabled thread is postponed, release one        (lines 26-28)
* at termination, report a real deadlock if threads remain (lines 30-32)

Two engineering details from Section 4 are included: the livelock watchdog
(a postponed thread is released after ``patience`` global steps, standing
in for the paper's monitor thread) and sync-only preemption (threads run
without interruption between synchronization operations and target
statements, keeping the instrumentation-free fast path fast).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import time

from repro.obs import WALL_BUCKETS, maybe_registry
from repro.obs.timeline import maybe_timeline
from repro.runtime.errors import ExecutionLimitExceeded
from repro.runtime.interpreter import Execution, ExecutionResult
from repro.runtime.observer import ExecutionObserver
from repro.runtime.program import Program
from repro.runtime.statement import StatementPair


@dataclass(frozen=True)
class TargetHit:
    """One moment at which the fuzzer created the targeted situation."""

    step: int
    pair: StatementPair
    tids: tuple[int, int]
    location_name: str
    #: True if the coin flip executed the newly arrived thread first.
    executed_arrival: bool


@dataclass
class FuzzResult:
    """Outcome of one active-fuzzing execution."""

    result: ExecutionResult
    hits: list[TargetHit] = field(default_factory=list)
    #: distinct statement pairs actually brought temporally adjacent.
    pairs_created: set[StatementPair] = field(default_factory=set)
    #: how many times the postponed set had to be force-drained (line 27).
    forced_releases: int = 0
    #: how many times the livelock watchdog released a thread.
    watchdog_releases: int = 0
    #: how many times a thread entered the postponed set (lines 14 and 21).
    postpones: int = 0
    #: how many line-11 coin flips resolved a created racing situation.
    coin_flips: int = 0
    #: largest size the postponed set reached during this trial.
    postponed_high_water: int = 0

    @property
    def created(self) -> bool:
        """Did any targeted situation actually occur?"""
        return bool(self.hits)

    @property
    def crashes(self):
        return self.result.crashes

    @property
    def deadlock(self) -> bool:
        return self.result.deadlock

    def __str__(self) -> str:
        status = f"{len(self.hits)} hit(s), pairs={sorted(map(str, self.pairs_created))}"
        return f"FuzzResult[{status}] {self.result}"


class PostponingDriver:
    """Template for Algorithm 1; subclasses define what a "target" is."""

    def __init__(
        self,
        *,
        preemption: str = "sync",
        patience: int = 400,
        max_steps: int = 1_000_000,
        observers: Iterable[ExecutionObserver] = (),
        fast_mode: bool = False,
    ) -> None:
        if preemption not in ("every", "sync"):
            raise ValueError(f"unknown preemption mode: {preemption!r}")
        self.preemption = preemption
        self.patience = patience
        self.max_steps = max_steps
        self.observers = tuple(observers)
        self.fast_mode = fast_mode

    # --- hooks for subclasses ------------------------------------------- #

    def fast_mode_statements(self):
        """Statements whose MemEvents fast mode keeps (None = no filter).

        In fast mode the execution suppresses MemEvent emission for every
        statement *outside* this set; sync/thread/msg events are always
        emitted.  Subclasses that know their target statements (RaceFuzzer's
        racing pair) override this.  The base returns ``None`` — fast mode
        is then a no-op filter-wise — so drivers without a statement-shaped
        target stay correct.  (Named ``fast_mode_statements`` rather than
        ``target_statements`` because DeadlockFuzzer already uses the latter
        as an attribute.)
        """
        return None

    def timeline_target(self) -> str:
        """Label identifying what this driver is fuzzing, for the campaign
        timeline's per-trial events.  The base has no statement-shaped
        target; :class:`~repro.core.racefuzzer.RaceFuzzer` returns its
        pair label so trials group under one pair track."""
        return ""

    def is_target(self, execution: Execution, tid: int) -> bool:
        """Is ``tid``'s next statement in the target set? (line 6)"""
        raise NotImplementedError

    def conflicting(
        self, execution: Execution, tid: int, postponed: list[int]
    ) -> list[int]:
        """Algorithm 2: postponed threads whose next op conflicts with
        ``tid``'s next op (for races: same location, at least one write)."""
        raise NotImplementedError

    def on_hit(self, execution: Execution, hit: TargetHit) -> None:
        """Called whenever the targeted situation is created."""

    def resolve_arrival_first(
        self, execution: Execution, tid: int, rivals: list[int]
    ) -> bool:
        """Line 11's coin flip: True executes the arriving thread first.

        RaceFuzzer keeps the fair coin; the atomicity fuzzer overrides this
        to force the non-serializable order.
        """
        return execution.rng.random() < 0.5

    # --- the main loop ---------------------------------------------------- #

    def run(self, program: Program, seed: int = 0) -> FuzzResult:
        """Execute ``program`` once under the active random scheduler."""
        tl = maybe_timeline()
        trial_wall = time.time() if tl is not None else 0.0
        execution = Execution(
            program,
            seed=seed,
            observers=self.observers,
            max_steps=self.max_steps,
            mem_filter=self.fast_mode_statements() if self.fast_mode else None,
        )
        execution.start()
        fuzz = FuzzResult(result=execution.result)
        postponed: dict[int, int] = {}  # tid -> step at which it was postponed
        # Threads released from `postponed` (lines 26-28 or the watchdog)
        # get a one-shot exemption so they "execute the remaining
        # statements" (the paper's Case 1 narrative) instead of being
        # re-postponed at the same statement forever.
        exempt: set[int] = set()
        rng = execution.rng

        try:
            while True:
                enabled = execution.schedulable()
                if not enabled:
                    break
                self._run_watchdog(execution, postponed, exempt, fuzz)
                enabled_set = set(enabled)
                for tid in list(postponed):
                    if tid not in enabled_set:  # died or became blocked: drop it
                        del postponed[tid]
                choosable = [tid for tid in enabled if tid not in postponed]
                if not choosable:
                    # Lines 26-28: everyone is postponed; release one at random.
                    victim = sorted(postponed)[rng.randrange(len(postponed))]
                    del postponed[victim]
                    exempt.add(victim)
                    fuzz.forced_releases += 1
                    continue
                tid = choosable[rng.randrange(len(choosable))]
                if self.is_target(execution, tid) and tid not in exempt:
                    rivals = self.conflicting(execution, tid, sorted(postponed))
                    if rivals:
                        self._resolve(execution, tid, rivals, postponed, fuzz)
                    else:
                        postponed[tid] = execution.step_count  # line 21
                        fuzz.postpones += 1
                        if len(postponed) > fuzz.postponed_high_water:
                            fuzz.postponed_high_water = len(postponed)
                else:
                    exempt.discard(tid)
                    self._execute_run(execution, tid, postponed, exempt, fuzz)
        except ExecutionLimitExceeded:
            # The budget check in `schedulable()` catches most exhaustion,
            # but race resolution (lines 12/15-18) steps threads directly
            # and can hit the limit mid-burst.  A livelocked trial is a
            # *truncated* data point, never a campaign abort.
            execution.result.truncated = True

        execution.finish()
        m = maybe_registry()
        if m is not None:
            m.inc("fuzz.trials")
            if fuzz.created:
                m.inc("fuzz.trials_created")
            m.inc("fuzz.races_created", len(fuzz.hits))
            m.inc("fuzz.postpones", fuzz.postpones)
            m.inc("fuzz.coin_flips", fuzz.coin_flips)
            m.inc("fuzz.forced_releases", fuzz.forced_releases)
            m.inc("fuzz.watchdog_releases", fuzz.watchdog_releases)
            m.gauge_max("fuzz.postponed_high_water", fuzz.postponed_high_water)
            m.observe(
                "fuzz.trial_wall_s", execution.result.wall_time,
                bounds=WALL_BUCKETS,
            )
        if tl is not None:
            # Identity is schedule-determined (target + seed + counters);
            # wall/duration ride along for Perfetto export only.
            tl.emit(
                "trial",
                (self.timeline_target() or program.name, seed),
                {
                    "created": len(fuzz.hits),
                    "postpones": fuzz.postpones,
                    "coin_flips": fuzz.coin_flips,
                    "forced": fuzz.forced_releases,
                    "watchdog": fuzz.watchdog_releases,
                },
                wall_s=trial_wall,
                dur_s=execution.result.wall_time,
            )
        return fuzz

    # --- internals -------------------------------------------------------- #

    def _resolve(
        self,
        execution: Execution,
        tid: int,
        rivals: list[int],
        postponed: dict[int, int],
        fuzz: FuzzResult,
    ) -> None:
        """Lines 8-19: report the created situation and resolve it randomly."""
        stmt = execution.next_stmt(tid)
        op = execution.next_op(tid)
        location_name = op.location.describe() if op.location is not None else "?"
        execute_arrival = self.resolve_arrival_first(execution, tid, rivals)
        fuzz.coin_flips += 1
        for rival in rivals:
            hit = TargetHit(
                step=execution.step_count,
                pair=StatementPair(stmt, execution.next_stmt(rival)),
                tids=(tid, rival),
                location_name=location_name,
                executed_arrival=execute_arrival,
            )
            fuzz.hits.append(hit)
            fuzz.pairs_created.add(hit.pair)
            self.on_hit(execution, hit)
        if execute_arrival:
            execution.step(tid)  # line 12; rivals stay postponed
        else:
            postponed[tid] = execution.step_count  # line 14
            fuzz.postpones += 1
            if len(postponed) > fuzz.postponed_high_water:
                fuzz.postponed_high_water = len(postponed)
            for rival in rivals:  # lines 15-18
                execution.step(rival)
                postponed.pop(rival, None)

    def _execute_run(
        self,
        execution: Execution,
        tid: int,
        postponed: dict[int, int],
        exempt: set[int],
        fuzz: FuzzResult,
    ) -> None:
        """Line 24, plus the sync-only preemption burst from Section 4."""
        execution.step(tid)
        if self.preemption != "sync":
            return
        # The burst loop runs once per step of every trial, observed or
        # not, so it fetches the thread state once per iteration instead
        # of going through is_enabled/next_op (a fetch each).
        threads = execution.threads
        max_steps = self.max_steps
        while execution.ops_executed < max_steps:
            ts = threads.get(tid)
            if ts is None or not execution._enabled(ts):
                return
            op = ts.pending
            if op is None or op.is_sync:
                return
            if self.is_target(execution, tid):
                return
            execution.step(tid)
            if postponed and (execution.step_count & 0x3F) == 0:
                # Long uninterrupted bursts must not starve the watchdog
                # (the paper's monitor thread runs concurrently; we poll).
                self._run_watchdog(execution, postponed, exempt, fuzz)

    def _run_watchdog(
        self,
        execution: Execution,
        postponed: dict[int, int],
        exempt: set[int],
        fuzz: FuzzResult,
    ) -> None:
        """Section 4's livelock breaker: free threads postponed too long."""
        now = execution.step_count
        for tid, since in list(postponed.items()):
            if now - since > self.patience:
                del postponed[tid]
                exempt.add(tid)
                fuzz.watchdog_releases += 1
