"""Atomicity-violation-directed active random testing.

The second Section-1 generalization: instead of a racing pair, the target
is an *atomic region* — two program points ``(first, second)`` that one
thread intends to execute atomically with respect to some rival statement
in another thread (the classic check-then-act pattern: a lock-protected
read, the lock released, then a lock-protected write based on the stale
read).

The scheduler postpones a thread that reaches ``second`` (having executed
``first`` already, by program order) and postpones rivals that reach
``rival``; when both sides are present the violation is *forced* by
serializing the rival's access between ``first`` and ``second`` — unlike
RaceFuzzer's fair coin, the resolution is deterministic, because only one
order is non-serializable.

Two practical notes, both consequences of the target pattern usually being
lock-protected (these violations are **not** data races — the JDK
``containsAll`` bugs are exactly such check-then-act violations):

* ``second`` — and the rival point too — is typically the *lock
  acquisition* guarding the access, not the access itself: a thread
  postponed inside a critical section would block the other side out of
  its own critical section and the rendezvous could never form.  Pass the
  acquire statements (label them).
* conflict detection is role-based (one side at ``second``, the other at
  ``rival``) rather than location-based, since a pending lock acquisition
  has no memory location to compare.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.interpreter import Execution
from repro.runtime.statement import Statement

from .postponing import PostponingDriver


@dataclass(frozen=True)
class AtomicRegion:
    """Two same-thread program points intended to execute atomically."""

    first: Statement
    second: Statement

    def __str__(self) -> str:
        return f"[{self.first.site} .. {self.second.site}]"


class AtomicityFuzzer(PostponingDriver):
    """Forces a rival access between the two halves of an atomic region.

    A hit (``outcome.created``) means the non-serializable interleaving
    ``first ... rival ... second`` was actually produced; whether it is a
    *violation* shows up as crashes/assertion failures exactly as with
    RaceFuzzer.
    """

    def __init__(self, region: AtomicRegion, rival: Statement, **kwargs):
        super().__init__(**kwargs)
        self.region = region
        self.rival = rival
        self._targets = frozenset({region.second, rival})

    def is_target(self, execution: Execution, tid: int) -> bool:
        return execution.next_stmt(tid) in self._targets

    def conflicting(self, execution: Execution, tid: int, postponed):
        """Role-based conflict: a region half meets a postponed rival (or
        vice versa).  No location comparison — see the module docstring."""
        my_stmt = execution.next_stmt(tid)
        wanted = self.rival if my_stmt == self.region.second else self.region.second
        return [
            other for other in postponed if execution.next_stmt(other) == wanted
        ]

    def resolve_arrival_first(self, execution, tid, rivals) -> bool:
        """Always serialize the rival access *inside* the region."""
        return execution.next_stmt(tid) == self.rival
