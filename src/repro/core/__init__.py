"""Phase 2: active random testing (the paper's contribution).

* :class:`RaceFuzzer` — Algorithms 1 and 2;
* :func:`race_directed_test` — the full two-phase pipeline;
* :func:`detect_races` / :func:`fuzz_races` — the phases individually;
* :func:`baseline_exceptions` — passive-scheduler control runs;
* :mod:`~repro.core.replay` — seed-based deterministic replay;
* :class:`DeadlockFuzzer` / :class:`AtomicityFuzzer` — the Section 1
  generalization to other concurrency targets.
"""

from .atomicity_detect import AtomicityCandidate, detect_atomic_regions
from .coverage import CoverageReport, conflict_signature, measure_coverage
from .atomicityfuzzer import AtomicityFuzzer, AtomicRegion
from .deadlockfuzzer import DeadlockFuzzer, detect_lock_order_inversions
from .driver import baseline_exceptions, detect_races, fuzz_races, race_directed_test
from .faults import FaultPlan, FaultSpec, InjectedCrash, parse_fault_plan
from .parallel import (
    BaselineTask,
    DetectTask,
    FuzzTask,
    ParallelCampaign,
    RecordTask,
    chunk_ranges,
    fuzz_task_key,
    pool_map,
)
from .postponing import FuzzResult, PostponingDriver, TargetHit
from .racefuzzer import RaceFuzzer, fuzz_pair
from .rapos import RaposDriver, rapos_exceptions
from .replay import (
    ReplayedRun,
    replay_race,
    replays_identically,
    schedule_signature,
    signature_from_trace,
)
from .results import CampaignReport, PairVerdict, TaskFailure
from .schedule import (
    SCHEDULES,
    AdaptiveSchedule,
    CampaignSchedule,
    FixedSchedule,
    TrialChunk,
    make_schedule,
)
from .supervisor import (
    CampaignSupervisor,
    RetryPolicy,
    SupervisorReport,
    TaskDeadlineExceeded,
    compute_backoff,
)
from .schedulers import (
    SCHEDULERS,
    DefaultScheduler,
    RandomScheduler,
    Scheduler,
    baseline_scheduler,
)

__all__ = [
    "RaceFuzzer",
    "fuzz_pair",
    "FuzzResult",
    "TargetHit",
    "PostponingDriver",
    "race_directed_test",
    "detect_races",
    "fuzz_races",
    "baseline_exceptions",
    "CampaignReport",
    "PairVerdict",
    "ReplayedRun",
    "replay_race",
    "replays_identically",
    "Scheduler",
    "RandomScheduler",
    "DefaultScheduler",
    "baseline_scheduler",
    "SCHEDULERS",
    "DeadlockFuzzer",
    "detect_lock_order_inversions",
    "AtomicityFuzzer",
    "AtomicRegion",
    "AtomicityCandidate",
    "detect_atomic_regions",
    "ParallelCampaign",
    "DetectTask",
    "FuzzTask",
    "RecordTask",
    "BaselineTask",
    "schedule_signature",
    "signature_from_trace",
    "chunk_ranges",
    "fuzz_task_key",
    "pool_map",
    "CampaignSchedule",
    "FixedSchedule",
    "AdaptiveSchedule",
    "TrialChunk",
    "make_schedule",
    "SCHEDULES",
    "CampaignSupervisor",
    "SupervisorReport",
    "RetryPolicy",
    "compute_backoff",
    "TaskDeadlineExceeded",
    "TaskFailure",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "parse_fault_plan",
    "RaposDriver",
    "rapos_exceptions",
    "CoverageReport",
    "conflict_signature",
    "measure_coverage",
]
