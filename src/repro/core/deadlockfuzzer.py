"""Deadlock-directed active random testing.

Section 1 of the paper notes that the race-directed scheduler generalizes:
"we can bias the random scheduler by other potential concurrency problems
such as ... potential deadlocks.  The only thing that the random scheduler
needs to know is a set of statements whose simultaneous execution could
lead to a concurrency problem."  This module is that instantiation (it is
also the seed of the follow-up DeadlockFuzzer work):

* **Phase 1 analog** — :func:`detect_lock_order_inversions` observes one or
  more random executions and builds the lock-order graph: an edge
  ``l1 → l2`` (annotated with the acquiring statement) whenever a thread
  acquires ``l2`` while holding ``l1``.  Cycles in the graph are *potential*
  deadlocks; the statements on a cycle form the target set.  Edges come
  from *successful* acquisitions only, so the miner needs executions that
  complete (a blocked attempt emits no event) — if every passive run
  already deadlocks, there is nothing left to predict.

* **Phase 2** — :class:`DeadlockFuzzer` postpones any thread about to
  acquire a target-statement lock while already holding some lock.  Holding
  threads pile up just before their inner acquisitions; as soon as the held
  locks cross (t1 holds A wants B, t2 holds B wants A) both threads become
  disabled and the engine reports a **real deadlock** at termination
  (Algorithm 1, lines 30-32).  No conflict predicate is needed — the
  deadlock materializes structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.runtime.events import AcquireEvent, Event, ReleaseEvent
from repro.runtime.interpreter import Execution
from repro.runtime.location import LockId
from repro.runtime.observer import ExecutionObserver
from repro.runtime.ops import OpKind
from repro.runtime.program import Program
from repro.runtime.statement import Statement

from .postponing import PostponingDriver
from .schedulers import RandomScheduler


@dataclass(frozen=True)
class LockOrderEdge:
    """``held -> acquired`` observed at ``stmt`` in thread ``tid``."""

    held: LockId
    acquired: LockId
    stmt: Statement
    tid: int


@dataclass
class LockOrderReport:
    """The lock-order graph plus its cyclic (potential-deadlock) part."""

    program: str
    edges: set[LockOrderEdge] = field(default_factory=set)

    def cycles(self) -> list[tuple[LockOrderEdge, ...]]:
        """All simple cycles in the lock-order graph, as edge tuples.

        A two-lock inversion yields a 2-edge cycle; dining-philosophers
        style chains yield longer ones.  Each cycle's edges are drawn from
        distinct threads where possible (a single thread cannot deadlock
        with itself on reentrant monitors).
        """
        import networkx as nx

        graph = nx.DiGraph()
        edges_by_pair: dict[tuple, list[LockOrderEdge]] = {}
        for edge in self.edges:
            graph.add_edge(edge.held, edge.acquired)
            edges_by_pair.setdefault((edge.held, edge.acquired), []).append(edge)
        found = []
        for cycle in nx.simple_cycles(graph):
            if len(cycle) < 2:
                continue
            hops = list(zip(cycle, cycle[1:] + cycle[:1]))
            witnesses = []
            used_tids: set[int] = set()
            for held, acquired in hops:
                candidates = sorted(
                    edges_by_pair[(held, acquired)], key=lambda e: e.tid
                )
                pick = next(
                    (e for e in candidates if e.tid not in used_tids),
                    candidates[0],
                )
                used_tids.add(pick.tid)
                witnesses.append(pick)
            if len({edge.tid for edge in witnesses}) < 2:
                continue  # one thread alone cannot close a reentrant cycle
            found.append(tuple(witnesses))
        return found

    def target_statements(self) -> frozenset[Statement]:
        """Acquire statements appearing on some cycle — the fuzzing targets."""
        statements: set[Statement] = set()
        for cycle in self.cycles():
            for edge in cycle:
                statements.add(edge.stmt)
        return frozenset(statements)


class _LockOrderObserver(ExecutionObserver):
    """Builds the lock-order graph from acquire/release events."""

    wants_mem_events = False

    def __init__(self) -> None:
        self.report = LockOrderReport(program="?")
        self._held: dict[int, list[LockId]] = {}

    def on_start(self, execution) -> None:
        self.report = LockOrderReport(program=execution.program.name)
        self._held.clear()

    def on_event(self, event: Event) -> None:
        if isinstance(event, AcquireEvent):
            held = self._held.setdefault(event.tid, [])
            for outer in held:
                if event.stmt is not None:
                    self.report.edges.add(
                        LockOrderEdge(
                            held=outer,
                            acquired=event.lock,
                            stmt=event.stmt,
                            tid=event.tid,
                        )
                    )
            held.append(event.lock)
        elif isinstance(event, ReleaseEvent):
            held = self._held.get(event.tid, [])
            if event.lock in held:
                held.remove(event.lock)


def detect_lock_order_inversions(
    program: Program,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_steps: int = 1_000_000,
) -> LockOrderReport:
    """Phase 1 analog: observe executions, return the lock-order report."""
    merged: LockOrderReport | None = None
    for seed in seeds:
        observer = _LockOrderObserver()
        execution = Execution(
            program, seed=seed, observers=[observer], max_steps=max_steps
        )
        execution.run(RandomScheduler(preemption="every"))
        if merged is None:
            merged = observer.report
        else:
            merged.edges |= observer.report.edges
    assert merged is not None
    return merged


class DeadlockFuzzer(PostponingDriver):
    """Postpones inner lock acquisitions at potential-deadlock statements.

    Success is observed on the returned
    :class:`~repro.core.postponing.FuzzResult` as ``outcome.deadlock``
    (with the cyclic hold visible in
    ``outcome.result.deadlocked_tids``), not via ``hits`` — the deadlock
    forms when the cross-blocked threads all become disabled.
    """

    def __init__(self, target_statements, **kwargs):
        super().__init__(**kwargs)
        self.target_statements = frozenset(target_statements)
        if not self.target_statements:
            raise ValueError("DeadlockFuzzer needs at least one target statement")

    def is_target(self, execution: Execution, tid: int) -> bool:
        op = execution.next_op(tid)
        if op is None or op.kind is not OpKind.LOCK:
            return False
        if execution.next_stmt(tid) not in self.target_statements:
            return False
        # Only a hold-and-wait is dangerous: the thread must already hold
        # some other lock for this acquisition to be an inner one.
        return bool(execution.locks.held_by(tid))

    def conflicting(self, execution, tid, postponed):
        # Deadlocks are created by *keeping* threads postponed, never by the
        # rendezvous/resolution path.
        return []
