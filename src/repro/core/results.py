"""Aggregated verdicts of a race-directed testing campaign.

The paper's experimental protocol (Section 5.2) runs RaceFuzzer ~100 times
per potentially racing pair and then reports, per benchmark: how many pairs
are *real* (created at least once), which are *harmful* (an exception was
thrown in a run where the race was created), and the per-pair probability
of hitting the race.  These classes hold exactly that data and render the
per-program slice of Table 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.detectors.report import RaceReport
from repro.runtime.statement import StatementPair

from .postponing import FuzzResult


@dataclass
class PairVerdict:
    """Everything RaceFuzzer learned about one potentially racing pair."""

    pair: StatementPair
    trials: int = 0
    times_created: int = 0
    #: exception type -> number of trials (with the race created) that threw it
    exceptions: Counter = field(default_factory=Counter)
    #: exception types seen in trials where the race was NOT created —
    #: these cannot be attributed to the pair.
    unattributed_exceptions: Counter = field(default_factory=Counter)
    deadlocks: int = 0
    #: distinct statement pairs actually created while fuzzing this pair
    #: (normally {pair} or a subset; may include same-statement races).
    created_pairs: set[StatementPair] = field(default_factory=set)
    #: summed wall-clock of all trials (for the Table 1 runtime column).
    total_wall: float = 0.0

    @property
    def is_real(self) -> bool:
        """Was a real race created at least once? (Table 1, column 7 unit)"""
        return self.times_created > 0

    @property
    def is_harmful(self) -> bool:
        """Did resolving the race ever raise an exception? (column 9 unit)"""
        return bool(self.exceptions)

    @property
    def probability(self) -> float:
        """Fraction of trials that created the race (column 11)."""
        if self.trials == 0:
            return 0.0
        return self.times_created / self.trials

    def absorb(self, outcome: FuzzResult) -> None:
        """Fold one fuzzing run into the verdict.

        A crash is *attributed* to the pair only when the race was created
        in that run AND the crashing thread took part in some race hit that
        preceded the crash — otherwise an unrelated failure elsewhere in
        the program would mark every fuzzed pair harmful.
        """
        self.trials += 1
        if outcome.created:
            self.times_created += 1
            self.created_pairs |= outcome.pairs_created
        for crash in outcome.crashes:
            caused = any(
                crash.tid in hit.tids and crash.step >= hit.step
                for hit in outcome.hits
            )
            if caused:
                self.exceptions[crash.error_type] += 1
            else:
                self.unattributed_exceptions[crash.error_type] += 1
        if outcome.deadlock:
            self.deadlocks += 1
        self.total_wall += outcome.result.wall_time

    def merge(self, other: "PairVerdict") -> None:
        """Fold in a verdict for the same pair computed elsewhere.

        This is the paper's "embarrassingly parallel" property made
        concrete: trials are independent seeded runs, so disjoint seed
        ranges can be fuzzed on different workers and their verdicts
        merged associatively (asserted in the integration suite).
        """
        if other.pair != self.pair:
            raise ValueError(f"cannot merge verdicts for {other.pair} into {self.pair}")
        self.trials += other.trials
        self.times_created += other.times_created
        self.exceptions.update(other.exceptions)
        self.unattributed_exceptions.update(other.unattributed_exceptions)
        self.deadlocks += other.deadlocks
        self.created_pairs |= other.created_pairs
        self.total_wall += other.total_wall

    def describe(self) -> str:
        verdict = "REAL" if self.is_real else "not created"
        bits = [f"{self.pair}: {verdict}", f"p={self.probability:.2f}"]
        if self.exceptions:
            bits.append(
                "exceptions=" + ",".join(f"{k}x{v}" for k, v in sorted(self.exceptions.items()))
            )
        if self.deadlocks:
            bits.append(f"deadlocks={self.deadlocks}")
        return "  ".join(bits)


@dataclass
class CampaignReport:
    """The outcome of a full two-phase run over one program."""

    program: str
    phase1: RaceReport
    verdicts: dict[StatementPair, PairVerdict] = field(default_factory=dict)

    @property
    def potential_pairs(self) -> int:
        """Table 1, column 6 ("Hybrid # of races")."""
        return len(self.phase1)

    @property
    def real_pairs(self) -> list[StatementPair]:
        """Table 1, column 7 ("RF (real)") — distinct real racing pairs.

        Counted over the pairs actually *created*, so a Phase-1 pair whose
        fuzzing surfaced a related real pair contributes what was proven.
        """
        created: set[StatementPair] = set()
        for verdict in self.verdicts.values():
            created |= verdict.created_pairs
        return sorted(created, key=str)

    @property
    def harmful_pairs(self) -> list[StatementPair]:
        """Table 1, column 9 — pairs whose race led to an exception."""
        return sorted(
            (v.pair for v in self.verdicts.values() if v.is_harmful), key=str
        )

    @property
    def exception_types(self) -> Counter:
        total: Counter = Counter()
        for verdict in self.verdicts.values():
            total.update(verdict.exceptions)
        return total

    def mean_probability(self) -> float:
        """Table 1, column 11 — average over pairs confirmed real."""
        probs = [v.probability for v in self.verdicts.values() if v.is_real]
        if not probs:
            return 0.0
        return sum(probs) / len(probs)

    def verdict_for(self, pair: StatementPair) -> PairVerdict:
        return self.verdicts[pair]

    def __str__(self) -> str:
        lines = [
            f"RaceFuzzer campaign on {self.program}: "
            f"{self.potential_pairs} potential, {len(self.real_pairs)} real, "
            f"{len(self.harmful_pairs)} harmful"
        ]
        lines.extend(f"  {v.describe()}" for v in self.verdicts.values())
        return "\n".join(lines)
