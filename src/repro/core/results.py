"""Aggregated verdicts of a race-directed testing campaign.

The paper's experimental protocol (Section 5.2) runs RaceFuzzer ~100 times
per potentially racing pair and then reports, per benchmark: how many pairs
are *real* (created at least once), which are *harmful* (an exception was
thrown in a run where the race was created), and the per-pair probability
of hitting the race.  These classes hold exactly that data and render the
per-program slice of Table 1.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.detectors.report import RaceReport
from repro.runtime.statement import Statement, StatementPair

from .postponing import FuzzResult


@dataclass(frozen=True)
class TaskFailure:
    """A quarantined campaign task: it failed every allowed attempt.

    The supervisor records one of these — instead of aborting the campaign
    — when a task exhausts its retry budget.  ``kind`` is the *final*
    failure mode (``crash`` / ``deadline`` / ``malformed`` / ``pool`` /
    ``stall`` / ``memory`` / ``disk``); ``history`` keeps one
    ``"kind: message"`` entry per failed
    attempt so a flaky-then-poisoned task is distinguishable from a
    consistently poisoned one.
    """

    phase: str
    index: int
    key: str
    kind: str
    attempts: int
    message: str
    history: tuple[str, ...] = ()

    def describe(self) -> str:
        return (
            f"{self.phase}[{self.index}] quarantined after "
            f"{self.attempts} attempt(s): {self.kind} — {self.message}"
        )

    def to_jsonable(self) -> dict:
        return {
            "phase": self.phase,
            "index": self.index,
            "key": self.key,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
            "history": list(self.history),
        }


def _statement_to_jsonable(stmt: Statement) -> dict:
    return {
        "file": stmt.file,
        "line": stmt.line,
        "func": stmt.func,
        "label": stmt.label,
    }


def _statement_from_jsonable(data: dict) -> Statement:
    return Statement(
        file=data.get("file", ""),
        line=data.get("line", 0),
        func=data.get("func", ""),
        label=data.get("label"),
    )


def _pair_to_jsonable(pair: StatementPair) -> list[dict]:
    return [_statement_to_jsonable(pair.first), _statement_to_jsonable(pair.second)]


def _pair_from_jsonable(data: list) -> StatementPair:
    return StatementPair(
        _statement_from_jsonable(data[0]), _statement_from_jsonable(data[1])
    )


@dataclass
class PairVerdict:
    """Everything RaceFuzzer learned about one potentially racing pair."""

    pair: StatementPair
    trials: int = 0
    times_created: int = 0
    #: exception type -> number of trials (with the race created) that threw it
    exceptions: Counter = field(default_factory=Counter)
    #: exception types seen in trials where the race was NOT created —
    #: these cannot be attributed to the pair.
    unattributed_exceptions: Counter = field(default_factory=Counter)
    deadlocks: int = 0
    #: trials whose execution hit the abstract ``max_steps`` budget (a
    #: possible livelock); counted, never aborted on.
    truncated: int = 0
    #: distinct statement pairs actually created while fuzzing this pair
    #: (normally {pair} or a subset; may include same-statement races).
    created_pairs: set[StatementPair] = field(default_factory=set)
    #: summed wall-clock of all trials (for the Table 1 runtime column).
    total_wall: float = 0.0
    #: quarantined seed chunks for this pair: tasks whose every retry
    #: failed, so ``trials`` is short of the requested count.
    errors: list[TaskFailure] = field(default_factory=list)

    @property
    def is_real(self) -> bool:
        """Was a real race created at least once? (Table 1, column 7 unit)"""
        return self.times_created > 0

    @property
    def is_harmful(self) -> bool:
        """Did resolving the race ever raise an exception? (column 9 unit)"""
        return bool(self.exceptions)

    @property
    def probability(self) -> float:
        """Fraction of trials that created the race (column 11)."""
        if self.trials == 0:
            return 0.0
        return self.times_created / self.trials

    def absorb(self, outcome: FuzzResult) -> None:
        """Fold one fuzzing run into the verdict.

        A crash is *attributed* to the pair only when the race was created
        in that run AND the crashing thread took part in some race hit that
        preceded the crash — otherwise an unrelated failure elsewhere in
        the program would mark every fuzzed pair harmful.
        """
        self.trials += 1
        if outcome.created:
            self.times_created += 1
            self.created_pairs |= outcome.pairs_created
        for crash in outcome.crashes:
            caused = any(
                crash.tid in hit.tids and crash.step >= hit.step
                for hit in outcome.hits
            )
            if caused:
                self.exceptions[crash.error_type] += 1
            else:
                self.unattributed_exceptions[crash.error_type] += 1
        if outcome.deadlock:
            self.deadlocks += 1
        if outcome.result.truncated:
            self.truncated += 1
        self.total_wall += outcome.result.wall_time

    def merge(self, other: "PairVerdict") -> None:
        """Fold in a verdict for the same pair computed elsewhere.

        This is the paper's "embarrassingly parallel" property made
        concrete: trials are independent seeded runs, so disjoint seed
        ranges can be fuzzed on different workers and their verdicts
        merged associatively (asserted in the integration suite).
        """
        if other.pair != self.pair:
            raise ValueError(f"cannot merge verdicts for {other.pair} into {self.pair}")
        self.trials += other.trials
        self.times_created += other.times_created
        self.exceptions.update(other.exceptions)
        self.unattributed_exceptions.update(other.unattributed_exceptions)
        self.deadlocks += other.deadlocks
        self.truncated += other.truncated
        self.created_pairs |= other.created_pairs
        self.total_wall += other.total_wall
        self.errors.extend(other.errors)

    @property
    def quarantined(self) -> bool:
        """Did any of this pair's seed chunks exhaust its retries?"""
        return bool(self.errors)

    def describe(self) -> str:
        verdict = "REAL" if self.is_real else "not created"
        bits = [f"{self.pair}: {verdict}", f"p={self.probability:.2f}"]
        if self.exceptions:
            bits.append(
                "exceptions=" + ",".join(f"{k}x{v}" for k, v in sorted(self.exceptions.items()))
            )
        if self.deadlocks:
            bits.append(f"deadlocks={self.deadlocks}")
        if self.truncated:
            bits.append(f"truncated={self.truncated}")
        if self.errors:
            bits.append(f"QUARANTINED chunks={len(self.errors)}")
        return "  ".join(bits)

    def to_jsonable(self) -> dict:
        """The checkpoint-journal form: everything deterministic plus wall.

        ``errors`` is deliberately excluded — only *successful* chunk
        verdicts are journaled, and quarantine records belong to the run
        that observed the failures, not the resumed one.
        """
        return {
            "pair": _pair_to_jsonable(self.pair),
            "trials": self.trials,
            "times_created": self.times_created,
            "exceptions": dict(self.exceptions),
            "unattributed_exceptions": dict(self.unattributed_exceptions),
            "deadlocks": self.deadlocks,
            "truncated": self.truncated,
            "created_pairs": [_pair_to_jsonable(p) for p in sorted(self.created_pairs, key=str)],
            "total_wall": self.total_wall,
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "PairVerdict":
        return cls(
            pair=_pair_from_jsonable(data["pair"]),
            trials=data["trials"],
            times_created=data["times_created"],
            exceptions=Counter(data.get("exceptions", {})),
            unattributed_exceptions=Counter(data.get("unattributed_exceptions", {})),
            deadlocks=data.get("deadlocks", 0),
            truncated=data.get("truncated", 0),
            created_pairs={
                _pair_from_jsonable(p) for p in data.get("created_pairs", [])
            },
            total_wall=data.get("total_wall", 0.0),
        )


@dataclass
class CampaignReport:
    """The outcome of a full two-phase run over one program."""

    program: str
    phase1: RaceReport
    verdicts: dict[StatementPair, PairVerdict] = field(default_factory=dict)
    #: every quarantined task of the campaign, both phases — a Phase-1
    #: seed whose detection run kept failing, or a Phase-2 (pair, chunk)
    #: whose trials could not be completed.  A non-empty list means the
    #: campaign *finished* but its coverage is incomplete.
    failures: list[TaskFailure] = field(default_factory=list)

    @property
    def quarantined(self) -> bool:
        """Did any task of this campaign end quarantined?"""
        return bool(self.failures) or any(
            v.quarantined for v in self.verdicts.values()
        )

    @property
    def potential_pairs(self) -> int:
        """Table 1, column 6 ("Hybrid # of races")."""
        return len(self.phase1)

    @property
    def real_pairs(self) -> list[StatementPair]:
        """Table 1, column 7 ("RF (real)") — distinct real racing pairs.

        Counted over the pairs actually *created*, so a Phase-1 pair whose
        fuzzing surfaced a related real pair contributes what was proven.
        """
        created: set[StatementPair] = set()
        for verdict in self.verdicts.values():
            created |= verdict.created_pairs
        return sorted(created, key=str)

    @property
    def harmful_pairs(self) -> list[StatementPair]:
        """Table 1, column 9 — pairs whose race led to an exception."""
        return sorted(
            (v.pair for v in self.verdicts.values() if v.is_harmful), key=str
        )

    @property
    def exception_types(self) -> Counter:
        total: Counter = Counter()
        for verdict in self.verdicts.values():
            total.update(verdict.exceptions)
        return total

    def mean_probability(self) -> float:
        """Table 1, column 11 — average over pairs confirmed real."""
        probs = [v.probability for v in self.verdicts.values() if v.is_real]
        if not probs:
            return 0.0
        return sum(probs) / len(probs)

    def verdict_for(self, pair: StatementPair) -> PairVerdict:
        return self.verdicts[pair]

    def __str__(self) -> str:
        lines = [
            f"RaceFuzzer campaign on {self.program}: "
            f"{self.potential_pairs} potential, {len(self.real_pairs)} real, "
            f"{len(self.harmful_pairs)} harmful"
            + (f", {len(self.failures)} quarantined task(s)" if self.failures else "")
        ]
        lines.extend(f"  {v.describe()}" for v in self.verdicts.values())
        lines.extend(f"  {failure.describe()}" for failure in self.failures)
        return "\n".join(lines)
