"""Resilient campaign supervision: deadlines, retry, quarantine, resume.

Phase 2 of RaceFuzzer re-executes the program once per racing pair, so a
campaign is thousands of independent trials; its value rests on *every*
pair getting a verdict even when individual executions wedge or die.  The
parallel engine (:mod:`repro.core.parallel`) gives the campaign speed;
this module gives it a failure story.  Every task the engine dispatches is
wrapped in a :class:`TaskEnvelope` and driven by a
:class:`CampaignSupervisor` that provides, in order of escalation:

1. **Wall-clock deadlines** — distinct from the abstract ``max_steps``
   budget.  ``max_steps`` bounds *simulated* work; a deadline bounds
   *real* time, catching interpreter-level wedges the step budget cannot
   see.  Enforced inside the executing process by a ``SIGALRM`` timer
   (:func:`wall_deadline`), with a parent-side stall backstop that
   terminates the pool if no task completes for several deadline windows
   (covering workers whose alarm cannot fire).
2. **Bounded retry with exponential backoff + jitter** — transient
   failures (a crash, a missed deadline, a malformed result) are retried
   up to :attr:`RetryPolicy.max_retries` times.  Backoff jitter is drawn
   from a seeded RNG so retry schedules are reproducible.
3. **Pool-death recovery** — a worker dying (OOM, segfault) breaks the
   whole ``ProcessPoolExecutor``.  The supervisor rebuilds the pool and
   re-queues every unfinished task, charging each one a failed attempt;
   after ``pool_death_limit`` deaths it degrades gracefully to inline
   serial execution, where a poisoned task can only hurt itself.
4. **Quarantine** — a task that fails every allowed attempt is recorded
   as a structured :class:`~repro.core.results.TaskFailure` and the
   campaign moves on.  One poisoned (pair, seed-chunk) can never sink the
   other pairs' verdicts.
5. **Checkpoint/resume** — completed task results are journaled to an
   append-only JSONL file (:class:`CheckpointJournal`).  A restarted
   campaign skips already-journaled task keys and merges their cached
   results, preserving the deterministic seed-order merge.

Results are always folded in submission order — never completion order —
so a supervised campaign's aggregates are identical to the fault-free
serial run for every task that completed, whatever failed in between.
"""

from __future__ import annotations

import errno
import json
import os
import signal
import sys
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Any, Callable, Iterable, Sequence

from repro.obs import MeteredResult, collecting, maybe_registry
from repro.obs.health import HealthController
from repro.obs.timeline import maybe_timeline, recording_timeline

from .faults import (
    CORRUPT_TRACE,
    MALFORMED,
    MALFORMED_SENTINEL,
    FaultPlan,
    FaultSpec,
    apply_fault,
    corrupt_trace_file,
)
from .results import TaskFailure

try:  # not a POSIX platform -> no memory budget, never a crash
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``jobs=`` argument.

    The contract: ``None`` and ``0`` both mean "auto" (one worker per
    core), ``1`` means the exact serial in-process path, ``N >= 2`` means
    a pool of N workers.  Only negative values are rejected.
    """
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(
            f"jobs must be None, 0 (one worker per core) or a positive "
            f"int, got {jobs}"
        )
    return jobs


class TaskDeadlineExceeded(Exception):
    """A supervised task ran past its wall-clock deadline."""


class MemoryBudgetExceeded(Exception):
    """A supervised task grew the process high-water past its budget."""


def _maxrss_mb() -> float | None:
    """The process's lifetime peak RSS in MiB (None when unmeasurable).

    ``ru_maxrss`` is monotone for the life of the process, so budget
    checks always compare a *delta* against a baseline taken at attempt
    start — an absolute check would poison every later task that lands on
    a pool worker some earlier task inflated.
    """
    if _resource is None:
        return None
    rss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # bytes there, kilobytes on Linux
        return rss / (1024.0 * 1024.0)
    return rss / 1024.0


@contextmanager
def wall_deadline(seconds: float | None):
    """Bound a block by wall-clock time via a ``SIGALRM`` timer.

    Raises :class:`TaskDeadlineExceeded` from inside the block when the
    timer fires — which interrupts pure-Python work and interruptible
    sleeps, the realistic wedge modes of this interpreter.  Degrades to a
    no-op when no deadline is set, on platforms without ``SIGALRM``, or
    off the main thread (signal handlers are main-thread-only); the
    supervisor's parent-side stall backstop covers those cases.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):
        raise TaskDeadlineExceeded(
            f"task exceeded its {seconds:.3f}s wall-clock deadline"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    A task is attempted at most ``max_retries + 1`` times; the delay
    before retry ``k`` (0-based failed-attempt count) is::

        min(backoff_max, backoff_base * backoff_factor ** k) * (1 + jitter * u)

    where ``u`` is drawn from ``Random(f"{seed}:{index}:{k}")`` — fully
    deterministic per (policy, task, attempt), so tests can assert the
    exact schedule.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")


def compute_backoff(policy: RetryPolicy, index: int, attempt: int) -> float:
    """The deterministic delay before re-attempting task ``index``."""
    raw = min(
        policy.backoff_max,
        policy.backoff_base * policy.backoff_factor**attempt,
    )
    if not policy.jitter:
        return raw
    # String seeding is hash-randomization-proof, so the jitter — like
    # every other source of nondeterminism in this codebase — is a pure
    # function of explicit seeds.
    u = Random(f"{policy.seed}:{index}:{attempt}").random()
    return raw * (1.0 + policy.jitter * u)


@dataclass(frozen=True)
class TaskEnvelope:
    """The picklable unit the supervisor ships to an executing process.

    Carries the task spec plus everything the worker-side harness needs:
    which entrypoint to run, the wall-clock deadline, and the (already
    resolved) fault to inject, if the attempt is planned to fail.
    """

    fn: str
    task: Any
    index: int
    attempt: int
    deadline: float | None = None
    fault: FaultSpec | None = None
    #: per-attempt memory budget in MiB, enforced worker-side as a
    #: ``ru_maxrss`` delta over the attempt (None = unbounded).
    memory_budget_mb: float | None = None
    #: collect metrics in the executing process and ship a snapshot home
    #: with the result (set when the parent's registry is enabled).
    metrics: bool = False
    #: likewise for the campaign timeline (set when the parent's
    #: timeline recorder is enabled).
    timeline: bool = False


def _worker_fn(name: str) -> Callable[[Any], Any]:
    # Deferred import: parallel.py imports this module, so the registry
    # must resolve lazily to avoid a cycle.
    from . import parallel

    table = {
        "detect": parallel.run_detect_task,
        "fuzz": parallel.run_fuzz_task,
        "record": parallel.run_record_task,
        "baseline": parallel.run_baseline_task,
    }
    return table[name]


def _attempt(envelope: TaskEnvelope, in_worker: bool) -> Any:
    """One attempt body: fault, task, budget check, post-body fault side."""
    fn = _worker_fn(envelope.fn)
    baseline = _maxrss_mb() if envelope.memory_budget_mb is not None else None
    with wall_deadline(envelope.deadline):
        if envelope.fault is not None:
            apply_fault(envelope.fault, in_worker=in_worker)
        result = fn(envelope.task)
    if baseline is not None:
        peak = _maxrss_mb()
        grown = (peak or baseline) - baseline
        if grown > envelope.memory_budget_mb:
            raise MemoryBudgetExceeded(
                f"attempt grew peak RSS by {grown:.1f} MiB "
                f"(budget {envelope.memory_budget_mb:.1f} MiB)"
            )
    if envelope.fault is not None:
        if envelope.fault.kind == MALFORMED:
            return MALFORMED_SENTINEL
        if envelope.fault.kind == CORRUPT_TRACE and isinstance(result, str):
            # Record tasks return the published trace path: damage it so
            # the parent's analysis read exercises store recovery.
            corrupt_trace_file(result)
    return result


def run_envelope(envelope: TaskEnvelope, in_worker: bool = True) -> Any:
    """Execute one supervised attempt (worker entrypoint; also inline).

    Order matters: the fault is applied *inside* the deadline window so
    an injected hang is caught exactly like a real one, and the memory
    budget is checked *after* the body so a blown budget charges the
    attempt that blew it.

    When ``envelope.metrics`` is set the attempt runs under a fresh
    enabled registry and returns a :class:`~repro.obs.MeteredResult`;
    the supervisor merges the snapshot into the parent registry only if
    the result is accepted, so a retried attempt never double-counts.
    ``envelope.timeline`` does the same for the campaign timeline: the
    attempt records into a fresh recorder whose snapshot rides home in
    ``MeteredResult.timeline``.
    """
    if not envelope.metrics and not envelope.timeline:
        return _attempt(envelope, in_worker)
    registry = None
    recorder = None
    try:
        if envelope.metrics:
            registry_cm = collecting()
            registry = registry_cm.__enter__()
        if envelope.timeline:
            recorder_cm = recording_timeline()
            recorder = recorder_cm.__enter__()
        try:
            result = _attempt(envelope, in_worker)
        finally:
            if recorder is not None:
                recorder_cm.__exit__(None, None, None)
    finally:
        if registry is not None:
            registry_cm.__exit__(None, None, None)
    return MeteredResult(
        result=result,
        snapshot=registry.snapshot() if registry is not None else None,
        timeline=recorder.snapshot() if recorder is not None else None,
    )


def _unwrap_metered(result: Any) -> tuple[Any, Any, Any]:
    """Split a possibly metered result into
    (payload, metrics-snapshot-or-None, timeline-snapshot-or-None)."""
    if isinstance(result, MeteredResult):
        return result.result, result.snapshot, result.timeline
    return result, None, None


class CheckpointJournal:
    """Append-only JSONL journal of completed task results.

    Each line is ``{"key": <task key>, "result": <encoded result>}``.
    Records are written with a single ``os.write`` on an ``O_APPEND`` fd,
    so concurrent appenders (e.g. Table-1 rows in worker processes
    sharing one journal) cannot interleave a record, and a campaign
    killed mid-write leaves at most one torn *trailing* line — which
    :meth:`load` skips, sacrificing that one task, not the journal.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._fd: int | None = None
        #: torn/malformed lines skipped by the most recent :meth:`load`.
        self.skipped_lines = 0

    def load(self, *, quiet: bool = False) -> dict[str, Any]:
        """All well-formed journaled records, keyed by task key.

        Unreadable lines are skipped (last-wins on duplicate keys), but
        never silently: the count lands in :attr:`skipped_lines`, the
        ``supervisor.journal_skipped`` metric, and — unless ``quiet`` —
        a recovery note on stderr, so a journal quietly losing lines to
        torn writes is visible long before the data matters.
        """
        records: dict[str, Any] = {}
        skipped = 0
        try:
            fh = open(self.path, encoding="utf-8")
        except FileNotFoundError:
            self.skipped_lines = 0
            return records
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1  # torn write from a killed run
                    continue
                if isinstance(record, dict) and "key" in record:
                    records[record["key"]] = record.get("result")
                else:
                    skipped += 1  # parseable but not a journal record
        self.skipped_lines = skipped
        if skipped:
            m = maybe_registry()
            if m is not None:
                m.inc("supervisor.journal_skipped", skipped)
            if not quiet:
                print(
                    f"repro: checkpoint journal {self.path}: skipped "
                    f"{skipped} torn/malformed line(s); the affected "
                    f"task(s) will re-run",
                    file=sys.stderr,
                )
        return records

    def append(self, key: str, result: Any) -> None:
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        line = json.dumps({"key": key, "result": result}, separators=(",", ":"))
        os.write(self._fd, line.encode("utf-8") + b"\n")

    def compact(self) -> int:
        """Rewrite the journal with one well-formed line per key.

        Drops torn lines and superseded duplicates (keeping the last
        record per key, i.e. exactly what :meth:`load` would return) and
        publishes atomically via ``os.replace``.  Returns the number of
        lines dropped.
        """
        self.close()
        try:
            with open(self.path, encoding="utf-8") as fh:
                total = sum(1 for line in fh if line.strip())
        except FileNotFoundError:
            return 0
        records = self.load(quiet=True)
        tmp = f"{self.path}.{os.getpid()}.compact.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for key, result in records.items():
                fh.write(
                    json.dumps(
                        {"key": key, "result": result}, separators=(",", ":")
                    )
                    + "\n"
                )
        os.replace(tmp, self.path)
        return total - len(records)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


@dataclass
class SupervisorReport:
    """What happened while supervising one task batch.

    ``results`` is indexed by submission position; an entry is ``None``
    for quarantined or cancelled tasks.  Campaign-level aggregates fold
    ``results`` in index order, which is what keeps supervised output
    byte-identical to the fault-free serial run.
    """

    results: list[Any]
    failures: list[TaskFailure] = field(default_factory=list)
    cached: int = 0
    retried: int = 0
    pool_deaths: int = 0
    serial_fallback: bool = False
    cancelled: int = 0


_UNSET = object()
_CANCELLED = object()


class CampaignSupervisor:
    """Drive a batch of independent tasks to a verdict, no matter what.

    Parameters:
        jobs: worker processes (``None``/``0`` = one per core, ``1`` =
            inline execution with no pool).
        deadline: per-task wall-clock budget in seconds (``None`` = no
            wall-clock limit; the abstract ``max_steps`` budget still
            applies inside each task).
        retry: a :class:`RetryPolicy`, or an int meaning
            ``RetryPolicy(max_retries=N)``, or ``None`` for the default.
        pool_death_limit: rebuild a broken pool at most this many times,
            then fall back to inline serial execution for the remainder
            of the campaign.
        checkpoint: path to an append-only JSONL journal; completed tasks
            are journaled and a restarted campaign skips them.  Only
            batches that provide a ``key_fn`` participate.
        faults: a :class:`~repro.core.faults.FaultPlan` for deterministic
            failure injection (testing / drills).
        memory_budget_mb: per-attempt memory budget in MiB, enforced in
            the executing process as a ``ru_maxrss`` delta; a blown
            budget is a retryable ``memory``-kind failure.
        health: the campaign's shared
            :class:`~repro.obs.health.HealthController`; a private one is
            created when not given, so signals are always tracked.
    """

    def __init__(
        self,
        *,
        jobs: int | None = 1,
        deadline: float | None = None,
        retry: RetryPolicy | int | None = None,
        pool_death_limit: int = 2,
        checkpoint=None,
        faults: FaultPlan | None = None,
        memory_budget_mb: float | None = None,
        health: HealthController | None = None,
    ) -> None:
        self.jobs = resolve_jobs(jobs)
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive or None, got {deadline}")
        self.deadline = deadline
        if retry is None:
            retry = RetryPolicy()
        elif isinstance(retry, int):
            retry = RetryPolicy(max_retries=retry)
        self.retry = retry
        if pool_death_limit < 0:
            raise ValueError(
                f"pool_death_limit must be >= 0, got {pool_death_limit}"
            )
        self.pool_death_limit = pool_death_limit
        self.checkpoint = checkpoint
        self.faults = faults
        if memory_budget_mb is not None and memory_budget_mb <= 0:
            raise ValueError(
                f"memory_budget_mb must be positive or None, got "
                f"{memory_budget_mb}"
            )
        self.memory_budget_mb = memory_budget_mb
        self.health = health if health is not None else HealthController(
            pool_death_critical=pool_death_limit + 1
        )
        self.pool_deaths = 0
        self.serial_fallback = False
        self._pool: ProcessPoolExecutor | None = None

    # -- lifecycle ----------------------------------------------------- #

    def _executor(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _destroy_pool(self, *, terminate: bool) -> None:
        pool, self._pool = self._pool, None
        if pool is None:
            return
        if terminate:
            # Reach into the executor to kill wedged workers; a hung
            # worker never drains the call queue, so a plain shutdown
            # would block forever.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "CampaignSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the supervised batch loop ------------------------------------- #

    def supervise(
        self,
        fn: str,
        tasks: Sequence[Any],
        *,
        validate: Callable[[Any, Any], bool] | None = None,
        key_fn: Callable[[Any], str] | None = None,
        encode: Callable[[Any], Any] | None = None,
        decode: Callable[[Any], Any] | None = None,
        on_result: Callable[[int, Any], Iterable[int]] | None = None,
        on_settle: Callable[[int, Any, str], None] | None = None,
    ) -> SupervisorReport:
        """Run every task to success, quarantine, or cancellation.

        ``fn`` names the worker entrypoint (``"detect"`` / ``"fuzz"``)
        and doubles as the fault-plan phase.  ``validate(task, result)``
        rejects malformed results (rejections are retried like crashes).
        ``on_result(index, result)`` fires on every success and returns
        indices to cancel — the hook behind ``stop_on_confirm``.
        ``on_settle(index, result_or_None, outcome)`` fires once per task
        when it reaches *any* terminal state; ``outcome`` says which —
        ``"ok"`` (fresh success), ``"cached"`` (checkpoint-journal hit),
        ``"quarantined"`` or ``"cancelled"`` — so consumers (live
        progress, the campaign scheduler's posterior feedback) can tell
        executed work from skipped work without re-deriving it.
        """
        n = len(tasks)
        results: list[Any] = [_UNSET] * n
        attempts = [0] * n  # failed attempts so far, per task
        history: list[list[str]] = [[] for _ in range(n)]
        failures: list[TaskFailure] = []
        cancelled: set[int] = set()
        report = SupervisorReport(results=results)
        keys = [key_fn(task) if key_fn is not None else None for task in tasks]
        metered = maybe_registry() is not None
        timed = maybe_timeline() is not None
        failed_attempt_kinds: dict[str, int] = {}
        pool_deaths_before = self.pool_deaths

        def settle(index: int, result: Any, outcome: str) -> None:
            if on_settle is not None:
                on_settle(index, result, outcome)

        journal = (
            CheckpointJournal(self.checkpoint)
            if (self.checkpoint is not None and key_fn is not None)
            else None
        )

        def request_cancels(indices: Iterable[int], future_of: dict[int, Future]):
            for j in indices:
                if results[j] is _UNSET and j not in cancelled:
                    cancelled.add(j)
                    future = future_of.get(j)
                    if future is not None:
                        # Only dequeues not-yet-started work; a running
                        # chunk finishes and its result is kept, matching
                        # the pre-supervisor stop_on_confirm semantics.
                        future.cancel()

        def settle_success(index: int, result: Any, future_of: dict[int, Future]) -> bool:
            """Accept a validated result; returns False if malformed."""
            result, snapshot, timeline = _unwrap_metered(result)
            if validate is not None and not validate(tasks[index], result):
                return False
            results[index] = result
            if snapshot is not None:
                m = maybe_registry()
                if m is not None:
                    # Accepted attempts only: a rejected or retried attempt
                    # drops its partial counters with its result.
                    m.merge_snapshot(snapshot)
            if timeline is not None:
                tl = maybe_timeline()
                if tl is not None:
                    # Same accept-only discipline for timeline events.
                    tl.merge_snapshot(timeline)
            if journal is not None and keys[index] is not None:
                journal.append(
                    keys[index], encode(result) if encode is not None else result
                )
            if on_result is not None:
                request_cancels(on_result(index, result), future_of)
            settle(index, result, "ok")
            return True

        def record_failure(index: int, kind: str, message: str) -> float | None:
            """Charge a failed attempt; quarantine or schedule a retry.

            Returns the monotonic time before which the task must not be
            re-attempted, or None if it was quarantined.
            """
            attempts[index] += 1
            history[index].append(f"{kind}: {message}")
            failed_attempt_kinds[kind] = failed_attempt_kinds.get(kind, 0) + 1
            if kind == "memory":
                self.health.record_memory_failure()
            elif kind == "disk":
                self.health.record_disk_budget_hit()
            tl = maybe_timeline()
            if attempts[index] > self.retry.max_retries:
                if tl is not None:
                    tl.emit(
                        "task.quarantine",
                        (fn, index),
                        {"kind": kind, "attempts": attempts[index]},
                        wall_s=time.time(),
                    )
                failures.append(
                    TaskFailure(
                        phase=fn,
                        index=index,
                        key=keys[index] or f"{fn}[{index}]",
                        kind=kind,
                        attempts=attempts[index],
                        message=message,
                        history=tuple(history[index]),
                    )
                )
                results[index] = None
                settle(index, None, "quarantined")
                self.health.record_quarantine(kind)
                return None
            report.retried += 1
            if tl is not None:
                tl.emit(
                    "task.retry",
                    (fn, index, attempts[index]),
                    {"kind": kind},
                    wall_s=time.time(),
                )
            delay = compute_backoff(self.retry, index, attempts[index] - 1)
            return time.monotonic() + delay

        def envelope_for(index: int) -> TaskEnvelope:
            fault = None
            if self.faults is not None:
                spec = self.faults.at(fn, index)
                if spec is not None and spec.fires(attempts[index]):
                    fault = spec
            return TaskEnvelope(
                fn=fn,
                task=tasks[index],
                index=index,
                attempt=attempts[index],
                deadline=self.deadline,
                fault=fault,
                memory_budget_mb=self.memory_budget_mb,
                metrics=metered,
                timeline=timed,
            )

        try:
            # Resume: satisfy journaled tasks from the checkpoint first.
            if journal is not None:
                cache = journal.load()
                for index, key in enumerate(keys):
                    if key in cache:
                        try:
                            payload = cache[key]
                            results[index] = (
                                decode(payload) if decode is not None else payload
                            )
                        except Exception:
                            results[index] = _UNSET  # corrupt record: re-run
                            continue
                        report.cached += 1
                        if on_result is not None:
                            request_cancels(on_result(index, results[index]), {})
                        settle(index, results[index], "cached")

            pending: list[tuple[float, int]] = [
                (0.0, index) for index in range(n) if results[index] is _UNSET
            ]
            if self.jobs > 1 and not self.serial_fallback:
                pending = self._drain_pool(
                    pending, envelope_for, settle_success, record_failure,
                    cancelled, results, report, settle,
                )
            # Inline path: jobs=1 from the start, serial fallback after
            # repeated pool deaths, or the tail of a degraded pool run.
            self._drain_inline(
                pending, envelope_for, settle_success, record_failure,
                cancelled, results, settle,
            )
        finally:
            if journal is not None:
                journal.close()

        for index in range(n):
            if results[index] is _CANCELLED or results[index] is _UNSET:
                results[index] = None
        report.failures = failures
        report.pool_deaths = self.pool_deaths
        report.serial_fallback = self.serial_fallback
        report.cancelled = len(cancelled)
        m = maybe_registry()
        if m is not None:
            m.inc("supervisor.batches")
            m.inc("supervisor.tasks", n)
            m.inc("supervisor.retries", report.retried)
            m.inc("supervisor.quarantines", len(failures))
            m.inc("supervisor.pool_deaths", self.pool_deaths - pool_deaths_before)
            m.inc("supervisor.cached", report.cached)
            m.inc("supervisor.cancelled", report.cancelled)
            m.inc(
                "supervisor.deadline_kills", failed_attempt_kinds.get("deadline", 0)
            )
            for kind in sorted(failed_attempt_kinds):
                m.inc(
                    f"supervisor.failed_attempts.{kind}",
                    failed_attempt_kinds[kind],
                )
        return report

    # -- inline (serial) execution -------------------------------------- #

    def _drain_inline(
        self, pending, envelope_for, settle_success, record_failure,
        cancelled, results, settle,
    ) -> None:
        while pending:
            pending.sort()
            ready_at, index = pending.pop(0)
            if index in cancelled:
                results[index] = _CANCELLED
                settle(index, None, "cancelled")
                continue
            delay = ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            try:
                result = run_envelope(envelope_for(index), in_worker=False)
            except TaskDeadlineExceeded as exc:
                verdict = record_failure(index, "deadline", str(exc))
            except MemoryBudgetExceeded as exc:
                verdict = record_failure(index, "memory", str(exc))
            except OSError as exc:
                kind = "disk" if exc.errno == errno.ENOSPC else "crash"
                verdict = record_failure(
                    index, kind, f"{type(exc).__name__}: {exc}"
                )
            except Exception as exc:
                verdict = record_failure(
                    index, "crash", f"{type(exc).__name__}: {exc}"
                )
            else:
                if settle_success(index, result, {}):
                    continue
                verdict = record_failure(
                    index, "malformed",
                    f"validation rejected a "
                    f"{type(_unwrap_metered(result)[0]).__name__} result",
                )
            if verdict is not None:
                pending.append((verdict, index))

    # -- pooled execution ------------------------------------------------ #

    def _drain_pool(
        self, pending, envelope_for, settle_success, record_failure,
        cancelled, results, report, settle,
    ) -> list[tuple[float, int]]:
        """Run the batch on the pool; returns tasks left for inline mode.

        The parent-side stall backstop fires when *no* task completes for
        several deadline windows — only possible when every worker is
        wedged in a way its own alarm cannot interrupt — and treats the
        pool like it died.
        """
        in_flight: dict[Future, int] = {}
        future_of: dict[int, Future] = {}
        stall_window = (
            max(3.0 * self.deadline, self.deadline + 1.0)
            if self.deadline is not None
            else None
        )
        last_completion = time.monotonic()

        def fail_in_flight(kind: str, message: str) -> None:
            self.pool_deaths += 1
            report.pool_deaths = self.pool_deaths
            self.health.record_pool_death()
            self._destroy_pool(terminate=True)
            # Shed load before the rebuild: a pool that just died at
            # width N has better odds at the health controller's
            # recommendation (half, floor 1).
            self.jobs = self.health.recommended_jobs(self.jobs)
            for index in list(in_flight.values()):
                if results[index] is not _UNSET or index in cancelled:
                    continue
                ready_at = record_failure(index, kind, message)
                if ready_at is not None:
                    pending.append((ready_at, index))
            in_flight.clear()
            future_of.clear()
            if self.pool_deaths > self.pool_death_limit:
                self.serial_fallback = True

        while pending or in_flight:
            if self.serial_fallback:
                break
            now = time.monotonic()
            # Submit everything whose backoff has elapsed.
            pending.sort()
            still_waiting: list[tuple[float, int]] = []
            submit_error: str | None = None
            for ready_at, index in pending:
                if index in cancelled:
                    results[index] = _CANCELLED
                    settle(index, None, "cancelled")
                    continue
                if ready_at > now or submit_error is not None:
                    still_waiting.append((ready_at, index))
                    continue
                try:
                    future = self._executor().submit(
                        run_envelope, envelope_for(index)
                    )
                except (BrokenProcessPool, RuntimeError) as exc:
                    still_waiting.append((now, index))
                    submit_error = f"pool rejected submission: {exc}"
                    continue
                in_flight[future] = index
                future_of[index] = future
            pending = still_waiting
            if submit_error is not None:
                fail_in_flight("pool", submit_error)
                continue

            if not in_flight:
                if not pending:
                    break
                # Nothing running; sleep until the earliest retry is due.
                wake = min(ready_at for ready_at, _ in pending)
                time.sleep(max(0.0, wake - time.monotonic()))
                continue

            timeout = None
            if pending:
                next_ready = min(ready_at for ready_at, _ in pending)
                timeout = max(0.0, next_ready - time.monotonic())
            if stall_window is not None:
                remaining = stall_window - (time.monotonic() - last_completion)
                timeout = remaining if timeout is None else min(timeout, remaining)
                if timeout <= 0:
                    fail_in_flight(
                        "stall",
                        f"no task completed within {stall_window:.1f}s; "
                        f"terminated the worker pool",
                    )
                    continue

            done, _ = wait(set(in_flight), timeout=timeout, return_when=FIRST_COMPLETED)
            if not done:
                continue
            last_completion = time.monotonic()
            pool_broken = False
            for future in done:
                index = in_flight.pop(future)
                future_of.pop(index, None)
                if future.cancelled():
                    results[index] = _CANCELLED
                    settle(index, None, "cancelled")
                    continue
                exc = future.exception()
                if exc is None:
                    result = future.result()
                    if settle_success(index, result, future_of):
                        continue
                    ready_at = record_failure(
                        index, "malformed",
                        f"validation rejected a "
                        f"{type(_unwrap_metered(result)[0]).__name__} result",
                    )
                elif isinstance(exc, BrokenProcessPool):
                    # The pool died under this future; every other
                    # in-flight task is doomed too — handle them as one
                    # pool-death event after this drain loop.
                    pool_broken = True
                    ready_at = record_failure(
                        index, "pool", f"worker pool died: {exc}"
                    )
                elif isinstance(exc, TaskDeadlineExceeded):
                    ready_at = record_failure(index, "deadline", str(exc))
                elif isinstance(exc, MemoryBudgetExceeded):
                    ready_at = record_failure(index, "memory", str(exc))
                elif isinstance(exc, OSError) and exc.errno == errno.ENOSPC:
                    ready_at = record_failure(
                        index, "disk", f"{type(exc).__name__}: {exc}"
                    )
                else:
                    ready_at = record_failure(
                        index, "crash", f"{type(exc).__name__}: {exc}"
                    )
                if ready_at is not None:
                    pending.append((ready_at, index))
            if pool_broken:
                fail_in_flight("pool", "worker pool died")

        return pending


__all__ = [
    "CampaignSupervisor",
    "SupervisorReport",
    "RetryPolicy",
    "compute_backoff",
    "TaskEnvelope",
    "TaskDeadlineExceeded",
    "MemoryBudgetExceeded",
    "CheckpointJournal",
    "run_envelope",
    "wall_deadline",
    "resolve_jobs",
]
