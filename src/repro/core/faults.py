"""Deterministic fault injection for the campaign supervisor.

A resilient campaign runner is only trustworthy if every failure path has
a reproducible test.  Real worker crashes, livelocks and pool deaths are
timing accidents; this module replaces them with a *plan*: a value object
that names, per (phase, task index), exactly which fault to inject and on
how many attempts it keeps firing.  The supervisor resolves the plan in
the parent and ships the chosen :class:`FaultSpec` inside the task
envelope, so workers never see the plan itself — only the one fault that
is theirs to raise.

Fault kinds (``FAULT_KINDS``):

* ``crash``     — raise :class:`InjectedCrash` before the task body runs
  (stands in for any unhandled worker exception).
* ``hang``      — sleep ``delay`` seconds before the task body runs
  (stands in for a livelocked / wedged worker; only detectable when the
  supervisor has a wall-clock deadline).
* ``malformed`` — run the task body normally but return
  :data:`MALFORMED_SENTINEL` instead of the result (stands in for a
  corrupted IPC payload; caught by the supervisor's result validation).
* ``pool_kill`` — ``os._exit`` the worker process, which breaks the whole
  :class:`~concurrent.futures.ProcessPoolExecutor` (stands in for the
  OOM-killer / a segfault).  When the supervisor is executing inline
  (serial path or serial fallback) the fault degrades to a raised
  :class:`InjectedCrash` — exiting would take the campaign down, which is
  exactly what the supervisor exists to prevent.
* ``memory_hog`` — allocate ``mb`` megabytes before the task body runs,
  raising the process's ``ru_maxrss`` high-water (stands in for a leaky
  task; caught by the supervisor's per-task memory budget as a
  ``memory``-kind failure).
* ``disk_full`` — raise :class:`InjectedDiskFull` (an :class:`OSError`
  with ``errno.ENOSPC``) before the task body runs (stands in for a full
  trace-store disk; classified as a ``disk``-kind failure).
* ``corrupt_trace`` — run the task body normally, then damage the trace
  file the task just published (record tasks return its path): truncate
  the footer and flip the last event line.  The parent's analysis then
  exercises the store's quarantine + re-record recovery end to end.

Determinism contract: a :class:`FaultSpec` fires on attempts
``0 .. attempts-1`` of its task and never again, so ``attempts=1`` models
a transient failure (the retry succeeds) and a large ``attempts`` models
a poisoned task (retries exhaust and the task is quarantined).
"""

from __future__ import annotations

import errno
import os
import random
import time
from dataclasses import dataclass
from typing import Iterable, Iterator

CRASH = "crash"
HANG = "hang"
MALFORMED = "malformed"
POOL_KILL = "pool_kill"
MEMORY_HOG = "memory_hog"
DISK_FULL = "disk_full"
CORRUPT_TRACE = "corrupt_trace"

FAULT_KINDS = (
    CRASH,
    HANG,
    MALFORMED,
    POOL_KILL,
    MEMORY_HOG,
    DISK_FULL,
    CORRUPT_TRACE,
)

#: What a ``malformed`` fault returns in place of the real result.  Any
#: value the supervisor's ``validate`` hook rejects would do; a string is
#: convenient because no worker entrypoint legitimately returns one.
MALFORMED_SENTINEL = "__repro_malformed_result__"


class InjectedCrash(RuntimeError):
    """The deterministic stand-in for an arbitrary worker failure."""


class InjectedDiskFull(OSError):
    """The deterministic stand-in for ENOSPC out of the trace store."""

    def __init__(self, where: str) -> None:
        super().__init__(errno.ENOSPC, f"injected disk full at {where}")


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: *which* task, *what* failure, *how persistent*.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        index: submission index of the targeted task within its phase.
        phase: which dispatch batch the index refers to (``"fuzz"`` or
            ``"detect"``).
        attempts: the fault fires on the first ``attempts`` attempts of
            the task and is then spent.  ``1`` = transient, large =
            poisoned (quarantine).
        delay: sleep duration, in seconds, for ``hang`` faults.
        mb: allocation size, in megabytes, for ``memory_hog`` faults.
    """

    kind: str
    index: int
    phase: str = "fuzz"
    attempts: int = 1
    delay: float = 30.0
    mb: float = 64.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.index < 0:
            raise ValueError(f"fault index must be >= 0, got {self.index}")
        if self.attempts < 1:
            raise ValueError(f"fault attempts must be >= 1, got {self.attempts}")
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, got {self.delay}")
        if self.mb <= 0:
            raise ValueError(f"fault mb must be > 0, got {self.mb}")

    def fires(self, attempt: int) -> bool:
        """Does the fault fire on this (0-based) attempt of its task?"""
        return attempt < self.attempts


class FaultPlan:
    """An immutable map from (phase, task index) to the fault to inject.

    At most one fault per task: a task that crashes *and* hangs is not a
    reproducible scenario.  Plans are value objects — equality and
    iteration are over the sorted spec list — so tests can assert on them
    directly.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        by_key: dict[tuple[str, int], FaultSpec] = {}
        for spec in specs:
            key = (spec.phase, spec.index)
            if key in by_key:
                raise ValueError(
                    f"duplicate fault for {spec.phase}[{spec.index}]: "
                    f"{by_key[key].kind} vs {spec.kind}"
                )
            by_key[key] = spec
        self._by_key = by_key

    def at(self, phase: str, index: int) -> FaultSpec | None:
        """The fault planned for this task, or None."""
        return self._by_key.get((phase, index))

    @property
    def specs(self) -> list[FaultSpec]:
        return sorted(self._by_key.values(), key=lambda s: (s.phase, s.index))

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self._by_key == other._by_key

    def __repr__(self) -> str:
        return f"FaultPlan({self.specs!r})"

    @classmethod
    def sample(
        cls,
        seed: int,
        n_tasks: int,
        *,
        phase: str = "fuzz",
        crash_rate: float = 0.0,
        hang_rate: float = 0.0,
        malformed_rate: float = 0.0,
        pool_kill_rate: float = 0.0,
        attempts: int = 1,
        delay: float = 30.0,
    ) -> "FaultPlan":
        """Draw a reproducible plan: same seed and rates, same plan.

        Each task index independently receives at most one fault; the
        rates are cumulative probabilities and must sum to <= 1.
        """
        total = crash_rate + hang_rate + malformed_rate + pool_kill_rate
        if total > 1.0:
            raise ValueError(f"fault rates sum to {total}, must be <= 1")
        rng = random.Random(seed)
        thresholds = (
            (crash_rate, CRASH),
            (crash_rate + hang_rate, HANG),
            (crash_rate + hang_rate + malformed_rate, MALFORMED),
            (total, POOL_KILL),
        )
        specs = []
        for index in range(n_tasks):
            roll = rng.random()
            for cutoff, kind in thresholds:
                if roll < cutoff:
                    specs.append(
                        FaultSpec(
                            kind=kind,
                            index=index,
                            phase=phase,
                            attempts=attempts,
                            delay=delay,
                        )
                    )
                    break
        return cls(specs)


def apply_fault(spec: FaultSpec, *, in_worker: bool = True) -> None:
    """Execute the pre-task side of a fault, in the executing process.

    ``malformed`` is a no-op here — it corrupts the *result*, which the
    task envelope handles after the body runs.  So is ``corrupt_trace``:
    it damages the trace the body *publishes*, via
    :func:`corrupt_trace_file` once the envelope has the path.
    ``pool_kill`` only exits the process when running in a disposable
    worker; inline it degrades to a crash so fault plans stay runnable on
    the serial path.
    """
    if spec.kind == CRASH:
        raise InjectedCrash(f"injected crash at {spec.phase}[{spec.index}]")
    if spec.kind == HANG:
        time.sleep(spec.delay)
        return
    if spec.kind == MEMORY_HOG:
        # Touch every page so ru_maxrss actually rises, then release: the
        # high-water mark is what the supervisor's budget check reads.
        hog = bytearray(int(spec.mb * 1024 * 1024))
        hog[::4096] = b"\x01" * len(hog[::4096])
        del hog
        return
    if spec.kind == DISK_FULL:
        raise InjectedDiskFull(f"{spec.phase}[{spec.index}]")
    if spec.kind == POOL_KILL:
        if in_worker:
            os._exit(13)
        raise InjectedCrash(
            f"injected pool kill at {spec.phase}[{spec.index}] "
            f"(inline execution: raised instead of exiting)"
        )
    # MALFORMED / CORRUPT_TRACE: nothing to do before the task body.


def corrupt_trace_file(path: str) -> bool:
    """Post-body side of ``corrupt_trace``: damage a published trace.

    Truncates the footer line off ``path`` (the classic torn-write shape),
    guaranteeing the next integrity-checked read raises
    ``TraceCorruptError``.  Returns False when ``path`` is not a readable
    trace file — the fault then degrades to a no-op rather than failing a
    task the plan meant to leave successful.
    """
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        return False
    lines = data.splitlines(keepends=True)
    if len(lines) < 2:
        return False
    with open(path, "wb") as fh:
        fh.writelines(lines[:-1])
    return True


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse the CLI fault-plan syntax into a :class:`FaultPlan`.

    Comma-separated specs of the form ``phase:index:kind[:attempts[:arg]]``,
    e.g. ``fuzz:0:crash,fuzz:7:hang:1:5.0,fuzz:11:pool_kill``.  The
    trailing ``arg`` is kind-specific: sleep seconds for ``hang``,
    megabytes for ``memory_hog``; other kinds take none.
    """
    specs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 3 or len(parts) > 5:
            raise ValueError(
                f"bad fault spec {chunk!r}: expected "
                f"phase:index:kind[:attempts[:arg]]"
            )
        phase, index, kind = parts[0], int(parts[1]), parts[2]
        attempts = int(parts[3]) if len(parts) > 3 else 1
        kwargs = {}
        if len(parts) > 4:
            if kind == MEMORY_HOG:
                kwargs["mb"] = float(parts[4])
            else:
                kwargs["delay"] = float(parts[4])
        specs.append(
            FaultSpec(
                kind=kind, index=index, phase=phase, attempts=attempts, **kwargs
            )
        )
    return FaultPlan(specs)


__all__ = [
    "CRASH",
    "HANG",
    "MALFORMED",
    "POOL_KILL",
    "MEMORY_HOG",
    "DISK_FULL",
    "CORRUPT_TRACE",
    "FAULT_KINDS",
    "MALFORMED_SENTINEL",
    "InjectedCrash",
    "InjectedDiskFull",
    "FaultSpec",
    "FaultPlan",
    "apply_fault",
    "corrupt_trace_file",
    "parse_fault_plan",
]
