"""Phase 1 for atomicity violations: mine candidate atomic regions.

The deadlock fuzzer gets its targets from the lock-order graph; this is
the analogous front end for :class:`~repro.core.atomicityfuzzer.AtomicityFuzzer`.
It observes executions and flags the classic *stale check-then-act*
pattern (Lu et al.'s single-variable atomicity bugs):

    thread T:  acquire(L) … read x … release(L)      (the "check")
               … no write to x by T …
               acquire(L) @ stmt A … write x …        (the "act")

paired with any *rival* — another thread's acquisition of the same lock
(at statement B) whose critical section writes ``x``.  Each candidate is
an ``(AtomicRegion(check-stmt, A), B)`` triple ready to hand to the
fuzzer, which will try to force the rival's critical section between the
check and the act.

Like every Phase 1, this over-approximates: a region may be protected by
application logic the pattern cannot see.  The fuzzer is the judge —
candidates it cannot realize are dismissed exactly like false races.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.runtime.events import AcquireEvent, Event, MemEvent, ReleaseEvent
from repro.runtime.interpreter import Execution
from repro.runtime.location import Location, LockId
from repro.runtime.observer import ExecutionObserver
from repro.runtime.program import Program
from repro.runtime.statement import Statement

from .atomicityfuzzer import AtomicRegion
from .schedulers import RandomScheduler


@dataclass(frozen=True)
class AtomicityCandidate:
    """One fuzzable check-then-act pattern."""

    region: AtomicRegion
    rival: Statement
    lock: LockId
    location: Location

    def __str__(self) -> str:
        return (
            f"{self.region} vs rival {self.rival.site} "
            f"[lock {self.lock.describe()}, location {self.location.describe()}]"
        )


@dataclass
class _OpenCheck:
    """A locked read whose critical section has ended — awaiting its act."""

    location: Location
    lock: LockId
    check_stmt: Statement


class _AtomicityObserver(ExecutionObserver):
    """Streams events into per-thread pattern state."""

    def __init__(self) -> None:
        # per thread: reads seen inside the currently open critical sections
        self._reads_in_cs: dict[int, list[tuple[Location, LockId, Statement]]] = {}
        # per thread: checks whose critical section closed, not yet acted on
        self._open_checks: dict[int, list[_OpenCheck]] = {}
        # per thread: the acquire statement of each currently held lock
        self._acquire_stmt: dict[tuple[int, LockId], Statement] = {}
        self._held: dict[int, set[LockId]] = {}
        #: (lock, location) -> acquire statements of critical sections that
        #: WRITE the location — the rival candidates.
        self.writers: dict[tuple[LockId, Location], set[Statement]] = {}
        #: collected (region, lock, location, act-thread) candidates
        self.regions: set[tuple[AtomicRegion, LockId, Location]] = set()

    def on_event(self, event: Event) -> None:
        if isinstance(event, AcquireEvent):
            if event.stmt is not None:
                self._acquire_stmt[(event.tid, event.lock)] = event.stmt
            self._held.setdefault(event.tid, set()).add(event.lock)
        elif isinstance(event, ReleaseEvent):
            self._held.get(event.tid, set()).discard(event.lock)
            # Close this critical section: its reads become open checks.
            reads = self._reads_in_cs.get(event.tid, [])
            keep = []
            for location, lock, stmt in reads:
                if lock == event.lock:
                    self._open_checks.setdefault(event.tid, []).append(
                        _OpenCheck(location=location, lock=lock, check_stmt=stmt)
                    )
                else:
                    keep.append((location, lock, stmt))
            self._reads_in_cs[event.tid] = keep
        elif isinstance(event, MemEvent):
            held = self._held.get(event.tid, set())
            if event.is_write:
                # Register this critical section as a rival for (lock, loc).
                for lock in held:
                    acquire = self._acquire_stmt.get((event.tid, lock))
                    if acquire is not None:
                        self.writers.setdefault(
                            (lock, event.location), set()
                        ).add(acquire)
                # A write by the owner completes (or invalidates) checks.
                checks = self._open_checks.get(event.tid, [])
                remaining = []
                for check in checks:
                    if check.location != event.location:
                        remaining.append(check)
                        continue
                    acquire = (
                        self._acquire_stmt.get((event.tid, check.lock))
                        if check.lock in held
                        else None
                    )
                    if acquire is not None:
                        # check -> release -> re-acquire(acquire) -> write:
                        # the full stale check-then-act shape.
                        self.regions.add(
                            (
                                AtomicRegion(check.check_stmt, acquire),
                                check.lock,
                                check.location,
                            )
                        )
                    # Acted on (or overwritten bare): the check is spent.
                self._open_checks[event.tid] = remaining
            else:
                for lock in held:
                    stmt = event.stmt
                    self._reads_in_cs.setdefault(event.tid, []).append(
                        (event.location, lock, stmt)
                    )


def detect_atomic_regions(
    program: Program,
    *,
    seeds: Sequence[int] = (0, 1, 2),
    max_steps: int = 1_000_000,
) -> list[AtomicityCandidate]:
    """Observe executions; return fuzzable check-then-act candidates.

    A candidate pairs each mined region with every *other* critical
    section (different acquire statement) that writes the same location
    under the same lock.
    """
    observer = _AtomicityObserver()
    for seed in seeds:
        Execution(
            program, seed=seed, observers=[observer], max_steps=max_steps
        ).run(RandomScheduler(preemption="every"))
    candidates: dict[tuple, AtomicityCandidate] = {}
    for region, lock, location in observer.regions:
        for rival in observer.writers.get((lock, location), ()):
            if rival == region.second:
                continue  # the act's own critical section is not a rival
            # Locations and locks get fresh uids per execution, but the
            # fuzzer consumes statements; dedupe on those across seeds.
            key = (region, rival)
            candidates.setdefault(
                key,
                AtomicityCandidate(
                    region=region, rival=rival, lock=lock, location=location
                ),
            )
    return sorted(candidates.values(), key=str)
