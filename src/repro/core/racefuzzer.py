"""RaceFuzzer — Algorithms 1 and 2 of the paper.

Given a *racing pair of statements* ``(s1, s2)`` from Phase 1, the fuzzer
executes the program under a random scheduler that postpones any thread
about to execute a statement in ``{s1, s2}`` until a second thread arrives
at a statement in the pair whose next access touches the *same dynamic
memory location*, with at least one of the two accesses being a write.  At
that point a **real race** has been created (reported with no possibility
of a false positive, since the two accesses are temporally adjacent), and
the race is resolved by a fair coin so that both orders of the racing
statements are explored across seeds.

Typical use::

    fuzzer = RaceFuzzer(pair)           # pair from HybridRaceDetector
    outcome = fuzzer.run(program, seed=42)
    outcome.created        # True -> the pair is a real race
    outcome.crashes        # exceptions caused by resolving the race
    outcome.deadlock       # real deadlock discovered (Algorithm 1, line 31)

Replaying ``run(program, seed=42)`` reproduces the identical execution —
the engine owns all non-determinism and draws it from the seed.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.timeline import pair_label
from repro.runtime.interpreter import Execution
from repro.runtime.statement import Statement, StatementPair

from .postponing import FuzzResult, PostponingDriver, TargetHit


class RaceFuzzer(PostponingDriver):
    """Race-directed active random scheduler (the paper's Algorithm 1)."""

    def __init__(
        self,
        race_set: StatementPair | Iterable[Statement],
        *,
        preemption: str = "sync",
        patience: int = 400,
        max_steps: int = 1_000_000,
        observers=(),
        fast_mode: bool = False,
    ) -> None:
        super().__init__(
            preemption=preemption,
            patience=patience,
            max_steps=max_steps,
            observers=observers,
            fast_mode=fast_mode,
        )
        if isinstance(race_set, StatementPair):
            statements: set[Statement] = {race_set.first, race_set.second}
            self._timeline_target = pair_label(race_set)
        else:
            statements = set(race_set)
            self._timeline_target = "|".join(
                sorted(str(s.site) for s in statements)
            )
        if not statements:
            raise ValueError("RaceFuzzer needs a non-empty racing statement set")
        self.race_set = frozenset(statements)

    def timeline_target(self) -> str:
        """Timeline identity of this fuzzer's trials: the pair label
        (``site|site``), stable across processes and runs."""
        return self._timeline_target

    def fast_mode_statements(self):
        """Fast mode keeps MemEvents only for the racing statements.

        Postponing/resolution logic reads ops and statements directly (never
        through events), so verdicts are identical in either mode; only
        observers see fewer MemEvents.  See INTERNALS "Interpreter fast
        path" for what is and is not suppressed.
        """
        return self.race_set

    # --- Algorithm 1, line 6 -------------------------------------------- #

    def is_target(self, execution: Execution, tid: int) -> bool:
        """Line 6 of Algorithm 1: is the thread's next statement in the
        racing pair (and a memory access)?

        Probed on every step of the sync-preemption burst loop, so it does
        a single thread-state fetch and reuses the cached pending
        statement instead of going through ``next_op``/``next_stmt``
        (which would fetch the state twice more).
        """
        ts = execution.threads.get(tid)
        if ts is None:
            return False
        op = ts.pending
        if op is None or not op.is_mem:
            return False
        stmt = ts.pending_stmt
        if stmt is None:
            stmt = execution._stmt(ts)
        return stmt in self.race_set

    # --- Algorithm 2 ------------------------------------------------------ #

    def conflicting(
        self, execution: Execution, tid: int, postponed: list[int]
    ) -> list[int]:
        """``Racing(s, t, postponed)``: postponed threads whose next
        statement accesses the same dynamic location as ``tid``'s next
        statement, with at least one write."""
        op = execution.next_op(tid)
        rivals = []
        for other in postponed:
            other_op = execution.next_op(other)
            if other_op is None or not other_op.is_mem:
                continue
            if other_op.location != op.location:
                continue
            if not (op.is_write or other_op.is_write):
                continue
            rivals.append(other)
        return rivals


def fuzz_pair(
    program,
    pair: StatementPair,
    seeds: Iterable[int],
    **kwargs,
) -> list[FuzzResult]:
    """Run RaceFuzzer once per seed for one racing pair.

    This is the paper's experimental unit: "we ran RaceFuzzer 100 times for
    each racing pair of statements" (Section 5.2).  Pass ``fast_mode=True``
    to suppress MemEvent emission for statements outside the pair (sync and
    thread events are unaffected; verdicts are identical either way).
    """
    fuzzer = RaceFuzzer(pair, **kwargs)
    return [fuzzer.run(program, seed=seed) for seed in seeds]


__all__ = ["RaceFuzzer", "fuzz_pair", "FuzzResult", "TargetHit"]
