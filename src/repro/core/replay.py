"""Seed-based deterministic replay (Section 2.2, last paragraph).

"RaceFuzzer ensures that at any time during execution only one thread is
executing and it resolves all non-determinism in picking the next thread to
execute by using random numbers" — so re-running with the same seed (and
the same racing pair and configuration) reproduces the identical execution,
with no event recording.  These helpers make that property a first-class
debugging tool: re-run a race-revealing seed, optionally with an event
trace or extra observers attached, and compare runs structurally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import Event
from repro.runtime.observer import EventTrace
from repro.runtime.program import Program
from repro.runtime.statement import StatementPair

from .postponing import FuzzResult
from .racefuzzer import RaceFuzzer


def schedule_signature(events) -> tuple:
    """A structural fingerprint of a schedule: (event type, tid, step).

    Two runs are the same execution iff their signatures match — the
    cheap way for tests (and users) to validate replay.  Works on any
    event sequence: a live :class:`~repro.runtime.observer.EventTrace`,
    a :class:`ReplayedRun`, or a :class:`~repro.trace.TraceReader`.
    """
    return tuple(
        (type(event).__name__, event.tid, event.step) for event in events
    )


@dataclass
class ReplayedRun:
    """A fuzzing run plus its full event trace, for debugging races."""

    outcome: FuzzResult
    events: list[Event]

    def schedule_signature(self) -> tuple:
        return schedule_signature(self.events)


def replay_race(
    program: Program,
    pair: StatementPair,
    seed: int,
    *,
    trace_path=None,
    **fuzzer_kwargs,
) -> ReplayedRun:
    """Re-run a race-revealing execution with full tracing attached.

    The trace observer changes nothing about scheduling (all randomness is
    drawn from the execution's seeded RNG), so the replay is the original
    execution — the paper's "lightweight replay mechanism".

    ``trace_path`` additionally records the replay to a trace file (gzip
    when the path ends in ``.gz``), so the interleaving can be re-rendered
    or re-analyzed later without re-running anything — see
    :func:`repro.core.traceview.format_trace_file`.
    """
    trace = EventTrace()
    observers = tuple(fuzzer_kwargs.pop("observers", ())) + (trace,)
    if trace_path is not None:
        from repro.trace import TraceRecorder  # deferred: keep core light

        preemption = fuzzer_kwargs.get("preemption", "sync")
        observers += (
            TraceRecorder(trace_path, scheduler=f"racefuzzer:{preemption}"),
        )
    fuzzer = RaceFuzzer(pair, observers=observers, **fuzzer_kwargs)
    outcome = fuzzer.run(program, seed=seed)
    return ReplayedRun(outcome=outcome, events=trace.events)


def signature_from_trace(path) -> tuple:
    """The :func:`schedule_signature` of a recorded trace file."""
    from repro.trace import TraceReader

    with TraceReader(path) as reader:
        return schedule_signature(reader)


def replays_identically(
    program: Program, pair: StatementPair, seed: int, attempts: int = 2, **kwargs
) -> bool:
    """Check that ``attempts`` replays of one seed agree event-for-event."""
    first = replay_race(program, pair, seed, **kwargs).schedule_signature()
    return all(
        replay_race(program, pair, seed, **kwargs).schedule_signature() == first
        for _ in range(attempts - 1)
    )
