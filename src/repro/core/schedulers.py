"""Passive schedulers: the baselines RaceFuzzer is compared against.

All scheduler randomness is drawn from ``execution.rng`` — never from a
private RNG — so that one seed determines one schedule (the paper's
replay-by-seed property holds for the baselines too).

* :class:`RandomScheduler` — "simple random" (Table 1, column "Simple"):
  picks a uniformly random enabled thread.  With ``preemption="every"`` it
  may switch at any statement; with ``preemption="sync"`` it only switches
  at synchronization operations (the Musuvathi-Qadeer discipline cited in
  Section 4), which is the fast mode used for the "Normal" timing column.
* :class:`DefaultScheduler` — a deterministic JVM-like baseline: runs one
  thread until it blocks or terminates, then hands off FIFO.  This is the
  scheduler the paper's column 10 is measured against.
"""

from __future__ import annotations

from collections import deque

from repro.runtime.interpreter import Execution


class Scheduler:
    """Strategy interface used by :meth:`Execution.run`."""

    def choose(self, execution: Execution, enabled: list[int]) -> int:
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Uniformly random choice among enabled threads.

    Args:
        preemption: ``"every"`` switches at every operation; ``"sync"``
            keeps running the previous thread until it is about to execute
            a synchronization operation (or is no longer enabled).
    """

    def __init__(self, preemption: str = "every"):
        if preemption not in ("every", "sync"):
            raise ValueError(f"unknown preemption mode: {preemption!r}")
        self.preemption = preemption
        self._last: int | None = None

    def choose(self, execution: Execution, enabled: list[int]) -> int:
        if (
            self.preemption == "sync"
            and self._last is not None
            and self._last in enabled
        ):
            op = execution.next_op(self._last)
            if op is not None and not op.is_sync:
                return self._last
        self._last = enabled[execution.rng.randrange(len(enabled))]
        return self._last

    def continuation(self, execution: Execution) -> int | None:
        """Fast-path hook for :meth:`Execution.run` (see its docstring).

        Draw-equivalent to :meth:`choose`: it returns the previous thread
        exactly when ``choose`` would have returned it *without touching
        the rng* (sync mode, still enabled, next op not a sync op), and
        ``None`` otherwise — in which case ``run`` falls back to the full
        enabled-list path and ``choose`` draws as before.  Schedules are
        therefore byte-identical; only the enabled-list construction is
        skipped on uncontended runs of thread-local ops.
        """
        if self.preemption != "sync":
            return None
        last = self._last
        if last is None:
            return None
        ts = execution.threads[last]
        op = ts.pending
        if op is not None and not op.is_sync and execution._enabled(ts):
            return last
        return None


class DefaultScheduler(Scheduler):
    """Run-to-block FIFO handoff, approximating an unloaded JVM scheduler.

    A ``quantum`` bounds how long one thread may run uninterrupted, standing
    in for OS time slices — without it, a busy-polling thread (moldyn's
    spin-wait, montecarlo's coordinator) would starve everyone forever,
    which real JVM schedulers do not do.  Actual slice lengths jitter
    between ``quantum/2`` and ``quantum`` (drawn from the execution's
    seeded RNG, so runs stay replayable): a perfectly periodic scheduler
    would make every seed produce the same schedule, which is not how the
    paper's "default scheduler" baseline behaves.
    """

    def __init__(self, quantum: int = 50) -> None:
        if quantum < 1:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._queue: deque[int] = deque()
        self._current: int | None = None
        self._slice_used = 0
        self._slice_limit = quantum

    def _new_slice(self, execution: Execution) -> None:
        low = max(1, self.quantum // 2)
        self._slice_limit = execution.rng.randint(low, self.quantum)
        self._slice_used = 1

    def choose(self, execution: Execution, enabled: list[int]) -> int:
        enabled_set = set(enabled)
        for tid in enabled:
            if tid != self._current and tid not in self._queue:
                self._queue.append(tid)
        if self._current in enabled_set and self._slice_used < self._slice_limit:
            self._slice_used += 1
            return self._current
        if self._current in enabled_set:
            self._queue.append(self._current)
        while self._queue:
            tid = self._queue.popleft()
            if tid in enabled_set:
                self._current = tid
                self._new_slice(execution)
                return tid
        self._current = enabled[0]
        self._new_slice(execution)
        return self._current


SCHEDULERS = {
    "random": RandomScheduler,
    "default": DefaultScheduler,
}


def baseline_scheduler(spec: str) -> Scheduler:
    """Build a fresh scheduler for one baseline run.

    The baseline spec names (``default`` / ``random`` / ``random-sync``)
    predate the trace layer's ``random:every``-style specs and are kept
    for CLI/harness compatibility.  A new instance per run matters:
    schedulers carry per-execution state (queues, slice budgets).
    """
    if spec == "default":
        return DefaultScheduler()
    if spec == "random":
        return RandomScheduler(preemption="every")
    if spec == "random-sync":
        return RandomScheduler(preemption="sync")
    raise ValueError(f"unknown scheduler: {spec!r}")
