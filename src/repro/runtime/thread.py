"""Per-thread state of the abstract machine.

A simulated thread wraps a Python generator.  Its *pending op* is the op it
has yielded but the engine has not yet executed — the paper's
``NextStmt(s, t)``.  Whether the thread is *enabled* is derived from its
status plus the executability of the pending op (e.g. a pending ``LOCK`` on
a monitor owned by another thread disables it), which matches the paper's
definition: "a thread is disabled if it is waiting to acquire a lock already
held by some other thread (or waiting on a join or a wait)".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Generator

from .ops import Op
from .statement import Statement


class ThreadStatus(enum.Enum):
    """Coarse lifecycle status; lock/join blocking is derived, not stored."""

    RUNNABLE = "runnable"  # has a pending op (which may itself be blocked)
    WAITING = "waiting"  # parked in a monitor wait set
    SLEEPING = "sleeping"  # in ops.sleep until wake_at
    TERMINATED = "terminated"


@dataclass(frozen=True, slots=True)
class ThreadHandle:
    """User-facing reference to a simulated thread (sent back by ``spawn``)."""

    tid: int
    name: str = field(default="", compare=False)

    def __str__(self) -> str:
        return self.name or f"thread-{self.tid}"


@dataclass(slots=True)
class ThreadState:
    """Engine-internal state of one simulated thread."""

    tid: int
    name: str
    gen: Generator[Op, Any, Any]
    status: ThreadStatus = ThreadStatus.RUNNABLE
    pending: Op | None = None
    #: statement identity of the pending op.  Materialized lazily: the
    #: engine records the raw yield site in ``stmt_code``/``stmt_line`` at
    #: resume time (frame state is only readable while the generator is
    #: suspended) and builds the interned Statement on first demand.
    pending_stmt: Statement | None = None
    #: raw site of the pending op (``frame.f_code`` / ``f_lineno``); None
    #: when ``pending_stmt`` is already materialized (labelled ops) or the
    #: thread has no pending op.
    stmt_code: Any = None
    stmt_line: int = 0
    #: set while parked: the lock whose wait set holds us, and the monitor
    #: recursion depth to restore on re-acquisition.
    waiting_on: Any = None
    wait_depth: int = 0
    #: absolute step at which a SLEEPING thread wakes.
    wake_at: int = 0
    #: Java-style interrupt status flag.
    interrupt_flag: bool = False
    #: deliver InterruptedException into the generator at the next step
    #: (set when an interrupt lands while waiting/sleeping).
    deliver_interrupt: bool = False
    #: uncaught exception that terminated the thread, if any.
    error: BaseException | None = None
    #: statement at which the uncaught exception escaped.
    error_stmt: Statement | None = None
    #: step at which the thread was added to an active scheduler's postponed
    #: set; used by the livelock watchdog (engine does not touch this).
    postponed_since: int | None = None

    @property
    def handle(self) -> ThreadHandle:
        return ThreadHandle(self.tid, self.name)

    @property
    def alive(self) -> bool:
        """The paper's ``Alive(s)`` membership test."""
        return self.status is not ThreadStatus.TERMINATED

    def __str__(self) -> str:
        return f"{self.name}#{self.tid}[{self.status.value}]"
