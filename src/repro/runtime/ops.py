"""Operation descriptors — the instruction set of the abstract machine.

A simulated thread is a Python generator that *yields* :class:`Op` values;
the interpreter executes each op and sends the result back into the
generator.  Everything between two yields is thread-local, atomic, and
invisible to other threads (the 3-address-code discipline of the paper:
shared state is touched only through ops, one location per op).

The yielded-but-not-yet-executed op of a thread is exactly the paper's
``NextStmt(s, t)``: the scheduler can inspect its statement identity, its
dynamic memory location, and whether it writes — which is all that
Algorithm 2's ``Racing()`` needs — *before* committing to execute it.

Construct ops through the module-level helpers (``read``, ``write``,
``lock`` ...) or, more conveniently, through the sugar classes in
:mod:`repro.runtime.sugar`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from .location import Location, LockId


class OpKind(enum.Enum):
    """Discriminator for operation descriptors."""

    READ = "read"
    WRITE = "write"
    LOCK = "lock"
    UNLOCK = "unlock"
    WAIT = "wait"
    NOTIFY = "notify"
    NOTIFY_ALL = "notify_all"
    SPAWN = "spawn"
    JOIN = "join"
    SLEEP = "sleep"
    INTERRUPT = "interrupt"
    INTERRUPTED = "interrupted"  # poll-and-clear, like Thread.interrupted()
    YIELD = "yield"  # pure scheduling point (Thread.yield / local step)
    CHECK = "check"  # assertion; raises AssertionViolation when false
    REACQUIRE = "reacquire"  # internal: woken waiter re-entering the monitor

    # Per-member metadata (set below, after MEM_KINDS/SYNC_KINDS exist):
    #   index    dense 0..N-1 position, the key of every per-kind table
    #            (handler dispatch, metrics tallies) — one list index
    #            instead of an enum hash per executed op.
    #   mem/write/sync
    #            classification flags copied onto each Op at construction.
    #   block    how enabledness is decided for a pending op of this kind:
    #            0 = always enabled, 1 = needs the lock free/reentrant,
    #            2 = needs the join target dead.


#: Kinds that access shared memory (candidates for racing pairs).
MEM_KINDS = frozenset({OpKind.READ, OpKind.WRITE})

#: Kinds that are synchronization operations — the preemption points of the
#: sync-only scheduling mode (Section 4, citing Musuvathi & Qadeer).
SYNC_KINDS = frozenset(
    {
        OpKind.LOCK,
        OpKind.UNLOCK,
        OpKind.WAIT,
        OpKind.NOTIFY,
        OpKind.NOTIFY_ALL,
        OpKind.SPAWN,
        OpKind.JOIN,
        OpKind.SLEEP,
        OpKind.INTERRUPT,
        OpKind.YIELD,
        OpKind.REACQUIRE,
    }
)


#: ``OpKind`` members in declaration order; ``KIND_VALUES[k.index]`` is
#: ``k.value`` (used when folding int-indexed tallies back into metrics).
KIND_VALUES = tuple(kind.value for kind in OpKind)

for _index, _kind in enumerate(OpKind):
    _kind.index = _index
    _kind.mem = _kind in MEM_KINDS
    _kind.write = _kind is OpKind.WRITE
    _kind.sync = _kind in SYNC_KINDS
    if _kind in (OpKind.LOCK, OpKind.REACQUIRE):
        _kind.block = 1
    elif _kind is OpKind.JOIN:
        _kind.block = 2
    else:
        _kind.block = 0
    _kind.flags = (_kind.index, _kind.mem, _kind.write, _kind.sync, _kind.block)
del _index, _kind


@dataclass(slots=True)
class Op:
    """One abstract-machine operation, yielded by a simulated thread.

    Only the fields relevant to ``kind`` are populated.  ``label`` optionally
    overrides the auto-derived statement identity (see
    :mod:`repro.runtime.statement`).
    """

    kind: OpKind
    location: Location | None = None
    value: Any = None  # WRITE: value to store
    default: Any = None  # READ: value if the location was never written
    lock: LockId | None = None
    target: Any = None  # JOIN/INTERRUPT: ThreadHandle or tid
    func: Callable[..., Any] | None = None  # SPAWN: generator function
    args: tuple = ()
    name: str | None = None  # SPAWN: thread name
    duration: int = 0  # SLEEP: ticks
    condition: bool = True  # CHECK: the asserted condition
    message: str = ""  # CHECK: failure message
    label: str | None = None
    reacquire_count: int = field(default=0, repr=False)  # REACQUIRE internal
    # Derived fields, resolved once at construction (was: a property call
    # plus frozenset membership test per query, several times per step).
    kind_index: int = field(init=False, repr=False, compare=False)
    is_mem: bool = field(init=False, repr=False, compare=False)
    is_write: bool = field(init=False, repr=False, compare=False)
    is_sync: bool = field(init=False, repr=False, compare=False)
    blocking: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # One attribute read + a C-level unpack per constructed op.
        (
            self.kind_index, self.is_mem, self.is_write, self.is_sync,
            self.blocking,
        ) = self.kind.flags

    def describe(self) -> str:
        """Short human-readable rendering for traces and error messages."""
        k = self.kind.value
        if self.is_mem:
            return f"{k} {self.location}"
        if self.lock is not None:
            return f"{k} {self.lock}"
        if self.kind is OpKind.SPAWN:
            return f"spawn {self.name or getattr(self.func, '__name__', '?')}"
        if self.kind is OpKind.JOIN:
            return f"join {self.target}"
        if self.kind is OpKind.SLEEP:
            return f"sleep {self.duration}"
        if self.kind is OpKind.CHECK:
            return f"check {self.message or self.condition}"
        return k


def read(location: Location, default: Any = None, label: str | None = None) -> Op:
    """Read a shared location; the executed op sends the value back."""
    return Op(OpKind.READ, location=location, default=default, label=label)


def write(location: Location, value: Any, label: str | None = None) -> Op:
    """Write ``value`` to a shared location."""
    return Op(OpKind.WRITE, location=location, value=value, label=label)


def lock(lock_id: LockId, label: str | None = None) -> Op:
    """Acquire a reentrant monitor (blocks while another thread holds it)."""
    return Op(OpKind.LOCK, lock=lock_id, label=label)


def unlock(lock_id: LockId, label: str | None = None) -> Op:
    """Release a monitor held by the current thread."""
    return Op(OpKind.UNLOCK, lock=lock_id, label=label)


def wait(lock_id: LockId, timeout: int | None = None, label: str | None = None) -> Op:
    """Java-style ``wait``: release the (held) monitor and park on its wait set.

    With a positive ``timeout`` (abstract ticks) the thread wakes on its own
    at the deadline and re-contends for the monitor, exactly like
    ``Object.wait(long)``; without one it parks until notified or
    interrupted.
    """
    if timeout is not None and timeout <= 0:
        raise ValueError("wait timeout must be positive (or None for untimed)")
    return Op(OpKind.WAIT, lock=lock_id, duration=timeout or 0, label=label)


def notify(lock_id: LockId, label: str | None = None) -> Op:
    """Wake one waiter of the (held) monitor, if any."""
    return Op(OpKind.NOTIFY, lock=lock_id, label=label)


def notify_all(lock_id: LockId, label: str | None = None) -> Op:
    """Wake every waiter of the (held) monitor."""
    return Op(OpKind.NOTIFY_ALL, lock=lock_id, label=label)


def spawn(func: Callable[..., Any], *args: Any, name: str | None = None,
          label: str | None = None) -> Op:
    """Start a new thread running ``func(*args)``; sends back a ThreadHandle."""
    return Op(OpKind.SPAWN, func=func, args=args, name=name, label=label)


def join(target: Any, label: str | None = None) -> Op:
    """Block until the target thread terminates."""
    return Op(OpKind.JOIN, target=target, label=label)


def sleep(ticks: int, label: str | None = None) -> Op:
    """Sleep for ``ticks`` abstract time units (1 tick = 1 executed op)."""
    return Op(OpKind.SLEEP, duration=ticks, label=label)


def interrupt(target: Any, label: str | None = None) -> Op:
    """Interrupt the target thread (wakes it from wait/sleep with an error)."""
    return Op(OpKind.INTERRUPT, target=target, label=label)


def interrupted(label: str | None = None) -> Op:
    """Poll-and-clear the current thread's interrupt flag; sends back a bool."""
    return Op(OpKind.INTERRUPTED, label=label)


def yield_point(label: str | None = None) -> Op:
    """A pure scheduling point; executes no shared effect.

    The paper's Figure 2 pads thread bodies with many statements to make the
    race hard to hit for passive schedulers — ``yield_point`` is how our
    programs model those filler statements.
    """
    return Op(OpKind.YIELD, label=label)


def check(condition: bool, message: str = "", label: str | None = None) -> Op:
    """Assert a condition; raises ``AssertionViolation`` in the thread if false.

    This models the paper's ``ERROR`` statements: reaching the statement with
    a falsified condition is the observable "harmful race" outcome.
    """
    return Op(OpKind.CHECK, condition=condition, message=message, label=label)
