"""Dynamic memory locations and lock identities.

The paper assumes 3-address code: every statement touches at most one shared
memory location.  A *location* here is the dynamic entity two accesses must
share for ``Racing()`` (Algorithm 2) to fire: a global variable, an object
field, or an array element.

Locations are value objects keyed by a per-process unique id (``uid``) that
the owning shared structure allocates at construction time.  Uids are only
ever compared *within* one execution, so the global counter is safe across
replays; statements (not locations) are what cross executions.

Every location kind has a stable token encoding (:meth:`Location.to_token`
/ :func:`location_from_token`) that preserves the concrete subclass, so a
serialized event stream replays with location identity — and therefore
per-location access histories — intact.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import ClassVar

_uids = itertools.count(1)


def fresh_uid() -> int:
    """Allocate a process-unique id for a shared structure or lock."""
    return next(_uids)


@dataclass(frozen=True, slots=True)
class Location:
    """Base class for dynamic memory locations."""

    uid: int
    name: str = field(default="", compare=False)
    #: lazily computed hash; locations key every heap access, so hashing
    #: the same instance repeatedly must not rebuild the key tuple.
    _hash: int | None = field(default=None, init=False, repr=False, compare=False)

    #: token tag identifying the concrete subclass across processes.
    kind: ClassVar[str] = "loc"

    def _hash_key(self) -> tuple:
        return (self.uid,)

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash(self._hash_key())
            object.__setattr__(self, "_hash", h)
        return h

    def describe(self) -> str:
        return self.name or f"loc#{self.uid}"

    def __str__(self) -> str:
        return self.describe()

    def to_token(self) -> dict:
        """Stable JSON-safe encoding preserving the concrete subclass."""
        token: dict = {"k": self.kind, "u": self.uid}
        if self.name:
            token["n"] = self.name
        return token


@dataclass(frozen=True, slots=True)
class VarLoc(Location):
    """A shared scalar variable."""

    kind: ClassVar[str] = "var"

    __hash__ = Location.__hash__

    def describe(self) -> str:
        return self.name or f"var#{self.uid}"


@dataclass(frozen=True, slots=True)
class FieldLoc(Location):
    """A named field of a shared object."""

    fieldname: str = ""
    kind: ClassVar[str] = "field"

    __hash__ = Location.__hash__

    def _hash_key(self) -> tuple:
        return (self.uid, self.fieldname)

    def describe(self) -> str:
        base = self.name or f"obj#{self.uid}"
        return f"{base}.{self.fieldname}"

    def to_token(self) -> dict:
        token = Location.to_token(self)
        token["fld"] = self.fieldname
        return token


@dataclass(frozen=True, slots=True)
class ElemLoc(Location):
    """An element of a shared array."""

    index: int = 0
    kind: ClassVar[str] = "elem"

    __hash__ = Location.__hash__

    def _hash_key(self) -> tuple:
        return (self.uid, self.index)

    def describe(self) -> str:
        base = self.name or f"arr#{self.uid}"
        return f"{base}[{self.index}]"

    def to_token(self) -> dict:
        token = Location.to_token(self)
        token["i"] = self.index
        return token


def location_from_token(token: dict) -> Location:
    """Rebuild the concrete :class:`Location` a token was taken from."""
    kind = token.get("k", "loc")
    uid = token["u"]
    name = token.get("n", "")
    if kind == "var":
        return VarLoc(uid=uid, name=name)
    if kind == "field":
        return FieldLoc(uid=uid, name=name, fieldname=token.get("fld", ""))
    if kind == "elem":
        return ElemLoc(uid=uid, name=name, index=token.get("i", 0))
    return Location(uid=uid, name=name)


@dataclass(frozen=True, slots=True)
class LockId:
    """Identity of a lock/monitor (Java: the object whose monitor is taken)."""

    uid: int
    name: str = field(default="", compare=False)
    _hash: int | None = field(default=None, init=False, repr=False, compare=False)

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((self.uid,))
            object.__setattr__(self, "_hash", h)
        return h

    def describe(self) -> str:
        return self.name or f"lock#{self.uid}"

    def __str__(self) -> str:
        return self.describe()

    def to_token(self) -> dict:
        token: dict = {"u": self.uid}
        if self.name:
            token["n"] = self.name
        return token

    @classmethod
    def from_token(cls, token: dict) -> "LockId":
        return cls(uid=token["u"], name=token.get("n", ""))
