"""Dynamic memory locations and lock identities.

The paper assumes 3-address code: every statement touches at most one shared
memory location.  A *location* here is the dynamic entity two accesses must
share for ``Racing()`` (Algorithm 2) to fire: a global variable, an object
field, or an array element.

Locations are value objects keyed by a per-process unique id (``uid``) that
the owning shared structure allocates at construction time.  Uids are only
ever compared *within* one execution, so the global counter is safe across
replays; statements (not locations) are what cross executions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

_uids = itertools.count(1)


def fresh_uid() -> int:
    """Allocate a process-unique id for a shared structure or lock."""
    return next(_uids)


@dataclass(frozen=True)
class Location:
    """Base class for dynamic memory locations."""

    uid: int
    name: str = field(default="", compare=False)

    def describe(self) -> str:
        return self.name or f"loc#{self.uid}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class VarLoc(Location):
    """A shared scalar variable."""

    def describe(self) -> str:
        return self.name or f"var#{self.uid}"


@dataclass(frozen=True)
class FieldLoc(Location):
    """A named field of a shared object."""

    fieldname: str = ""

    def describe(self) -> str:
        base = self.name or f"obj#{self.uid}"
        return f"{base}.{self.fieldname}"


@dataclass(frozen=True)
class ElemLoc(Location):
    """An element of a shared array."""

    index: int = 0

    def describe(self) -> str:
        base = self.name or f"arr#{self.uid}"
        return f"{base}[{self.index}]"


@dataclass(frozen=True)
class LockId:
    """Identity of a lock/monitor (Java: the object whose monitor is taken)."""

    uid: int
    name: str = field(default="", compare=False)

    def describe(self) -> str:
        return self.name or f"lock#{self.uid}"

    def __str__(self) -> str:
        return self.describe()
