"""The execution engine: the paper's abstract machine, made concrete.

An :class:`Execution` owns all the non-determinism of one run of a
:class:`~repro.runtime.program.Program`:

* ``schedulable()``   — the paper's ``Enabled(s)`` (fast-forwarding abstract
  time when only sleepers remain);
* ``next_op(t)``      — the paper's ``NextStmt(s, t)``, with its statement
  identity and dynamic memory location;
* ``step(t)``         — the paper's ``Execute(s, t)``;
* ``alive()``         — the paper's ``Alive(s)``.

Drivers (schedulers, RaceFuzzer) sit on top of this API and decide *which*
enabled thread to step.  All randomness a driver needs must come from
``Execution.rng`` (seeded in the constructor) — that single discipline is
what makes seed-only replay work.

Java semantics implemented: reentrant monitors, wait/notify/notifyAll with
two-stage wakeup (wait set → monitor re-acquisition), join, sleep on an
abstract clock (1 tick = 1 executed op), interrupts that raise
``InterruptedException`` inside waiting/sleeping victims, and
thread-as-crash-domain (an uncaught exception kills only its thread).

Hot-path design (see INTERNALS "Interpreter fast path")
-------------------------------------------------------
Every campaign bottoms out in :meth:`Execution.step`, so the per-step work
is kept to integer/identity operations:

* **Precompiled dispatch** — each :class:`~repro.runtime.ops.Op` carries a
  dense ``kind_index`` resolved at construction; ``step`` indexes a tuple
  of bound handlers instead of hashing an enum into a dict.
* **Lazy interned statements** — the yield site is captured as a raw
  ``(code, line)`` pair at resume time (two attribute reads); the interned
  :class:`~repro.runtime.statement.Statement` is materialized only when an
  event, a race-set probe, or a crash report actually needs it.
* **Observer tiers** — ``_observing`` (any observer) and ``_observe_mem``
  (an observer that wants MemEvents) are resolved once per execution; with
  no observer attached, a step allocates no event objects at all, and the
  ``locks.held_by()`` frozenset snapshot is only built when a MemEvent is
  actually constructed.
* **Sync-ops-only fast mode** — ``mem_filter`` restricts MemEvent emission
  to a statement set (RaceFuzzer passes the racing pair, per the paper's
  Section 5 observation that Phase 2 only needs sync ops plus the two
  racing statements); lock/thread/msg events flow unchanged.
* **Int-indexed metrics** — per-kind tallies live in a plain list indexed
  by ``kind_index`` and fold into the registry once, at ``finish()``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from types import GeneratorType
from typing import Any, Iterable

from .errors import (
    AssertionViolation,
    EngineError,
    ExecutionLimitExceeded,
    InterruptedException,
    SchedulerMisuse,
)
from .events import (
    Access,
    AcquireEvent,
    DeadlockEvent,
    ErrorEvent,
    ErrorInfo,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.obs import STEP_BUCKETS, maybe_registry

from .heap import Heap
from .locks import LockTable
from .observer import ExecutionObserver, ObserverChain
from .ops import KIND_VALUES, Op, OpKind
from .program import Program, resolve_tid
from .statement import (
    FINISHED_STATEMENT,
    Statement,
    label_statement,
    statement_at,
)
from .thread import ThreadState, ThreadStatus

# Status singletons hoisted to module scope: `is` checks against locals
# beat repeated enum attribute lookups in the per-step code below.
_RUNNABLE = ThreadStatus.RUNNABLE
_WAITING = ThreadStatus.WAITING
_SLEEPING = ThreadStatus.SLEEPING
_TERMINATED = ThreadStatus.TERMINATED

#: index of the synthetic "wake" tally slot (after the real op kinds).
_WAKE_SLOT = len(KIND_VALUES)


@dataclass(frozen=True, slots=True)
class ThreadCrash:
    """An uncaught simulated exception that terminated a thread.

    ``error`` is the structured, picklable :class:`ErrorInfo` form — never
    the live ``BaseException`` — so an :class:`ExecutionResult` can always
    cross a process-pool boundary (tracebacks don't pickle, and custom
    exception constructors break naive re-raising).  The live exception
    object stays available in-process on ``ThreadState.error``.
    """

    tid: int
    name: str
    error: ErrorInfo
    stmt: Statement | None
    step: int = 0

    @property
    def error_type(self) -> str:
        return self.error.type

    def __str__(self) -> str:
        where = f" at {self.stmt.site}" if self.stmt else ""
        return f"{self.name}#{self.tid}: {self.error.type}({self.error.message}){where}"


@dataclass
class ExecutionResult:
    """Outcome of one complete execution."""

    program: str
    seed: int
    steps: int = 0
    crashes: list[ThreadCrash] = field(default_factory=list)
    deadlock: bool = False
    deadlocked_tids: tuple[int, ...] = ()
    truncated: bool = False
    wall_time: float = 0.0

    @property
    def exception_types(self) -> list[str]:
        return [crash.error_type for crash in self.crashes]

    def __str__(self) -> str:
        bits = [f"{self.program} seed={self.seed} steps={self.steps}"]
        if self.crashes:
            bits.append(f"crashes={[str(c) for c in self.crashes]}")
        if self.deadlock:
            bits.append(f"DEADLOCK tids={list(self.deadlocked_tids)}")
        if self.truncated:
            bits.append("TRUNCATED")
        return " ".join(bits)


class Execution:
    """One run of a program, with every source of non-determinism owned here."""

    def __init__(
        self,
        program: Program,
        *,
        seed: int = 0,
        observers: Iterable[ExecutionObserver] = (),
        max_steps: int = 1_000_000,
        mem_filter: Iterable[Statement] | None = None,
    ) -> None:
        self.program = program
        self.seed = seed
        self.rng = random.Random(seed)
        self.heap = Heap()
        self.locks = LockTable()
        self.threads: dict[int, ThreadState] = {}
        #: alive threads in tid order (tids are assigned monotonically and
        #: threads are only ever appended, so list order == tid order; dead
        #: threads are removed so enabled scans touch only live ones).
        self._live: list[ThreadState] = []
        #: the abstract clock: advances by 1 per executed op and jumps
        #: forward when only sleepers remain.
        self.step_count = 0
        #: ops actually executed — the budget max_steps is charged against
        #: (virtual sleep time is free).
        self.ops_executed = 0
        self.max_steps = max_steps
        self.result = ExecutionResult(program=program.name, seed=seed)
        self._next_tid = 0
        self._next_msg = 0
        self._term_msg: dict[int, int] = {}  # tid -> its termination message id
        self._started = False
        self._finished = False
        self._start_time = 0.0
        self.observer = ObserverChain(observers)
        self._observing = bool(self.observer.observers)
        self._observe_mem = self._observing and self.observer.wants_mem_events
        #: fast mode: when set, MemEvents are emitted only for statements in
        #: this set (lock/thread/msg events are never filtered).
        self._mem_filter = (
            frozenset(mem_filter) if mem_filter is not None else None
        )
        # Dispatch: one bound handler per OpKind, indexed by Op.kind_index.
        self._dispatch = tuple(
            getattr(self, name) for name in _HANDLER_NAMES
        )
        # Direct alias of the heap's cell dict: READ/WRITE are the two
        # hottest ops and go straight to dict.get / dict.__setitem__.
        self._cells = self.heap._cells
        # Metrics: resolved once per execution so the per-step cost with
        # metrics disabled is a single None-check.  Per-kind tallies are a
        # plain list indexed by kind_index (plus one trailing "wake" slot)
        # and fold into the registry at finish().
        self._metrics = maybe_registry()
        self._m_counts: list[int] | None = (
            [0] * (_WAKE_SLOT + 1) if self._metrics else None
        )
        self._m_switches = 0
        self._m_last_tid = -1

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> None:
        """Instantiate the program and prime the main thread."""
        if self._started:
            raise SchedulerMisuse("execution already started")
        self._started = True
        self._start_time = time.perf_counter()
        if self._observing:
            self.observer.on_start(self)
        main_gen = self.program.instantiate()
        self._create_thread(main_gen, name="main", parent=None)

    def finish(self) -> ExecutionResult:
        """Finalize: detect real deadlocks (paper Algorithm 1, lines 30-32)."""
        if self._finished:
            return self.result
        self._finished = True
        alive = [ts.tid for ts in self._live]
        if alive and not self.result.truncated:
            self.result.deadlock = True
            self.result.deadlocked_tids = tuple(alive)
            if self._observing:
                self.observer.on_event(
                    DeadlockEvent(step=self.step_count, tid=-1, blocked=tuple(alive))
                )
        self.result.steps = self.step_count
        self.result.wall_time = time.perf_counter() - self._start_time
        if self._observing:
            self.observer.on_finish(self)
        m = self._metrics
        if m is not None:
            m.inc("interp.executions")
            m.inc("interp.steps", self.ops_executed)
            m.inc("interp.context_switches", self._m_switches)
            lock_ops = 0
            for index, count in enumerate(self._m_counts):
                if count:
                    kind = KIND_VALUES[index] if index < _WAKE_SLOT else "wake"
                    m.inc(f"interp.ops.{kind}", count)
                    if kind in ("lock", "unlock", "reacquire"):
                        lock_ops += count
            m.inc("interp.lock_ops", lock_ops)
            m.inc("interp.crashes", len(self.result.crashes))
            if self.result.deadlock:
                m.inc("interp.deadlocks")
            if self.result.truncated:
                m.inc("interp.truncated")
            m.observe(
                "interp.steps_per_execution", self.ops_executed,
                bounds=STEP_BUCKETS,
            )
        return self.result

    def run(self, scheduler) -> ExecutionResult:
        """Convenience loop: let ``scheduler`` pick among enabled threads.

        Schedulers may expose an optional ``continuation(execution)`` hook
        returning the tid to step next without consulting the full enabled
        list, or ``None`` to fall back to ``choose``.  The hook must be
        draw-equivalent to ``choose`` (same rng consumption), so schedules
        are byte-identical with or without it; it exists purely to skip
        building the enabled list on uncontended runs-of-steps.
        """
        self.start()
        continuation = getattr(scheduler, "continuation", None)
        choose = scheduler.choose
        schedulable = self.schedulable
        step = self.step
        max_steps = self.max_steps
        while True:
            if continuation is not None and self.ops_executed < max_steps:
                tid = continuation(self)
                if tid is not None:
                    step(tid)
                    continue
            enabled = schedulable()
            if not enabled:
                break
            step(choose(self, enabled))
        return self.finish()

    # ------------------------------------------------------------------ #
    # state inspection (the paper's Enabled / Alive / NextStmt)

    def _enabled(self, ts: ThreadState) -> bool:
        """Enabledness of one thread; the hot kernel behind is_enabled()."""
        status = ts.status
        if status is _RUNNABLE:
            op = ts.pending
            if op is None:
                return False
            blocking = op.blocking
            if blocking == 0:
                return True
            if blocking == 1:  # LOCK / REACQUIRE
                return self.locks.can_acquire(op.lock, ts.tid)
            # JOIN: enabled once the target is dead.
            return not self.threads[resolve_tid(op.target)].alive
        if status is _WAITING:
            # A timed wait becomes enabled at its deadline: the next step
            # transitions it to monitor re-acquisition (Object.wait(long)).
            return bool(ts.wake_at) and self.step_count >= ts.wake_at
        if status is _SLEEPING:
            return ts.deliver_interrupt or self.step_count >= ts.wake_at
        return False  # TERMINATED

    def is_enabled(self, tid: int) -> bool:
        """Can ``tid`` make progress if stepped right now?"""
        return self._enabled(self.threads[tid])

    def enabled_tids(self) -> list[int]:
        """All currently enabled thread ids, in tid order."""
        enabled = self._enabled
        return [ts.tid for ts in self._live if enabled(ts)]

    def schedulable(self) -> list[int]:
        """Enabled tids, fast-forwarding the clock past an all-sleeping lull.

        Returns ``[]`` when the execution is over (all dead or deadlocked)
        or the step budget is exhausted (``result.truncated`` is set).
        """
        enabled = self.enabled_tids()
        if not enabled:
            deadlines = [
                ts.wake_at
                for ts in self._live
                if (
                    ts.status is _SLEEPING
                    or (ts.status is _WAITING and ts.wake_at)
                )
            ]
            if deadlines:
                # Nothing runnable but time can pass: jump to the earliest
                # sleeper wakeup or timed-wait deadline.
                self.step_count = max(self.step_count, min(deadlines))
                enabled = self.enabled_tids()
        if enabled and self.ops_executed >= self.max_steps:
            self.result.truncated = True
            return []
        return enabled

    def alive_tids(self) -> list[int]:
        """Threads not yet terminated — the paper's ``Alive(s)``."""
        return [ts.tid for ts in self._live]

    def next_op(self, tid: int) -> Op | None:
        """The pending (yielded, unexecuted) op of ``tid`` — ``NextStmt``."""
        return self.threads[tid].pending

    def next_stmt(self, tid: int) -> Statement | None:
        """Statement identity of the pending op (``NextStmt``'s ``s``)."""
        return self._stmt(self.threads[tid])

    def fresh_msg(self) -> int:
        """Allocate a unique happens-before message id (``g`` in SND/RCV)."""
        self._next_msg += 1
        return self._next_msg

    # ------------------------------------------------------------------ #
    # stepping

    def step(self, tid: int) -> None:
        """Execute the pending op of ``tid`` — the paper's ``Execute(s, t)``."""
        ts = self.threads.get(tid)
        if ts is None:
            raise SchedulerMisuse(f"unknown thread {tid}")
        if not self._enabled(ts):
            raise SchedulerMisuse(f"thread {ts} is not enabled")
        if self.ops_executed >= self.max_steps:
            raise ExecutionLimitExceeded(
                f"{self.program.name}: exceeded {self.max_steps} steps"
            )
        self.step_count += 1
        self.ops_executed += 1
        counts = self._m_counts
        if counts is not None and tid != self._m_last_tid:
            if self._m_last_tid >= 0:
                self._m_switches += 1
            self._m_last_tid = tid
        status = ts.status
        if status is _RUNNABLE:
            op = ts.pending
            index = op.kind_index
            if counts is not None:
                counts[index] += 1
            self._dispatch[index](ts, op)
        elif status is _SLEEPING:
            # Wakeups execute no user op; they are tallied under the
            # synthetic "wake" kind here, where the wake actually happens
            # (a pending SLEEP/WAIT op must not be double-counted).
            if counts is not None:
                counts[_WAKE_SLOT] += 1
            self._wake_from_sleep(ts)
        else:  # _WAITING (timed wait at its deadline)
            if counts is not None:
                counts[_WAKE_SLOT] += 1
            self._wake_from_timed_wait(ts)

    # --- op handlers ---------------------------------------------------- #

    def _do_read(self, ts: ThreadState, op: Op) -> None:
        value = self._cells.get(op.location, op.default)
        if self._observe_mem:
            self._emit_mem(ts, op, Access.READ)
        self._advance(ts, value=value)

    def _do_write(self, ts: ThreadState, op: Op) -> None:
        self._cells[op.location] = op.value
        if self._observe_mem:
            self._emit_mem(ts, op, Access.WRITE)
        self._advance(ts, value=None)

    def _do_lock(self, ts: ThreadState, op: Op) -> None:
        outermost = self.locks.acquire(op.lock, ts.tid)
        if outermost and self._observing:
            self.observer.on_event(
                AcquireEvent(
                    step=self.step_count, tid=ts.tid, lock=op.lock,
                    stmt=self._stmt(ts),
                )
            )
        self._advance(ts, value=None)

    def _do_unlock(self, ts: ThreadState, op: Op) -> None:
        fully = self.locks.release(op.lock, ts.tid)
        if fully and self._observing:
            self.observer.on_event(
                ReleaseEvent(
                    step=self.step_count, tid=ts.tid, lock=op.lock,
                    stmt=self._stmt(ts),
                )
            )
        self._advance(ts, value=None)

    def _do_wait(self, ts: ThreadState, op: Op) -> None:
        # Java: wait with the interrupt flag already set throws immediately.
        if ts.interrupt_flag:
            ts.interrupt_flag = False
            self._advance(ts, exc=InterruptedException(f"{ts.name} interrupted"))
            return
        ts.wake_at = self.step_count + op.duration if op.duration else 0
        depth = self.locks.release_all(op.lock, ts.tid)
        if self._observing:
            self.observer.on_event(
                ReleaseEvent(
                    step=self.step_count, tid=ts.tid, lock=op.lock,
                    stmt=self._stmt(ts),
                )
            )
        self.locks.park_waiter(op.lock, ts.tid)
        ts.status = _WAITING
        ts.waiting_on = op.lock
        ts.wait_depth = depth
        # pending stays the WAIT op (not executable) until notify/interrupt.

    def _do_notify(self, ts: ThreadState, op: Op) -> None:
        self._require_held(ts, op)
        monitor = self.locks.monitor(op.lock)
        if monitor.wait_set:
            index = self.rng.randrange(len(monitor.wait_set))
            woken = self.locks.unpark_one(op.lock, index)
            msg = self._snd(ts.tid)
            self._transition_to_reacquire(self.threads[woken], msg)
        self._advance(ts, value=None)

    def _do_notify_all(self, ts: ThreadState, op: Op) -> None:
        self._require_held(ts, op)
        woken = self.locks.unpark_all(op.lock)
        if woken:
            msg = self._snd(ts.tid)
            for tid in woken:
                self._transition_to_reacquire(self.threads[tid], msg)
        self._advance(ts, value=None)

    def _do_spawn(self, ts: ThreadState, op: Op) -> None:
        gen = op.func(*op.args)
        if not isinstance(gen, GeneratorType):
            raise EngineError(
                f"spawn target {op.func!r} must return a generator "
                f"(a thread body), got {type(gen).__name__}"
            )
        child = self._create_thread(
            gen, name=op.name or getattr(op.func, "__name__", "thread"), parent=ts.tid
        )
        self._advance(ts, value=child.handle)

    def _do_join(self, ts: ThreadState, op: Op) -> None:
        target = resolve_tid(op.target)
        msg = self._term_msg.get(target)
        if msg is not None and self._observing:
            self.observer.on_event(RcvEvent(step=self.step_count, tid=ts.tid, msg_id=msg))
        self._advance(ts, value=None)

    def _do_sleep(self, ts: ThreadState, op: Op) -> None:
        if ts.interrupt_flag:
            ts.interrupt_flag = False
            self._advance(ts, exc=InterruptedException(f"{ts.name} interrupted"))
            return
        ts.status = _SLEEPING
        ts.wake_at = self.step_count + max(1, op.duration)
        # pending stays the SLEEP op; the wake step resumes the generator.

    def _wake_from_timed_wait(self, ts: ThreadState) -> None:
        """A timed wait hit its deadline: leave the wait set and re-contend
        for the monitor (the wait returns only after re-acquisition)."""
        self.locks.remove_waiter(ts.waiting_on, ts.tid)
        ts.pending = Op(
            OpKind.REACQUIRE, lock=ts.waiting_on, reacquire_count=ts.wait_depth
        )
        ts.status = _RUNNABLE
        ts.waiting_on = None
        ts.wake_at = 0

    def _wake_from_sleep(self, ts: ThreadState) -> None:
        ts.status = _RUNNABLE
        if ts.deliver_interrupt:
            ts.deliver_interrupt = False
            ts.interrupt_flag = False
            msg = ts.waiting_on if isinstance(ts.waiting_on, int) else None
            if msg is not None and self._observing:
                self.observer.on_event(
                    RcvEvent(step=self.step_count, tid=ts.tid, msg_id=msg)
                )
            ts.waiting_on = None
            self._advance(ts, exc=InterruptedException(f"{ts.name} interrupted"))
        else:
            self._advance(ts, value=None)

    def _do_interrupt(self, ts: ThreadState, op: Op) -> None:
        target = self.threads.get(resolve_tid(op.target))
        if target is None or not target.alive:
            self._advance(ts, value=None)
            return
        if target.status is _WAITING:
            self.locks.remove_waiter(target.waiting_on, target.tid)
            msg = self._snd(ts.tid)
            lock = target.waiting_on
            target.pending = Op(
                OpKind.REACQUIRE, lock=lock, reacquire_count=target.wait_depth
            )
            target.status = _RUNNABLE
            target.waiting_on = msg  # stash the HB message for delivery
            target.deliver_interrupt = True
        elif target.status is _SLEEPING:
            msg = self._snd(ts.tid)
            target.waiting_on = msg
            target.deliver_interrupt = True
        else:
            target.interrupt_flag = True
        self._advance(ts, value=None)

    def _do_interrupted(self, ts: ThreadState, op: Op) -> None:
        flag = ts.interrupt_flag
        ts.interrupt_flag = False
        self._advance(ts, value=flag)

    def _do_yield(self, ts: ThreadState, op: Op) -> None:
        self._advance(ts, value=None)

    def _do_check(self, ts: ThreadState, op: Op) -> None:
        if op.condition:
            self._advance(ts, value=None)
        else:
            self._advance(ts, exc=AssertionViolation(op.message or "check failed"))

    def _do_reacquire(self, ts: ThreadState, op: Op) -> None:
        self.locks.acquire(op.lock, ts.tid, depth=op.reacquire_count)
        if self._observing:
            self.observer.on_event(
                AcquireEvent(
                    step=self.step_count, tid=ts.tid, lock=op.lock,
                    stmt=self._stmt(ts),
                )
            )
        msg = ts.waiting_on if isinstance(ts.waiting_on, int) else None
        if msg is not None and self._observing:
            self.observer.on_event(RcvEvent(step=self.step_count, tid=ts.tid, msg_id=msg))
        ts.waiting_on = None
        ts.wait_depth = 0
        if ts.deliver_interrupt:
            ts.deliver_interrupt = False
            ts.interrupt_flag = False
            self._advance(ts, exc=InterruptedException(f"{ts.name} interrupted"))
        else:
            self._advance(ts, value=None)

    # ------------------------------------------------------------------ #
    # internals

    def _stmt(self, ts: ThreadState) -> Statement | None:
        """Materialize (and memoize) the statement of ``ts``'s pending op."""
        stmt = ts.pending_stmt
        if stmt is None and ts.stmt_code is not None:
            stmt = statement_at(ts.stmt_code, ts.stmt_line)
            ts.pending_stmt = stmt
        return stmt

    def _require_held(self, ts: ThreadState, op: Op) -> None:
        if not self.locks.holds(op.lock, ts.tid):
            from .errors import IllegalMonitorState

            raise IllegalMonitorState(
                f"{ts} notified {op.lock} without holding it"
            )

    def _transition_to_reacquire(self, ts: ThreadState, msg: int) -> None:
        """Move a woken waiter to the monitor-entry competition."""
        ts.pending = Op(
            OpKind.REACQUIRE, lock=ts.waiting_on, reacquire_count=ts.wait_depth
        )
        ts.status = _RUNNABLE
        ts.wake_at = 0  # a pending timed-wait deadline is void once notified
        ts.waiting_on = msg  # carry the SND message until re-acquisition

    def _snd(self, tid: int) -> int:
        msg = self.fresh_msg()
        if self._observing:
            self.observer.on_event(SndEvent(step=self.step_count, tid=tid, msg_id=msg))
        return msg

    def _emit_mem(self, ts: ThreadState, op: Op, access: Access) -> None:
        # Only reached when an observer wants MemEvents (_observe_mem).
        stmt = self._stmt(ts)
        mem_filter = self._mem_filter
        if mem_filter is not None and stmt not in mem_filter:
            return
        self.observer.on_event(
            MemEvent(
                step=self.step_count,
                tid=ts.tid,
                stmt=stmt,
                location=op.location,
                access=access,
                locks_held=self.locks.held_by(ts.tid),
            )
        )

    def _create_thread(self, gen, name: str, parent: int | None) -> ThreadState:
        tid = self._next_tid
        self._next_tid += 1
        ts = ThreadState(tid=tid, name=f"{name}", gen=gen)
        self.threads[tid] = ts
        self._live.append(ts)
        if self._observing:
            self.observer.on_event(
                ThreadStartEvent(
                    step=self.step_count, tid=parent if parent is not None else tid,
                    child=tid, name=ts.name,
                )
            )
        if parent is not None:
            # SND by parent at spawn, RCV by child immediately: the child has
            # produced no events yet, so receiving now is equivalent to
            # receiving at its first step, and far simpler.
            msg = self._snd(parent)
            if self._observing:
                self.observer.on_event(
                    RcvEvent(step=self.step_count, tid=tid, msg_id=msg)
                )
        self._advance(ts, value=None, priming=True)
        return ts

    def _advance(
        self,
        ts: ThreadState,
        value: Any = None,
        exc: BaseException | None = None,
        priming: bool = False,
    ) -> None:
        """Resume the generator until its next yield (or its end)."""
        try:
            if exc is not None:
                op = ts.gen.throw(exc)
            elif priming:
                op = next(ts.gen)
            else:
                op = ts.gen.send(value)
        except StopIteration:
            self._terminate(ts, None)
        except EngineError:
            raise
        except BaseException as error:  # the thread's crash domain
            self._terminate(ts, error)
        else:
            if op.__class__ is not Op and not isinstance(op, Op):
                raise EngineError(
                    f"{ts} yielded {op!r}; thread bodies must yield Op values"
                )
            ts.pending = op
            if op.label is not None:
                ts.pending_stmt = label_statement(op.label)
                ts.stmt_code = None
            else:
                # Capture the raw site eagerly (the frame is only readable
                # while the generator is suspended, and a later crash must
                # attribute to this op); intern the Statement lazily.  This
                # is innermost_frame() inlined: follow the yield-from chain
                # so composed helpers attribute to the line that actually
                # performed the access.
                gen = ts.gen
                while True:
                    nested = gen.gi_yieldfrom
                    if nested is None or nested.__class__ is not GeneratorType:
                        break
                    gen = nested
                frame = gen.gi_frame
                if frame is None:
                    ts.pending_stmt = FINISHED_STATEMENT
                    ts.stmt_code = None
                else:
                    ts.pending_stmt = None
                    ts.stmt_code = frame.f_code
                    ts.stmt_line = frame.f_lineno

    def _terminate(self, ts: ThreadState, error: BaseException | None) -> None:
        ts.status = _TERMINATED
        stmt = self._stmt(ts)
        ts.pending = None
        # Keep the (materialized) last statement readable via next_stmt();
        # clear the raw site so _stmt() never touches a dead frame's code.
        ts.pending_stmt = stmt
        ts.stmt_code = None
        self._live.remove(ts)
        # Events and crash records carry the picklable ErrorInfo form; the
        # live exception stays on ThreadState for in-process consumers.
        info = ErrorInfo.from_exception(error) if error is not None else None
        if error is not None:
            ts.error = error
            ts.error_stmt = stmt
            crash = ThreadCrash(
                tid=ts.tid, name=ts.name, error=info, stmt=stmt,
                step=self.step_count,
            )
            self.result.crashes.append(crash)
            if self._observing:
                self.observer.on_event(
                    ErrorEvent(step=self.step_count, tid=ts.tid, stmt=stmt, error=info)
                )
        # Termination message: join edges receive from this.
        self._term_msg[ts.tid] = self._snd(ts.tid)
        if self._observing:
            self.observer.on_event(
                ThreadEndEvent(step=self.step_count, tid=ts.tid, error=info)
            )


#: handler method names in OpKind declaration order; ``Execution.__init__``
#: binds these once so ``step`` dispatches via ``tuple[kind_index]``.
_HANDLER_NAMES = (
    "_do_read",
    "_do_write",
    "_do_lock",
    "_do_unlock",
    "_do_wait",
    "_do_notify",
    "_do_notify_all",
    "_do_spawn",
    "_do_join",
    "_do_sleep",
    "_do_interrupt",
    "_do_interrupted",
    "_do_yield",
    "_do_check",
    "_do_reacquire",
)

assert tuple(f"_do_{kind.value}" for kind in OpKind) == _HANDLER_NAMES, (
    "handler table out of sync with OpKind declaration order"
)
