"""Monitor (lock) state for one execution — Java semantics.

Monitors are reentrant.  ``wait`` fully releases the monitor (remembering
the recursion depth) and parks the thread on the monitor's wait set;
``notify``/``notify_all`` move waiters out of the wait set, after which they
must *re-acquire* the monitor before ``wait`` returns — exactly Java's
two-stage wakeup.  The engine models the re-acquisition with an internal
``REACQUIRE`` op so that active schedulers see the contention point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import IllegalMonitorState
from .location import LockId


@dataclass(slots=True)
class MonitorState:
    """Dynamic state of one monitor."""

    owner: int | None = None
    depth: int = 0
    #: tids parked in this monitor's wait set, in arrival order.
    wait_set: list[int] = field(default_factory=list)


class LockTable:
    """All monitor state for one execution, keyed by :class:`LockId`."""

    def __init__(self) -> None:
        self._monitors: dict[LockId, MonitorState] = {}
        #: locks currently held by each thread, as a multiset-ish ordered list
        #: of outermost acquisitions (used for MEM-event locksets).
        self._held: dict[int, list[LockId]] = {}

    def monitor(self, lock: LockId) -> MonitorState:
        state = self._monitors.get(lock)
        if state is None:
            state = MonitorState()
            self._monitors[lock] = state
        return state

    def can_acquire(self, lock: LockId, tid: int) -> bool:
        """True if ``tid`` could acquire ``lock`` right now (free or reentrant).

        Called for every enabledness probe of a blocked LOCK/REACQUIRE op,
        so it must not allocate: a never-acquired monitor reads as free
        without materializing a :class:`MonitorState` for it.
        """
        state = self._monitors.get(lock)
        return state is None or state.owner is None or state.owner == tid

    def acquire(self, lock: LockId, tid: int, depth: int = 1) -> bool:
        """Acquire the monitor; returns True if this was the outermost entry.

        Callers must have checked :meth:`can_acquire`; acquiring a monitor
        owned by another thread is a scheduler bug.
        """
        state = self.monitor(lock)
        if state.owner is not None and state.owner != tid:
            raise IllegalMonitorState(
                f"thread {tid} acquired {lock} owned by thread {state.owner}"
            )
        outermost = state.owner is None
        state.owner = tid
        state.depth += depth
        if outermost:
            self._held.setdefault(tid, []).append(lock)
        return outermost

    def release(self, lock: LockId, tid: int) -> bool:
        """Release one level of the monitor; returns True if fully released."""
        state = self.monitor(lock)
        if state.owner != tid:
            raise IllegalMonitorState(
                f"thread {tid} released {lock} it does not hold"
            )
        state.depth -= 1
        if state.depth == 0:
            state.owner = None
            self._held[tid].remove(lock)
            return True
        return False

    def release_all(self, lock: LockId, tid: int) -> int:
        """Fully release a monitor for ``wait``; returns the depth released."""
        state = self.monitor(lock)
        if state.owner != tid:
            raise IllegalMonitorState(f"thread {tid} waits on {lock} it does not hold")
        depth = state.depth
        state.owner = None
        state.depth = 0
        self._held[tid].remove(lock)
        return depth

    def holds(self, lock: LockId, tid: int) -> bool:
        return self.monitor(lock).owner == tid

    def held_by(self, tid: int) -> frozenset[LockId]:
        """The lockset ``L`` attached to MEM events of thread ``tid``."""
        return frozenset(self._held.get(tid, ()))

    def park_waiter(self, lock: LockId, tid: int) -> None:
        self.monitor(lock).wait_set.append(tid)

    def unpark_one(self, lock: LockId, index: int) -> int | None:
        """Remove and return the waiter at ``index`` (scheduler-chosen), if any."""
        wait_set = self.monitor(lock).wait_set
        if not wait_set:
            return None
        return wait_set.pop(index % len(wait_set))

    def unpark_all(self, lock: LockId) -> list[int]:
        wait_set = self.monitor(lock).wait_set
        woken, wait_set[:] = list(wait_set), []
        return woken

    def remove_waiter(self, lock: LockId, tid: int) -> bool:
        """Drop ``tid`` from the wait set (interrupt path); True if present."""
        wait_set = self.monitor(lock).wait_set
        if tid in wait_set:
            wait_set.remove(tid)
            return True
        return False
