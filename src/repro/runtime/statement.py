"""Statement identity — the ``s`` in the paper's ``NextStmt(s, t)``.

The paper instruments Java bytecode, so a "statement" is a bytecode site
(class, method, line).  Our analog is the source site of the ``yield`` that
produced an operation: ``(file, line, function)``.  Programs may also attach
an explicit ``label`` (the worked examples in Figures 1 and 2 use labels like
``"thread1:5"`` so reports read like the paper).

Identity rules
--------------
* If a statement has a label, the label alone defines identity.  Two ops
  labelled ``"t1:5"`` are the same statement even if emitted from different
  source lines (this lets helpers emit on behalf of a labelled site).
* Otherwise identity is the source site ``(file, line)``.

Statements are value objects: hashable, comparable, and stable across
executions — which is what lets Phase 2 consume the racing pairs that
Phase 1 computed in a *different* execution.

Hot-path notes
--------------
Statements are the single most-allocated value object in an execution (one
per step in the naive design), so the engine goes through the interning
helpers below instead of the constructor: :func:`statement_at` caches one
``Statement`` per ``(code object, line)`` site and :func:`label_statement`
one per label string.  Interned instances also cache their hash, so the
race-set membership test RaceFuzzer performs at every sync point costs one
dict probe with a precomputed hash.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Statement:
    """A program statement site.

    Attributes:
        file: source file of the ``yield`` (empty for labelled statements).
        line: source line of the ``yield`` (0 for labelled statements).
        func: qualified name of the enclosing function, for display only.
        label: optional explicit statement name overriding source identity.
    """

    file: str = ""
    line: int = 0
    func: str = field(default="", compare=False)
    label: str | None = None
    #: lazily computed hash (identity is immutable, so caching is sound).
    _hash: int | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.label is not None:
            # Labelled statements compare by label only.
            object.__setattr__(self, "file", "")
            object.__setattr__(self, "line", 0)

    def __hash__(self) -> int:
        # Mirrors the generated dataclass hash (compare-fields tuple) but
        # computes it once; race-set lookups hash the same statement on
        # every sync point of every Phase 2 trial.
        h = self._hash
        if h is None:
            h = hash((self.file, self.line, self.label))
            object.__setattr__(self, "_hash", h)
        return h

    @property
    def site(self) -> str:
        """Human-readable site name used in race reports."""
        if self.label is not None:
            return self.label
        short = self.file.rsplit("/", 1)[-1]
        if self.func:
            return f"{short}:{self.line}({self.func})"
        return f"{short}:{self.line}"

    def to_token(self) -> dict:
        """Stable JSON-safe encoding; round-trips via :meth:`from_token`.

        Keys with default values are omitted, keeping serialized traces
        compact (MEM events dominate a trace and each carries a statement).
        """
        token: dict = {}
        if self.file:
            token["f"] = self.file
        if self.line:
            token["l"] = self.line
        if self.func:
            token["fn"] = self.func
        if self.label is not None:
            token["lb"] = self.label
        return token

    @classmethod
    def from_token(cls, token: dict) -> "Statement":
        return cls(
            file=token.get("f", ""),
            line=token.get("l", 0),
            func=token.get("fn", ""),
            label=token.get("lb"),
        )

    def __str__(self) -> str:
        return self.site

    def __repr__(self) -> str:
        return f"Statement({self.site!r})"


@dataclass(frozen=True, slots=True)
class StatementPair:
    """An unordered pair of statements — a (potentially) racing pair.

    The pair is normalized so that ``StatementPair(a, b) == StatementPair(b, a)``;
    this is the unit the paper counts in Table 1 ("distinct pairs of
    statements for which there is a race").
    """

    first: Statement
    second: Statement

    def __post_init__(self) -> None:
        a, b = self.first, self.second
        if _sort_key(b) < _sort_key(a):
            object.__setattr__(self, "first", b)
            object.__setattr__(self, "second", a)

    def __contains__(self, stmt: Statement) -> bool:
        return stmt == self.first or stmt == self.second

    def other(self, stmt: Statement) -> Statement:
        """Return the member of the pair that is not ``stmt``."""
        if stmt == self.first:
            return self.second
        if stmt == self.second:
            return self.first
        raise ValueError(f"{stmt} is not a member of {self}")

    def __str__(self) -> str:
        return f"({self.first.site}, {self.second.site})"

    def __repr__(self) -> str:
        return f"StatementPair{self}"


def _sort_key(stmt: Statement) -> tuple[str, str, int]:
    return (stmt.label or "", stmt.file, stmt.line)


# --------------------------------------------------------------------- #
# interning — one Statement per site, shared by every execution in the
# process.  Both caches are bounded by the program text (distinct yield
# sites / distinct labels), not by execution length.
# --------------------------------------------------------------------- #

_SITE_CACHE: dict[tuple, Statement] = {}
_LABEL_CACHE: dict[str, Statement] = {}

#: sentinel site for an op attributed to an already-finished generator
#: (should not happen mid-yield; kept for crash attribution robustness).
FINISHED_STATEMENT = Statement(file="<finished>", line=0)


def statement_at(code, line: int) -> Statement:
    """The interned :class:`Statement` for a ``(code object, line)`` site.

    This replaces per-step ``Statement`` construction: the engine captures
    the raw ``(f_code, f_lineno)`` pair at yield time (two attribute reads)
    and materializes the statement here only when something actually needs
    it — an event, a race-set probe, a crash report.
    """
    key = (code, line)
    stmt = _SITE_CACHE.get(key)
    if stmt is None:
        func = getattr(code, "co_qualname", code.co_name)
        stmt = Statement(file=code.co_filename, line=line, func=func)
        _SITE_CACHE[key] = stmt
    return stmt


def label_statement(label: str) -> Statement:
    """The interned :class:`Statement` for an explicit op label."""
    stmt = _LABEL_CACHE.get(label)
    if stmt is None:
        stmt = Statement(label=label)
        _LABEL_CACHE[label] = stmt
    return stmt


def innermost_frame(gen):
    """The suspended frame a generator's next yield came from (or None).

    Follows the ``gi_yieldfrom`` chain to the innermost suspended generator
    so that ``yield from``-composed helpers (the mini-JDK, Barrier, ...)
    report the line that actually performed the access, mirroring how
    bytecode instrumentation attributes events to library code.
    """
    while True:
        nested = getattr(gen, "gi_yieldfrom", None)
        if nested is None or not hasattr(nested, "gi_frame"):
            break
        gen = nested
    return gen.gi_frame


def statement_from_generator(gen) -> Statement:
    """Derive the (interned) statement for the op a generator just yielded."""
    frame = innermost_frame(gen)
    if frame is None:  # generator already finished; should not happen mid-yield
        return FINISHED_STATEMENT
    return statement_at(frame.f_code, frame.f_lineno)
