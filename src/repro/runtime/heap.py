"""The shared heap of one execution.

Values are keyed by :class:`~repro.runtime.location.Location`.  The heap is
lazily initialized: a read of a never-written location returns the
``default`` carried by the read op (the initial value declared by the
owning :class:`~repro.runtime.sugar.SharedVar` / array / object).  This
keeps shared structures reusable across executions — each
:class:`~repro.runtime.interpreter.Execution` owns a fresh heap, so replay
with the same seed starts from identical state.
"""

from __future__ import annotations

from typing import Any, Iterator

from .location import Location


class Heap:
    """Mutable store mapping locations to values for one execution."""

    def __init__(self) -> None:
        self._cells: dict[Location, Any] = {}

    def read(self, location: Location, default: Any = None) -> Any:
        """Return the current value, or ``default`` if never written."""
        return self._cells.get(location, default)

    def write(self, location: Location, value: Any) -> None:
        """Store ``value`` at ``location``."""
        self._cells[location] = value

    def written(self, location: Location) -> bool:
        """True if the location has been written during this execution."""
        return location in self._cells

    def snapshot(self) -> dict[Location, Any]:
        """A shallow copy of all written cells (for tests and debugging)."""
        return dict(self._cells)

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Location]:
        return iter(self._cells)
