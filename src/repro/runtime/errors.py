"""Error types raised by or inside the concurrent abstract machine.

Two kinds of errors live here:

* *Engine errors* (``EngineError`` and subclasses) indicate misuse of the
  runtime itself — e.g. releasing a lock the thread does not hold.  They
  abort the execution because the program under test is malformed.

* *Simulated program errors* model the Java exceptions that the paper's
  benchmarks throw when a race fires.  They are raised *inside* a simulated
  thread, kill only that thread, and are collected on the
  :class:`~repro.runtime.interpreter.ExecutionResult` — exactly like an
  uncaught exception killing a Java thread.
"""

from __future__ import annotations


class EngineError(Exception):
    """The program under test misused the runtime (engine-level bug)."""


class IllegalMonitorState(EngineError):
    """A thread released, waited on, or notified a lock it does not hold."""


class SchedulerMisuse(EngineError):
    """A scheduler or driver asked the engine to do something impossible.

    Examples: stepping a thread that is not enabled, stepping a terminated
    thread, or referring to an unknown thread id.
    """


class ExecutionLimitExceeded(EngineError):
    """The execution ran longer than ``max_steps`` (possible livelock)."""


class SimulatedError(Exception):
    """Base class for errors thrown by simulated programs.

    Uncaught simulated errors terminate the throwing thread only; the
    execution records them and keeps scheduling the remaining threads, as a
    JVM would.
    """


class AssertionViolation(SimulatedError):
    """An ``ops.check`` assertion failed (the paper's ERROR statements)."""


class ConcurrentModificationError(SimulatedError):
    """Analog of ``java.util.ConcurrentModificationException``."""


class NoSuchElementError(SimulatedError):
    """Analog of ``java.util.NoSuchElementException``."""


class IndexOutOfBoundsError(SimulatedError):
    """Analog of ``java.lang.ArrayIndexOutOfBoundsException``."""


class NullPointerError(SimulatedError):
    """Analog of ``java.lang.NullPointerException``."""


class InterruptedException(SimulatedError):
    """Analog of ``java.lang.InterruptedException``.

    Delivered inside a simulated thread when it is interrupted while waiting
    or sleeping (or when it waits/sleeps with its interrupt flag already
    set).
    """
