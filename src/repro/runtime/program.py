"""Program abstraction: a factory for fresh executions.

A :class:`Program` wraps a *factory*: a zero-argument callable that builds
the program's shared world (SharedVars, Locks, collections, ...) and returns
the generator for the main thread.  Every execution calls the factory once,
so state never leaks between runs — seed-only replay (Section 2.2 of the
paper) depends on this.

Example::

    def make():
        x = SharedVar("x", 0)

        def worker():
            yield x.write(1)

        def main():
            t = yield ops.spawn(worker, name="worker")
            yield ops.join(t)

        return main()

    program = Program(make, name="demo")
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Generator

from .errors import EngineError


class Program:
    """A runnable concurrent program under test."""

    def __init__(self, factory: Callable[[], Generator], name: str | None = None):
        if not callable(factory):
            raise EngineError("Program factory must be callable")
        self.factory = factory
        self.name = name or getattr(factory, "__name__", "program")

    def instantiate(self) -> Generator:
        """Build a fresh main-thread generator (fresh shared world)."""
        gen = self.factory()
        if not inspect.isgenerator(gen):
            raise EngineError(
                f"Program factory for {self.name!r} must return a generator "
                f"(the main thread body), got {type(gen).__name__}"
            )
        return gen

    def __repr__(self) -> str:
        return f"Program({self.name!r})"


def program(factory: Callable[[], Generator]) -> Program:
    """Decorator form: ``@program`` above a factory function."""
    return Program(factory)


def resolve_tid(target: Any) -> int:
    """Accept a ThreadHandle or a raw tid wherever a thread is referenced."""
    tid = getattr(target, "tid", target)
    if not isinstance(tid, int):
        raise EngineError(f"not a thread reference: {target!r}")
    return tid
