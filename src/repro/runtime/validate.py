"""Trace validity checking: audit an event stream against the machine's
own invariants.

Useful in two roles:

* **testing the engine** — the property suite generates random programs,
  runs them under every scheduler, and audits the traces;
* **testing your scheduler** — anyone writing a custom driver on the
  ``schedulable``/``next_op``/``step`` API can attach an
  :class:`~repro.runtime.observer.EventTrace` and assert
  ``validate_trace(trace.events)`` to catch protocol violations (stepping
  disabled threads, lock teleportation, message reordering) at the source.

Checked invariants:

1. event steps are monotonically non-decreasing;
2. every lock has at most one owner, acquires/releases alternate per lock,
   and releases come from the current owner;
3. every ``MemEvent.locks_held`` equals the auditor's reconstruction of
   that thread's held set at that moment;
4. every RCV is preceded by the SND of the same message id;
5. no thread produces events after its ``ThreadEndEvent``;
6. every thread with events was introduced by a ``ThreadStartEvent``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import (
    AcquireEvent,
    DeadlockEvent,
    ErrorEvent,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)


class TraceInvariantError(AssertionError):
    """A trace violated one of the abstract machine's invariants."""


@dataclass
class TraceAudit:
    """Outcome of a validation pass (also handy as a trace summary)."""

    events: int = 0
    mem_events: int = 0
    acquires: int = 0
    threads: set[int] = field(default_factory=set)
    ended: set[int] = field(default_factory=set)
    messages_sent: set[int] = field(default_factory=set)
    messages_received: set[int] = field(default_factory=set)


def validate_trace(events: list[Event]) -> TraceAudit:
    """Audit ``events``; raises :class:`TraceInvariantError` on violation."""
    audit = TraceAudit()
    lock_owner: dict = {}
    held: dict[int, set] = {}
    last_step = 0

    def fail(event: Event, message: str) -> None:
        raise TraceInvariantError(
            f"at step {event.step} ({type(event).__name__}): {message}"
        )

    for event in events:
        audit.events += 1
        if event.step < last_step:
            fail(event, f"step went backwards ({last_step} -> {event.step})")
        last_step = event.step

        if isinstance(event, ThreadStartEvent):
            audit.threads.add(event.child)
            held.setdefault(event.child, set())
            continue
        if isinstance(event, DeadlockEvent):
            continue

        if event.tid not in audit.threads:
            fail(event, f"thread {event.tid} was never started")
        if event.tid in audit.ended and not isinstance(event, ThreadEndEvent):
            fail(event, f"thread {event.tid} acted after terminating")

        if isinstance(event, AcquireEvent):
            audit.acquires += 1
            owner = lock_owner.get(event.lock)
            if owner is not None:
                fail(event, f"{event.lock} acquired while owned by {owner}")
            lock_owner[event.lock] = event.tid
            held[event.tid].add(event.lock)
        elif isinstance(event, ReleaseEvent):
            owner = lock_owner.get(event.lock)
            if owner != event.tid:
                fail(event, f"{event.lock} released by {event.tid}, owner {owner}")
            del lock_owner[event.lock]
            held[event.tid].discard(event.lock)
        elif isinstance(event, MemEvent):
            audit.mem_events += 1
            reconstructed = frozenset(held.get(event.tid, ()))
            if event.locks_held != reconstructed:
                fail(
                    event,
                    f"locks_held {set(event.locks_held)} != reconstruction "
                    f"{set(reconstructed)} for thread {event.tid}",
                )
        elif isinstance(event, SndEvent):
            if event.msg_id in audit.messages_sent:
                fail(event, f"message {event.msg_id} sent twice")
            audit.messages_sent.add(event.msg_id)
        elif isinstance(event, RcvEvent):
            if event.msg_id not in audit.messages_sent:
                fail(event, f"message {event.msg_id} received before sent")
            audit.messages_received.add(event.msg_id)
        elif isinstance(event, ThreadEndEvent):
            audit.ended.add(event.tid)
            # Threads may legitimately die holding monitors (a crash inside
            # a raw critical section), so leftover held locks are not an
            # invariant violation.
        elif isinstance(event, ErrorEvent):
            pass
    return audit
