"""Ergonomic shared-memory and synchronization primitives.

These wrap raw ops so benchmark programs read naturally::

    x = SharedVar("x", 0)
    lock = Lock("L")

    def thread1():
        yield x.write(1)
        yield lock.acquire()
        ...
        yield lock.release()

All of these are *libraries over the instruction set*, not engine features:
``Barrier``, ``CountDownLatch`` and ``BlockingQueue`` are built from locks
and wait/notify exactly as their ``java.util.concurrent`` counterparts are
built over monitors, so the happens-before edges the detectors see are the
real ones.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable

from . import ops
from .location import ElemLoc, FieldLoc, LockId, VarLoc, fresh_uid
from .ops import Op


class SharedVar:
    """A shared scalar with a declared initial value."""

    def __init__(self, name: str = "", init: Any = None):
        self.name = name
        self.init = init
        self.loc = VarLoc(fresh_uid(), name)

    def read(self, label: str | None = None) -> Op:
        return ops.read(self.loc, default=self.init, label=label)

    def write(self, value: Any, label: str | None = None) -> Op:
        return ops.write(self.loc, value, label=label)

    def __repr__(self) -> str:
        return f"SharedVar({self.name or self.loc.uid})"


class SharedCells:
    """An unbounded indexed store (backing storage for lists/vectors).

    There is no bounds checking here — container classes implement their own
    range checks, the same way ``ArrayList.rangeCheck`` does, so that racy
    size/storage mismatches surface as simulated Java exceptions rather than
    engine errors.
    """

    def __init__(self, name: str = "", init: Any = None):
        self.name = name
        self.init = init
        self.uid = fresh_uid()

    def loc(self, index: int) -> ElemLoc:
        return ElemLoc(self.uid, self.name, index)

    def read(self, index: int, label: str | None = None) -> Op:
        return ops.read(self.loc(index), default=self.init, label=label)

    def write(self, index: int, value: Any, label: str | None = None) -> Op:
        return ops.write(self.loc(index), value, label=label)

    def __repr__(self) -> str:
        return f"SharedCells({self.name or self.uid})"


class SharedArray(SharedCells):
    """A fixed-length shared array with Java-style bounds checking."""

    def __init__(self, length: int, name: str = "", init: Any = None):
        super().__init__(name=name, init=init)
        self.length = length

    def _check(self, index: int) -> None:
        if not 0 <= index < self.length:
            from .errors import IndexOutOfBoundsError

            raise IndexOutOfBoundsError(
                f"index {index} out of bounds for {self.name or 'array'}"
                f"[{self.length}]"
            )

    def read(self, index: int, label: str | None = None) -> Op:
        self._check(index)
        return super().read(index, label=label)

    def write(self, index: int, value: Any, label: str | None = None) -> Op:
        self._check(index)
        return super().write(index, value, label=label)


class SharedObject:
    """A shared record with named fields and per-field default values."""

    def __init__(self, name: str = "", **defaults: Any):
        self.name = name
        self.uid = fresh_uid()
        self.defaults = defaults

    def loc(self, field: str) -> FieldLoc:
        return FieldLoc(self.uid, self.name, field)

    def get(self, field: str, label: str | None = None) -> Op:
        return ops.read(self.loc(field), default=self.defaults.get(field), label=label)

    def set(self, field: str, value: Any, label: str | None = None) -> Op:
        return ops.write(self.loc(field), value, label=label)

    def __repr__(self) -> str:
        return f"SharedObject({self.name or self.uid})"


class Lock:
    """A reentrant monitor with Java ``wait``/``notify`` semantics."""

    def __init__(self, name: str = ""):
        self.id = LockId(fresh_uid(), name)
        self.name = name

    def acquire(self, label: str | None = None) -> Op:
        return ops.lock(self.id, label=label)

    def release(self, label: str | None = None) -> Op:
        return ops.unlock(self.id, label=label)

    def wait(self, timeout: int | None = None, label: str | None = None) -> Op:
        return ops.wait(self.id, timeout=timeout, label=label)

    def notify(self, label: str | None = None) -> Op:
        return ops.notify(self.id, label=label)

    def notify_all(self, label: str | None = None) -> Op:
        return ops.notify_all(self.id, label=label)

    def __repr__(self) -> str:
        return f"Lock({self.name or self.id.uid})"


def synchronized(lock: Lock, body: Generator) -> Generator:
    """Run a generator body holding ``lock`` — Java's ``synchronized`` block.

    Exception-safe: the lock is released even if the body (or an interrupt
    delivered into it) raises.  Use as ``result = yield from
    synchronized(lock, self._body())``.

    ``GeneratorExit`` is the one exception we must not shield: it means the
    execution itself is being torn down (a suspended thread is being
    garbage-collected), and yielding a release op at that point has no
    engine left to run it.
    """
    yield lock.acquire()
    try:
        result = yield from body
    except GeneratorExit:
        raise
    except BaseException:
        yield lock.release()
        raise
    yield lock.release()
    return result


class Barrier:
    """A cyclic barrier for ``parties`` threads, built on one monitor."""

    def __init__(self, parties: int, name: str = "barrier"):
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.parties = parties
        self.lock = Lock(f"{name}.lock")
        self._count = SharedVar(f"{name}.count", 0)
        self._generation = SharedVar(f"{name}.generation", 0)

    def wait_for_all(self) -> Generator:
        """Block until all parties arrive; reusable across phases."""
        yield self.lock.acquire()
        generation = yield self._generation.read()
        arrived = (yield self._count.read()) + 1
        yield self._count.write(arrived)
        if arrived == self.parties:
            yield self._count.write(0)
            yield self._generation.write(generation + 1)
            yield self.lock.notify_all()
        else:
            while True:
                yield self.lock.wait()
                now = yield self._generation.read()
                if now != generation:
                    break
        yield self.lock.release()


class CountDownLatch:
    """One-shot latch: ``await_zero`` blocks until ``count_down`` hits zero."""

    def __init__(self, count: int, name: str = "latch"):
        self.lock = Lock(f"{name}.lock")
        self._count = SharedVar(f"{name}.count", count)

    def count_down(self) -> Generator:
        yield self.lock.acquire()
        remaining = (yield self._count.read()) - 1
        yield self._count.write(remaining)
        if remaining <= 0:
            yield self.lock.notify_all()
        yield self.lock.release()

    def await_zero(self) -> Generator:
        yield self.lock.acquire()
        while (yield self._count.read()) > 0:
            yield self.lock.wait()
        yield self.lock.release()


class BlockingQueue:
    """A bounded (or unbounded) FIFO queue over one monitor.

    The queue contents live in shared cells, with head/tail indices as
    shared variables, so detectors see every access.
    """

    def __init__(self, capacity: int | None = None, name: str = "queue"):
        self.capacity = capacity
        self.lock = Lock(f"{name}.lock")
        self._cells = SharedCells(f"{name}.cells")
        self._head = SharedVar(f"{name}.head", 0)
        self._tail = SharedVar(f"{name}.tail", 0)

    def put(self, item: Any) -> Generator:
        yield self.lock.acquire()
        while True:
            head = yield self._head.read()
            tail = yield self._tail.read()
            if self.capacity is None or tail - head < self.capacity:
                break
            yield self.lock.wait()
        yield self._cells.write(tail, item)
        yield self._tail.write(tail + 1)
        yield self.lock.notify_all()
        yield self.lock.release()

    def take(self) -> Generator:
        yield self.lock.acquire()
        while True:
            head = yield self._head.read()
            tail = yield self._tail.read()
            if head < tail:
                break
            yield self.lock.wait()
        item = yield self._cells.read(head)
        yield self._head.write(head + 1)
        yield self.lock.notify_all()
        yield self.lock.release()
        return item

    def size(self) -> Generator:
        yield self.lock.acquire()
        head = yield self._head.read()
        tail = yield self._tail.read()
        yield self.lock.release()
        return tail - head


class AtomicCounter:
    """A lock-protected integer counter (a correctly synchronized cell)."""

    def __init__(self, name: str = "counter", init: int = 0):
        self.lock = Lock(f"{name}.lock")
        self._value = SharedVar(f"{name}.value", init)

    def add(self, delta: int = 1) -> Generator:
        yield self.lock.acquire()
        value = (yield self._value.read()) + delta
        yield self._value.write(value)
        yield self.lock.release()
        return value

    def get(self) -> Generator:
        yield self.lock.acquire()
        value = yield self._value.read()
        yield self.lock.release()
        return value

    def read_unlocked(self) -> Op:
        """A deliberately unsynchronized read (for seeding benign races)."""
        return self._value.read()


def spawn_all(bodies: Iterable, prefix: str = "worker") -> Generator:
    """Spawn one thread per generator-producing callable; returns handles."""
    handles = []
    for i, body in enumerate(bodies):
        handle = yield ops.spawn(body, name=f"{prefix}-{i}")
        handles.append(handle)
    return handles


def join_all(handles: Iterable) -> Generator:
    """Join every handle in order."""
    for handle in handles:
        yield ops.join(handle)
