"""The concurrent abstract machine RaceFuzzer runs on.

Public surface:

* :mod:`repro.runtime.ops` — the instruction set (yielded by thread bodies);
* :class:`Program` / :func:`program` — wrap a program factory;
* :class:`Execution` — one controlled run (``schedulable``/``next_op``/``step``);
* sugar: :class:`SharedVar`, :class:`SharedArray`, :class:`SharedObject`,
  :class:`Lock`, :func:`synchronized`, :class:`Barrier`,
  :class:`CountDownLatch`, :class:`BlockingQueue`, :class:`AtomicCounter`;
* events and the :class:`ExecutionObserver` protocol for detectors.
"""

from . import ops
from .errors import (
    AssertionViolation,
    ConcurrentModificationError,
    EngineError,
    ExecutionLimitExceeded,
    IllegalMonitorState,
    IndexOutOfBoundsError,
    InterruptedException,
    NoSuchElementError,
    NullPointerError,
    SchedulerMisuse,
    SimulatedError,
)
from .events import (
    Access,
    AcquireEvent,
    DeadlockEvent,
    ErrorEvent,
    ErrorInfo,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from .interpreter import Execution, ExecutionResult, ThreadCrash
from .location import (
    ElemLoc,
    FieldLoc,
    Location,
    LockId,
    VarLoc,
    fresh_uid,
    location_from_token,
)
from .observer import EventTrace, ExecutionObserver, ObserverChain
from .ops import Op, OpKind
from .program import Program, program, resolve_tid
from .statement import Statement, StatementPair
from .sugar import (
    AtomicCounter,
    Barrier,
    BlockingQueue,
    CountDownLatch,
    Lock,
    SharedArray,
    SharedCells,
    SharedObject,
    SharedVar,
    join_all,
    spawn_all,
    synchronized,
)
from .thread import ThreadHandle, ThreadState, ThreadStatus
from .validate import TraceAudit, TraceInvariantError, validate_trace

__all__ = [
    "ops",
    "Op",
    "OpKind",
    "Program",
    "program",
    "resolve_tid",
    "Execution",
    "ExecutionResult",
    "ThreadCrash",
    "Statement",
    "StatementPair",
    "Location",
    "VarLoc",
    "FieldLoc",
    "ElemLoc",
    "LockId",
    "fresh_uid",
    "location_from_token",
    "ThreadHandle",
    "ThreadState",
    "ThreadStatus",
    "ExecutionObserver",
    "ObserverChain",
    "EventTrace",
    "Event",
    "Access",
    "ErrorInfo",
    "MemEvent",
    "SndEvent",
    "RcvEvent",
    "AcquireEvent",
    "ReleaseEvent",
    "ThreadStartEvent",
    "ThreadEndEvent",
    "ErrorEvent",
    "DeadlockEvent",
    "SharedVar",
    "SharedCells",
    "SharedArray",
    "SharedObject",
    "Lock",
    "synchronized",
    "Barrier",
    "CountDownLatch",
    "BlockingQueue",
    "AtomicCounter",
    "spawn_all",
    "join_all",
    "TraceAudit",
    "TraceInvariantError",
    "validate_trace",
    "EngineError",
    "SchedulerMisuse",
    "IllegalMonitorState",
    "ExecutionLimitExceeded",
    "SimulatedError",
    "AssertionViolation",
    "ConcurrentModificationError",
    "NoSuchElementError",
    "IndexOutOfBoundsError",
    "NullPointerError",
    "InterruptedException",
]
