"""Observer protocol for execution events.

Detectors (hybrid, happens-before, lockset) and tracing utilities subscribe
to the event stream of an :class:`~repro.runtime.interpreter.Execution`.
Observers are passive: they may record anything but must not mutate the
execution.  This is the library analog of the paper's bytecode
instrumentation callbacks.
"""

from __future__ import annotations

from typing import Iterable

from .events import Event


class ExecutionObserver:
    """Base class; override :meth:`on_event` (and optionally the hooks)."""

    #: If False, the engine skips delivering MemEvents to this observer.
    #: RaceFuzzer sets this on its internal bookkeeping to keep the Phase 2
    #: overhead profile of the paper (only sync ops + the racing pair are
    #: tracked); the hybrid detector leaves it True and pays full cost.
    wants_mem_events: bool = True

    def on_start(self, execution) -> None:
        """Called once before the first step."""

    def on_event(self, event: Event) -> None:
        """Called for every event in execution order."""

    def on_finish(self, execution) -> None:
        """Called once after the last step (including deadlocked endings)."""


class ObserverChain(ExecutionObserver):
    """Fans events out to a sequence of observers, in order."""

    def __init__(self, observers: Iterable[ExecutionObserver]):
        self.observers = list(observers)

    @property
    def wants_mem_events(self) -> bool:  # type: ignore[override]
        return any(obs.wants_mem_events for obs in self.observers)

    def on_start(self, execution) -> None:
        for obs in self.observers:
            obs.on_start(execution)

    def on_event(self, event: Event) -> None:
        for obs in self.observers:
            obs.on_event(event)

    def on_finish(self, execution) -> None:
        for obs in self.observers:
            obs.on_finish(execution)


class EventTrace(ExecutionObserver):
    """Records every event; handy in tests and for debugging schedules."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def of_type(self, event_type: type) -> list[Event]:
        return [e for e in self.events if isinstance(e, event_type)]
