"""Runtime events delivered to execution observers.

These mirror Section 2.1 of the paper: an execution is a sequence of events,
where ``MEM(s, m, a, t, L)`` is a memory access and ``SND(g, t)`` /
``RCV(g, t)`` carry the inter-thread happens-before edges (thread start,
join, and notify→wait).  We additionally expose lock acquire/release and
thread-lifecycle events, which the detectors and the harness use.

Every event carries ``step``, the global step index at which it occurred,
so observers can reconstruct the total order of the execution.

All event classes are slotted: campaigns construct millions of them, and
``__slots__`` dataclasses allocate no per-instance ``__dict__``.

Events are pure value objects: every payload (statements, locations, lock
ids, errors) is a frozen dataclass of primitives, so a whole event stream
pickles and round-trips through the :mod:`repro.trace` codec losslessly.
In particular, uncaught simulated exceptions are carried as structured
:class:`ErrorInfo` records — never as live ``BaseException`` objects, which
cannot leave the process reliably (tracebacks don't pickle, and custom
exception constructors break naive re-raising).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .location import Location, LockId
from .statement import Statement


class Access(enum.Enum):
    """The ``a`` in ``MEM(s, m, a, t, L)``."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, slots=True)
class ErrorInfo:
    """Structured, picklable description of an uncaught simulated exception.

    Attributes:
        type: the exception class name (``AssertionViolation``, ...).
        message: ``str(exception)``.
        module: the defining module of the exception class, so analyses can
            distinguish simulated errors from engine or stdlib ones.
    """

    type: str
    message: str = ""
    module: str = ""

    @classmethod
    def from_exception(cls, error: BaseException) -> "ErrorInfo":
        return cls(
            type=type(error).__name__,
            message=str(error),
            module=type(error).__module__,
        )

    def describe(self) -> str:
        return f"{self.type}({self.message})" if self.message else self.type

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True, slots=True)
class Event:
    """Base class for runtime events."""

    step: int
    tid: int


@dataclass(frozen=True, slots=True)
class MemEvent(Event):
    """``MEM(s, m, a, t, L)``: thread ``tid`` accessed location ``location``
    at statement ``stmt`` holding the set of locks ``locks_held``."""

    stmt: Statement
    location: Location
    access: Access
    locks_held: frozenset[LockId]

    @property
    def is_write(self) -> bool:
        return self.access is Access.WRITE


@dataclass(frozen=True, slots=True)
class SndEvent(Event):
    """``SND(g, t)``: thread ``tid`` sent the message ``msg_id``."""

    msg_id: int


@dataclass(frozen=True, slots=True)
class RcvEvent(Event):
    """``RCV(g, t)``: thread ``tid`` received the message ``msg_id``."""

    msg_id: int


@dataclass(frozen=True, slots=True)
class AcquireEvent(Event):
    """Thread ``tid`` acquired ``lock`` (outermost acquisition only)."""

    lock: LockId
    stmt: Statement | None = None


@dataclass(frozen=True, slots=True)
class ReleaseEvent(Event):
    """Thread ``tid`` released ``lock`` (outermost release only)."""

    lock: LockId
    stmt: Statement | None = None


@dataclass(frozen=True, slots=True)
class ThreadStartEvent(Event):
    """A new thread ``child`` was spawned by ``tid`` (tid 0's start has tid 0)."""

    child: int
    name: str


@dataclass(frozen=True, slots=True)
class ThreadEndEvent(Event):
    """Thread ``tid`` terminated; ``error`` describes its uncaught
    exception, if any."""

    error: ErrorInfo | None


@dataclass(frozen=True, slots=True)
class ErrorEvent(Event):
    """An uncaught simulated exception escaped thread ``tid`` at ``stmt``."""

    stmt: Statement | None
    error: ErrorInfo


@dataclass(frozen=True, slots=True)
class DeadlockEvent(Event):
    """Execution ended with live but permanently blocked threads."""

    blocked: tuple[int, ...]


__all__ = [
    "Access",
    "ErrorInfo",
    "Event",
    "MemEvent",
    "SndEvent",
    "RcvEvent",
    "AcquireEvent",
    "ReleaseEvent",
    "ThreadStartEvent",
    "ThreadEndEvent",
    "ErrorEvent",
    "DeadlockEvent",
]
