"""``java.util.ArrayList`` analog: index-addressed storage, fail-fast iterator.

Unsynchronized, like the original — thread safety is supposed to come from
the :mod:`repro.jdk.collections` decorators.  The iterator reproduces
``ArrayList.Itr`` exactly: ``next()`` first checks for comodification
(throwing :class:`ConcurrentModificationError`), then checks the cursor
against ``size`` (throwing :class:`NoSuchElementError`) — so racing
mutations surface as the same two exceptions the paper reports.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.errors import (
    ConcurrentModificationError,
    IndexOutOfBoundsError,
    NoSuchElementError,
)
from repro.runtime.sugar import SharedCells, SharedVar

from .abstract_collection import AbstractCollection


class ArrayListIterator:
    """Fail-fast iterator over an :class:`ArrayList` (``ArrayList.Itr``)."""

    def __init__(self, owner: "ArrayList", expected_mod_count: int):
        self.owner = owner
        self.cursor = 0  # thread-local, like the Java field of the Itr object
        self.last_returned = -1
        self.expected_mod_count = expected_mod_count

    def has_next(self) -> Generator:
        size = yield self.owner._size.read()
        return self.cursor != size

    def next(self) -> Generator:
        yield from self._check_comodification()
        index = self.cursor
        size = yield self.owner._size.read()
        if index >= size:
            raise NoSuchElementError(f"cursor {index} >= size {size}")
        element = yield self.owner._cells.read(index)
        self.cursor = index + 1
        self.last_returned = index
        return element

    def remove(self) -> Generator:
        if self.last_returned < 0:
            raise NoSuchElementError("next() has not been called")
        yield from self._check_comodification()
        yield from self.owner.remove_at(self.last_returned)
        self.cursor = self.last_returned
        self.last_returned = -1
        self.expected_mod_count = yield self.owner._mod_count.read()

    def _check_comodification(self) -> Generator:
        mod_count = yield self.owner._mod_count.read()
        if mod_count != self.expected_mod_count:
            raise ConcurrentModificationError(
                f"{self.owner.name}: modCount {mod_count} != "
                f"expected {self.expected_mod_count}"
            )


class ArrayList(AbstractCollection):
    """Growable index-addressed list over shared cells."""

    def __init__(self, name: str = "arraylist"):
        super().__init__(name)
        self._cells = SharedCells(f"{name}.elementData")
        self._size = SharedVar(f"{name}.size", 0)
        self._mod_count = SharedVar(f"{name}.modCount", 0)

    # --- structural ops --------------------------------------------------- #

    def iterator(self) -> Generator:
        expected = yield self._mod_count.read()
        return ArrayListIterator(self, expected)

    def add(self, value: Any) -> Generator:
        size = yield self._size.read()
        yield self._cells.write(size, value)
        yield self._size.write(size + 1)
        yield from self._bump_mod_count()
        return True

    def get(self, index: int) -> Generator:
        yield from self._range_check(index)
        element = yield self._cells.read(index)
        return element

    def set(self, index: int, value: Any) -> Generator:
        yield from self._range_check(index)
        old = yield self._cells.read(index)
        yield self._cells.write(index, value)
        return old

    def index_of(self, value: Any) -> Generator:
        size = yield self._size.read()
        for index in range(size):
            element = yield self._cells.read(index)
            if element == value:
                return index
        return -1

    def contains(self, value: Any) -> Generator:
        """ArrayList overrides contains with the indexed scan (indexOf)."""
        index = yield from self.index_of(value)
        return index >= 0

    def remove_at(self, index: int) -> Generator:
        yield from self._range_check(index)
        removed = yield self._cells.read(index)
        size = yield self._size.read()
        for position in range(index, size - 1):  # System.arraycopy
            shifted = yield self._cells.read(position + 1)
            yield self._cells.write(position, shifted)
        yield self._size.write(size - 1)
        yield from self._bump_mod_count()
        return removed

    def remove(self, value: Any) -> Generator:
        index = yield from self.index_of(value)
        if index < 0:
            return False
        yield from self.remove_at(index)
        return True

    def clear(self) -> Generator:
        """ArrayList.clear: O(1) size reset plus a modCount bump."""
        yield self._size.write(0)
        yield from self._bump_mod_count()

    # --- helpers ---------------------------------------------------------- #

    def _bump_mod_count(self) -> Generator:
        mod_count = yield self._mod_count.read()
        yield self._mod_count.write(mod_count + 1)

    def _range_check(self, index: int) -> Generator:
        size = yield self._size.read()
        if not 0 <= index < size:
            raise IndexOutOfBoundsError(f"{self.name}: index {index}, size {size}")
