"""``java.util.Vector`` as of JDK 1.1 — self-synchronized, with real holes.

The paper's ``vector 1.1`` row reports 9 real races, all benign (0
exceptions).  JDK 1.1's Vector synchronized its mutators and most readers
on ``this``, but several hot-path readers and the enumeration protocol
read ``elementCount``/``elementData`` without the monitor.  We reproduce
that shape: mutators and indexed readers are synchronized; ``size``,
``is_empty``, ``capacity_used``, ``copy_into`` and the (non-fail-fast)
enumerator read shared state unsynchronized.  Each unsynchronized read
statement forms a real racing pair with each mutator write statement it
overlaps — real, and benign by construction (stale values are tolerated;
nothing throws).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.errors import NoSuchElementError
from repro.runtime.sugar import Lock, SharedCells, SharedVar, synchronized


class VectorEnumeration:
    """JDK 1.1 ``Enumeration``: not fail-fast, unsynchronized reads."""

    def __init__(self, owner: "Vector"):
        self.owner = owner
        self.cursor = 0

    def has_more_elements(self) -> Generator:
        count = yield self.owner._count.read()
        return self.cursor < count

    def next_element(self) -> Generator:
        # 1.1 semantics: no comodification check.  A concurrent shrink can
        # make the read return the cell's stale (or default) content; the
        # enumeration tolerates it rather than throwing.
        element = yield self.owner._cells.read(self.cursor)
        self.cursor += 1
        return element


class Vector:
    """Self-synchronized growable array (JDK 1.1 surface)."""

    def __init__(self, name: str = "vector"):
        self.name = name
        self.lock = Lock(f"{name}.this")
        self._cells = SharedCells(f"{name}.elementData")
        self._count = SharedVar(f"{name}.elementCount", 0)

    # --- synchronized mutators ------------------------------------------- #

    def add_element(self, value: Any) -> Generator:
        yield from synchronized(self.lock, self._add_element(value))

    def _add_element(self, value: Any) -> Generator:
        count = yield self._count.read()
        yield self._cells.write(count, value)
        yield self._count.write(count + 1)

    def remove_element(self, value: Any) -> Generator:
        removed = yield from synchronized(self.lock, self._remove_element(value))
        return removed

    def _remove_element(self, value: Any) -> Generator:
        count = yield self._count.read()
        for index in range(count):
            element = yield self._cells.read(index)
            if element == value:
                for position in range(index, count - 1):
                    shifted = yield self._cells.read(position + 1)
                    yield self._cells.write(position, shifted)
                yield self._count.write(count - 1)
                return True
        return False

    def remove_all_elements(self) -> Generator:
        yield from synchronized(self.lock, self._remove_all_elements())

    def _remove_all_elements(self) -> Generator:
        count = yield self._count.read()
        for index in range(count):
            yield self._cells.write(index, None)
        yield self._count.write(0)

    def set_element_at(self, value: Any, index: int) -> Generator:
        yield from synchronized(self.lock, self._set_element_at(value, index))

    def _set_element_at(self, value: Any, index: int) -> Generator:
        count = yield self._count.read()
        if not 0 <= index < count:
            raise NoSuchElementError(f"{self.name}: index {index}, count {count}")
        yield self._cells.write(index, value)

    # --- synchronized readers --------------------------------------------- #

    def element_at(self, index: int) -> Generator:
        element = yield from synchronized(self.lock, self._element_at(index))
        return element

    def _element_at(self, index: int) -> Generator:
        count = yield self._count.read()
        if not 0 <= index < count:
            raise NoSuchElementError(f"{self.name}: index {index}, count {count}")
        element = yield self._cells.read(index)
        return element

    def first_element(self) -> Generator:
        element = yield from synchronized(self.lock, self._first_element())
        return element

    def _first_element(self) -> Generator:
        count = yield self._count.read()
        if count == 0:
            raise NoSuchElementError(f"{self.name} is empty")
        element = yield self._cells.read(0)
        return element

    def index_of(self, value: Any) -> Generator:
        index = yield from synchronized(self.lock, self._index_of(value))
        return index

    def _index_of(self, value: Any) -> Generator:
        count = yield self._count.read()
        for index in range(count):
            element = yield self._cells.read(index)
            if element == value:
                return index
        return -1

    def contains(self, value: Any) -> Generator:
        index = yield from self.index_of(value)
        return index >= 0

    # --- the JDK 1.1 unsynchronized readers (the 9 benign races) --------- #

    def size(self) -> Generator:
        """Unsynchronized ``elementCount`` read — races with every mutator."""
        count = yield self._count.read()
        return count

    def is_empty(self) -> Generator:
        """Unsynchronized emptiness probe."""
        count = yield self._count.read()
        return count == 0

    def copy_into(self, limit: int | None = None) -> Generator:
        """Unsynchronized bulk copy (``copyInto``): count + cell reads race.

        Tolerates concurrent shrinking (stale cells come back as ``None``)
        so the race stays benign, as in the paper's vector row.
        """
        count = yield self._count.read()
        if limit is not None:
            count = min(count, limit)
        snapshot = []
        for index in range(count):
            snapshot.append((yield self._cells.read(index)))
        return snapshot

    def elements(self) -> VectorEnumeration:
        """Unsynchronized enumeration (non-fail-fast)."""
        return VectorEnumeration(self)
