"""``java.util.Collections.synchronizedList/Set`` — the decorators with the bug.

Faithful to the JDK: every *own* operation locks the wrapper's mutex, and
the bulk operations simply delegate to the backing collection's
``AbstractCollection`` implementations **while holding only this wrapper's
mutex** — so iterating the *argument* collection happens without the
argument's lock.  ``iterator()`` delegates unsynchronized (the JDK
documents "it is imperative that the user manually synchronize"), which is
what lets ``l1.containsAll(l2)`` race with ``l2.removeAll(...)`` and throw
``ConcurrentModificationError``/``NoSuchElementError`` (Section 5.3).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.sugar import Lock, synchronized

from .abstract_collection import AbstractCollection
from .array_list import ArrayList
from .hash_set import HashSet
from .linked_list import LinkedList
from .tree_set import TreeSet


class SynchronizedCollection:
    """Decorator adding one mutex around a backing collection's own ops."""

    def __init__(self, backing: AbstractCollection, name: str | None = None):
        self.backing = backing
        self.name = name or f"sync({backing.name})"
        self.mutex = Lock(f"{self.name}.mutex")

    # --- synchronized own operations -------------------------------------- #

    def add(self, value: Any) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.add(value))
        return result

    def remove(self, value: Any) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.remove(value))
        return result

    def contains(self, value: Any) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.contains(value))
        return result

    def size(self) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.size())
        return result

    def is_empty(self) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.is_empty())
        return result

    def clear(self) -> Generator:
        yield from synchronized(self.mutex, self.backing.clear())

    # --- the buggy bulk operations ----------------------------------------- #
    # Only *this* wrapper's mutex is held; the argument's collection is
    # iterated bare.  This is exactly the JDK's SynchronizedCollection.

    def contains_all(self, other) -> Generator:
        result = yield from synchronized(
            self.mutex, self.backing.contains_all(other)
        )
        return result

    def add_all(self, other) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.add_all(other))
        return result

    def remove_all(self, other) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.remove_all(other))
        return result

    def equals(self, other) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.equals(other))
        return result

    # --- unsynchronized delegation (per the JDK's documented contract) ---- #

    def iterator(self) -> Generator:
        """Unsynchronized: "the user must manually synchronize" (JDK doc)."""
        iterator = yield from self.backing.iterator()
        return iterator

    def to_pylist(self) -> Generator:
        snapshot = yield from synchronized(self.mutex, self.backing.to_pylist())
        return snapshot

    def __repr__(self) -> str:
        return f"SynchronizedCollection({self.backing!r})"


class SynchronizedList(SynchronizedCollection):
    """List-shaped decorator: adds the positional operations."""

    def get(self, index: int) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.get(index))
        return result

    def set(self, index: int, value: Any) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.set(index, value))
        return result

    def index_of(self, value: Any) -> Generator:
        result = yield from synchronized(self.mutex, self.backing.index_of(value))
        return result


def synchronized_list(backing: ArrayList | LinkedList) -> SynchronizedList:
    """``Collections.synchronizedList`` analog."""
    return SynchronizedList(backing)


def synchronized_set(backing: HashSet | TreeSet) -> SynchronizedCollection:
    """``Collections.synchronizedSet`` analog."""
    return SynchronizedCollection(backing)
