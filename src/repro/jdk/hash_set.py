"""``java.util.HashSet`` analog: chained buckets over shared cells.

Each bucket holds an immutable tuple chain; mutating a bucket is a shared
read followed by a shared write of the rebuilt chain, which is precisely
the two-step non-atomicity that makes unsynchronized HashSet mutations
race.  Iteration walks buckets in order and is fail-fast via ``modCount``,
like ``HashMap.HashIterator``.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.errors import ConcurrentModificationError, NoSuchElementError
from repro.runtime.sugar import SharedCells, SharedVar

from .abstract_collection import AbstractCollection


class HashSetIterator:
    """Bucket-walking fail-fast iterator (``HashMap.HashIterator``)."""

    def __init__(self, owner: "HashSet", expected_mod_count: int):
        self.owner = owner
        self.expected_mod_count = expected_mod_count
        self.bucket = 0
        self.offset = 0
        self.returned = 0
        self.last_returned: Any = None
        self.has_last = False

    def has_next(self) -> Generator:
        # Java HashIterator tests the next-entry pointer, NOT the size: peek
        # ahead through the buckets without consuming.  A concurrent shrink
        # does not end the walk early — next() throws on the modCount skew.
        bucket, offset = self.bucket, self.offset
        while bucket < self.owner.capacity:
            chain = (yield self.owner._table.read(bucket)) or ()
            if offset < len(chain):
                return True
            bucket += 1
            offset = 0
        return False

    def next(self) -> Generator:
        yield from self._check_comodification()
        while self.bucket < self.owner.capacity:
            chain = yield self.owner._table.read(self.bucket)
            chain = chain or ()
            if self.offset < len(chain):
                element = chain[self.offset]
                self.offset += 1
                self.returned += 1
                self.last_returned = element
                self.has_last = True
                return element
            self.bucket += 1
            self.offset = 0
        raise NoSuchElementError(f"{self.owner.name}: ran out of buckets")

    def remove(self) -> Generator:
        if not self.has_last:
            raise NoSuchElementError("next() has not been called")
        yield from self._check_comodification()
        yield from self.owner.remove(self.last_returned)
        self.has_last = False
        self.returned -= 1
        self.offset = max(0, self.offset - 1)
        self.expected_mod_count = yield self.owner._mod_count.read()

    def _check_comodification(self) -> Generator:
        mod_count = yield self.owner._mod_count.read()
        if mod_count != self.expected_mod_count:
            raise ConcurrentModificationError(
                f"{self.owner.name}: modCount {mod_count} != "
                f"expected {self.expected_mod_count}"
            )


class HashSet(AbstractCollection):
    """Hash set with a fixed bucket table (no resize; capacity is ample)."""

    def __init__(self, name: str = "hashset", capacity: int = 16):
        super().__init__(name)
        self.capacity = capacity
        self._table = SharedCells(f"{name}.table", init=())
        self._size = SharedVar(f"{name}.size", 0)
        self._mod_count = SharedVar(f"{name}.modCount", 0)

    def _bucket_of(self, value: Any) -> int:
        return hash(value) % self.capacity

    def iterator(self) -> Generator:
        expected = yield self._mod_count.read()
        return HashSetIterator(self, expected)

    def add(self, value: Any) -> Generator:
        bucket = self._bucket_of(value)
        chain = (yield self._table.read(bucket)) or ()
        if value in chain:
            return False
        yield self._table.write(bucket, chain + (value,))
        size = yield self._size.read()
        yield self._size.write(size + 1)
        yield from self._bump_mod_count()
        return True

    def contains(self, value: Any) -> Generator:
        bucket = self._bucket_of(value)
        chain = (yield self._table.read(bucket)) or ()
        return value in chain

    def remove(self, value: Any) -> Generator:
        bucket = self._bucket_of(value)
        chain = (yield self._table.read(bucket)) or ()
        if value not in chain:
            return False
        yield self._table.write(bucket, tuple(v for v in chain if v != value))
        size = yield self._size.read()
        yield self._size.write(size - 1)
        yield from self._bump_mod_count()
        return True

    def _bump_mod_count(self) -> Generator:
        mod_count = yield self._mod_count.read()
        yield self._mod_count.write(mod_count + 1)
