"""``java.util.LinkedList`` analog: doubly linked header ring, fail-fast
iterator — JDK 1.4.2 structure (``header`` sentinel, ``modCount``).

Every node is a :class:`~repro.runtime.sugar.SharedObject`, so node-level
link traversal produces the per-field shared accesses a bytecode
instrumenter would see, and racing structural mutations corrupt traversal
exactly the way they do in Java (a detached node's ``next`` leads nowhere,
the iterator notices the modCount skew, etc.).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.errors import (
    ConcurrentModificationError,
    IndexOutOfBoundsError,
    NoSuchElementError,
    NullPointerError,
)
from repro.runtime.sugar import SharedObject, SharedVar

from .abstract_collection import AbstractCollection


def _new_node(name: str, element: Any) -> SharedObject:
    return SharedObject(name, element=element, next=None, prev=None)


class LinkedListIterator:
    """``LinkedList.ListItr``: walks nodes, fail-fast on modCount."""

    def __init__(self, owner: "LinkedList", expected_mod_count: int):
        self.owner = owner
        self.next_node: SharedObject | None = None  # filled by _prime
        self.last_returned: SharedObject | None = None
        self.expected_mod_count = expected_mod_count
        self.index = 0

    def _prime(self) -> Generator:
        self.next_node = yield self.owner._header.get("next")

    def has_next(self) -> Generator:
        size = yield self.owner._size.read()
        return self.index != size

    def next(self) -> Generator:
        yield from self._check_comodification()
        size = yield self.owner._size.read()
        if self.index >= size:
            raise NoSuchElementError(f"{self.owner.name}: walked past the tail")
        node = self.next_node
        if node is None or node is self.owner._header:
            raise NoSuchElementError(f"{self.owner.name}: hit the header early")
        element = yield node.get("element")
        self.next_node = yield node.get("next")
        self.last_returned = node
        self.index += 1
        return element

    def remove(self) -> Generator:
        if self.last_returned is None:
            raise NoSuchElementError("next() has not been called")
        yield from self._check_comodification()
        yield from self.owner._unlink(self.last_returned)
        self.last_returned = None
        self.index -= 1
        self.expected_mod_count = yield self.owner._mod_count.read()

    def _check_comodification(self) -> Generator:
        mod_count = yield self.owner._mod_count.read()
        if mod_count != self.expected_mod_count:
            raise ConcurrentModificationError(
                f"{self.owner.name}: modCount {mod_count} != "
                f"expected {self.expected_mod_count}"
            )


class LinkedList(AbstractCollection):
    """Doubly linked list with a sentinel header node."""

    def __init__(self, name: str = "linkedlist"):
        super().__init__(name)
        self._header = _new_node(f"{name}.header", None)
        self._size = SharedVar(f"{name}.size", 0)
        self._mod_count = SharedVar(f"{name}.modCount", 0)
        self._node_counter = 0
        # The empty ring points at itself; defaults express the initial state.
        self._header.defaults["next"] = self._header
        self._header.defaults["prev"] = self._header

    # --- structural ops --------------------------------------------------- #

    def iterator(self) -> Generator:
        expected = yield self._mod_count.read()
        iterator = LinkedListIterator(self, expected)
        yield from iterator._prime()
        return iterator

    def add(self, value: Any) -> Generator:
        """Append before the header (i.e. at the tail)."""
        yield from self._insert_before(self._header, value)
        return True

    def add_first(self, value: Any) -> Generator:
        successor = yield self._header.get("next")
        yield from self._insert_before(successor, value)

    def get_first(self) -> Generator:
        node = yield self._header.get("next")
        if node is self._header:
            raise NoSuchElementError(f"{self.name} is empty")
        element = yield node.get("element")
        return element

    def remove_first(self) -> Generator:
        node = yield self._header.get("next")
        if node is self._header:
            raise NoSuchElementError(f"{self.name} is empty")
        element = yield node.get("element")
        yield from self._unlink(node)
        return element

    def get(self, index: int) -> Generator:
        node = yield from self._node_at(index)
        element = yield node.get("element")
        return element

    def remove(self, value: Any) -> Generator:
        node = yield self._header.get("next")
        while node is not self._header:
            if node is None:
                raise NullPointerError(f"{self.name}: broken link during scan")
            element = yield node.get("element")
            if element == value:
                yield from self._unlink(node)
                return True
            node = yield node.get("next")
        return False

    # --- internals ---------------------------------------------------------#

    def _insert_before(self, successor: SharedObject, value: Any) -> Generator:
        self._node_counter += 1
        node = _new_node(f"{self.name}.node{self._node_counter}", value)
        predecessor = yield successor.get("prev")
        yield node.set("prev", predecessor)
        yield node.set("next", successor)
        yield predecessor.set("next", node)
        yield successor.set("prev", node)
        size = yield self._size.read()
        yield self._size.write(size + 1)
        yield from self._bump_mod_count()

    def _unlink(self, node: SharedObject) -> Generator:
        predecessor = yield node.get("prev")
        successor = yield node.get("next")
        if predecessor is None or successor is None:
            raise NullPointerError(f"{self.name}: unlinking a detached node")
        yield predecessor.set("next", successor)
        yield successor.set("prev", predecessor)
        size = yield self._size.read()
        yield self._size.write(size - 1)
        yield from self._bump_mod_count()

    def _node_at(self, index: int) -> Generator:
        size = yield self._size.read()
        if not 0 <= index < size:
            raise IndexOutOfBoundsError(f"{self.name}: index {index}, size {size}")
        node = yield self._header.get("next")
        for _ in range(index):
            if node is self._header or node is None:
                raise IndexOutOfBoundsError(f"{self.name}: list shrank mid-walk")
            node = yield node.get("next")
        if node is self._header or node is None:
            raise IndexOutOfBoundsError(f"{self.name}: list shrank mid-walk")
        return node

    def _bump_mod_count(self) -> Generator:
        mod_count = yield self._mod_count.read()
        yield self._mod_count.write(mod_count + 1)
