"""``java.util.Hashtable`` as of JDK 1.1 — the synchronized map, with the
era's real soft spots.

Like :class:`~repro.jdk.vector.Vector`, Hashtable predates the collections
framework and synchronizes its own methods on ``this``.  What it did *not*
synchronize in 1.1 — reproduced here — is the enumeration protocol
(``keys()``/``elements()`` walk the bucket table bare and are not
fail-fast) and the value-scan fast path.  Those race against every
mutator: usually benignly (stale chains), but a shrink landing between
``has_more_elements`` and ``next_element`` surfaces as
``NoSuchElementError`` — the crash mode 1.1 really had.

Buckets hold immutable ``((key, value), ...)`` chains; mutating a bucket
is a read of the old chain plus a write of the rebuilt one, so racing
accesses land on single shared cells exactly as the detectors expect.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.errors import NoSuchElementError, NullPointerError
from repro.runtime.sugar import Lock, SharedCells, SharedVar, synchronized


class HashtableEnumeration:
    """JDK 1.1 ``Enumeration``: unsynchronized, not fail-fast.

    ``values=True`` walks values, otherwise keys.  Mid-walk mutation is
    mostly tolerated (a shrunken chain shortens the walk), but a shrink
    between ``has_more_elements`` and ``next_element`` leaves the caller
    holding a promise the table no longer keeps — ``NoSuchElementError``,
    as in 1.1.
    """

    def __init__(self, owner: "Hashtable", values: bool):
        self.owner = owner
        self.values = values
        self.bucket = 0
        self.offset = 0

    def has_more_elements(self) -> Generator:
        bucket, offset = self.bucket, self.offset
        while bucket < self.owner.capacity:
            chain = (yield self.owner._table.read(bucket)) or ()
            if offset < len(chain):
                return True
            bucket += 1
            offset = 0
        return False

    def next_element(self) -> Generator:
        while self.bucket < self.owner.capacity:
            chain = (yield self.owner._table.read(self.bucket)) or ()
            if self.offset < len(chain):
                key, value = chain[self.offset]
                self.offset += 1
                return value if self.values else key
            self.bucket += 1
            self.offset = 0
        raise NoSuchElementError(f"{self.owner.name}: enumeration exhausted")


class Hashtable:
    """Self-synchronized hash map (JDK 1.1 surface)."""

    def __init__(self, name: str = "hashtable", capacity: int = 11):
        self.name = name
        self.capacity = capacity
        self.lock = Lock(f"{name}.this")
        self._table = SharedCells(f"{name}.table", init=())
        self._count = SharedVar(f"{name}.count", 0)

    def _bucket_of(self, key: Any) -> int:
        return hash(key) % self.capacity

    # --- synchronized map operations -------------------------------------- #

    def put(self, key: Any, value: Any) -> Generator:
        """Insert or replace; returns the previous value (Java semantics).

        Java's Hashtable rejects null keys and values with NPE.
        """
        if key is None or value is None:
            raise NullPointerError(f"{self.name}: Hashtable forbids nulls")
        old = yield from synchronized(self.lock, self._put(key, value))
        return old

    def _put(self, key: Any, value: Any) -> Generator:
        bucket = self._bucket_of(key)
        chain = (yield self._table.read(bucket)) or ()
        for index, (existing_key, existing_value) in enumerate(chain):
            if existing_key == key:
                rebuilt = chain[:index] + ((key, value),) + chain[index + 1:]
                yield self._table.write(bucket, rebuilt)
                return existing_value
        yield self._table.write(bucket, chain + ((key, value),))
        count = yield self._count.read()
        yield self._count.write(count + 1)
        return None

    def get(self, key: Any) -> Generator:
        value = yield from synchronized(self.lock, self._get(key))
        return value

    def _get(self, key: Any) -> Generator:
        chain = (yield self._table.read(self._bucket_of(key))) or ()
        for existing_key, value in chain:
            if existing_key == key:
                return value
        return None

    def remove(self, key: Any) -> Generator:
        old = yield from synchronized(self.lock, self._remove(key))
        return old

    def _remove(self, key: Any) -> Generator:
        bucket = self._bucket_of(key)
        chain = (yield self._table.read(bucket)) or ()
        for index, (existing_key, value) in enumerate(chain):
            if existing_key == key:
                yield self._table.write(bucket, chain[:index] + chain[index + 1:])
                count = yield self._count.read()
                yield self._count.write(count - 1)
                return value
        return None

    def contains_key(self, key: Any) -> Generator:
        result = yield from synchronized(self.lock, self._contains_key(key))
        return result

    def _contains_key(self, key: Any) -> Generator:
        chain = (yield self._table.read(self._bucket_of(key))) or ()
        return any(existing_key == key for existing_key, _ in chain)

    def size(self) -> Generator:
        count = yield from synchronized(self.lock, self._size())
        return count

    def _size(self) -> Generator:
        count = yield self._count.read()
        return count

    def clear(self) -> Generator:
        yield from synchronized(self.lock, self._clear())

    def _clear(self) -> Generator:
        for bucket in range(self.capacity):
            yield self._table.write(bucket, ())
        yield self._count.write(0)

    # --- the JDK 1.1 unsynchronized surface (real, benign races) --------- #

    def contains_value(self, value: Any) -> Generator:
        """Unsynchronized full scan (``contains(Object)`` in 1.1 spirit):
        races with every mutator; stale chains are tolerated."""
        for bucket in range(self.capacity):
            chain = (yield self._table.read(bucket)) or ()
            for _, existing_value in chain:
                if existing_value == value:
                    return True
        return False

    def keys(self) -> HashtableEnumeration:
        """Unsynchronized, non-fail-fast key enumeration."""
        return HashtableEnumeration(self, values=False)

    def elements(self) -> HashtableEnumeration:
        """Unsynchronized, non-fail-fast value enumeration."""
        return HashtableEnumeration(self, values=True)
