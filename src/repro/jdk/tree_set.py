"""``java.util.TreeSet`` analog: sorted set with in-order fail-fast iteration.

The JDK backs TreeSet with a red-black ``TreeMap``; the bugs the paper
found (``containsAll``/``addAll`` iterating the argument without its lock)
live entirely in the *iteration protocol* — modCount discipline and node
traversal — not in rebalancing.  We therefore back the set with a sorted
singly linked node chain (ordered insert, in-order walk, modCount
fail-fast), which exposes the same shared-access structure to the
detectors at a fraction of the complexity.  DESIGN.md records this
substitution.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.errors import ConcurrentModificationError, NoSuchElementError
from repro.runtime.sugar import SharedObject, SharedVar

from .abstract_collection import AbstractCollection


class TreeSetIterator:
    """In-order walk of the sorted chain, fail-fast on modCount."""

    def __init__(self, owner: "TreeSet", expected_mod_count: int):
        self.owner = owner
        self.expected_mod_count = expected_mod_count
        self.next_node: SharedObject | None = None
        self.last_returned: Any = None
        self.has_last = False
        self.index = 0

    def _prime(self) -> Generator:
        self.next_node = yield self.owner._head.get("next")

    def has_next(self) -> Generator:
        # Java TreeMap iterators test the successor pointer, NOT the size:
        # a concurrent shrink therefore does not end the walk early — the
        # next() call notices the modCount skew and throws instead.
        return self.next_node is not None
        yield  # unreachable; keeps this a generator like its callers expect

    def next(self) -> Generator:
        yield from self._check_comodification()
        node = self.next_node
        if node is None:
            raise NoSuchElementError(f"{self.owner.name}: walked off the chain")
        element = yield node.get("element")
        self.next_node = yield node.get("next")
        self.index += 1
        self.last_returned = element
        self.has_last = True
        return element

    def remove(self) -> Generator:
        if not self.has_last:
            raise NoSuchElementError("next() has not been called")
        yield from self._check_comodification()
        yield from self.owner.remove(self.last_returned)
        self.has_last = False
        self.index -= 1
        self.expected_mod_count = yield self.owner._mod_count.read()

    def _check_comodification(self) -> Generator:
        mod_count = yield self.owner._mod_count.read()
        if mod_count != self.expected_mod_count:
            raise ConcurrentModificationError(
                f"{self.owner.name}: modCount {mod_count} != "
                f"expected {self.expected_mod_count}"
            )


class TreeSet(AbstractCollection):
    """Sorted set over a sentinel-headed singly linked chain."""

    def __init__(self, name: str = "treeset"):
        super().__init__(name)
        self._head = SharedObject(f"{name}.head", element=None, next=None)
        self._size = SharedVar(f"{name}.size", 0)
        self._mod_count = SharedVar(f"{name}.modCount", 0)
        self._node_counter = 0

    def iterator(self) -> Generator:
        expected = yield self._mod_count.read()
        iterator = TreeSetIterator(self, expected)
        yield from iterator._prime()
        return iterator

    def add(self, value: Any) -> Generator:
        previous = self._head
        node = yield self._head.get("next")
        while node is not None:
            element = yield node.get("element")
            if element == value:
                return False
            if element > value:
                break
            previous = node
            node = yield node.get("next")
        self._node_counter += 1
        fresh = SharedObject(
            f"{self.name}.node{self._node_counter}", element=value, next=None
        )
        yield fresh.set("next", node)
        yield previous.set("next", fresh)
        size = yield self._size.read()
        yield self._size.write(size + 1)
        yield from self._bump_mod_count()
        return True

    def contains(self, value: Any) -> Generator:
        node = yield self._head.get("next")
        while node is not None:
            element = yield node.get("element")
            if element == value:
                return True
            if element > value:
                return False
            node = yield node.get("next")
        return False

    def remove(self, value: Any) -> Generator:
        previous = self._head
        node = yield self._head.get("next")
        while node is not None:
            element = yield node.get("element")
            if element == value:
                successor = yield node.get("next")
                yield previous.set("next", successor)
                size = yield self._size.read()
                yield self._size.write(size - 1)
                yield from self._bump_mod_count()
                return True
            if element > value:
                return False
            previous = node
            node = yield node.get("next")
        return False

    def first(self) -> Generator:
        node = yield self._head.get("next")
        if node is None:
            raise NoSuchElementError(f"{self.name} is empty")
        element = yield node.get("element")
        return element

    def _bump_mod_count(self) -> Generator:
        mod_count = yield self._mod_count.read()
        yield self._mod_count.write(mod_count + 1)
