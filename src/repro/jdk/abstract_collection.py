"""``AbstractCollection``/``AbstractList`` analogs, with the real JDK bug.

Section 5.3 of the paper traces the JDK 1.4.2 collection exceptions to one
design flaw reproduced faithfully here: the bulk operations
(``containsAll``, ``addAll``, ``removeAll``, ``equals``) are implemented in
the *unsynchronized* abstract superclass by iterating a collection with an
iterator, and the ``Collections.synchronized*`` decorators do not override
them to lock the *argument* collection.  So ``l1.containsAll(l2)`` iterates
``l2`` without holding ``l2``'s lock, and any concurrent mutation of ``l2``
interferes with the iterator — raising
:class:`~repro.runtime.errors.ConcurrentModificationError` or
:class:`~repro.runtime.errors.NoSuchElementError`.

All public methods are generator functions: call them with ``yield from``
inside a simulated thread.  Every access to collection state goes through
shared-memory ops, so the detectors and RaceFuzzer see exactly what
bytecode instrumentation would see.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.sugar import SharedVar


class AbstractCollection:
    """Base class: bulk operations implemented over ``iterator()``.

    Subclasses must provide:

    * ``iterator()`` — generator returning an iterator object with
      ``has_next()``/``next()`` generator methods;
    * ``add(value)`` / ``remove(value)`` — generators;
    * a ``_size`` :class:`SharedVar` and a ``_mod_count`` :class:`SharedVar`.
    """

    _size: SharedVar
    _mod_count: SharedVar

    def __init__(self, name: str):
        self.name = name

    # --- primitives subclasses must provide ------------------------------ #

    def iterator(self) -> Generator:
        raise NotImplementedError

    def add(self, value: Any) -> Generator:
        raise NotImplementedError

    def remove(self, value: Any) -> Generator:
        raise NotImplementedError

    # --- shared trivial accessors ---------------------------------------- #

    def size(self) -> Generator:
        """Current element count (a single shared read)."""
        count = yield self._size.read()
        return count

    def is_empty(self) -> Generator:
        count = yield from self.size()
        return count == 0

    # --- the buggy bulk operations (faithful to AbstractCollection) ------ #

    def contains(self, value: Any) -> Generator:
        """Linear search via this collection's own iterator."""
        iterator = yield from self.iterator()
        while (yield from iterator.has_next()):
            element = yield from iterator.next()
            if element == value:
                return True
        return False

    def contains_all(self, other: "AbstractCollection") -> Generator:
        """``AbstractCollection.containsAll``: iterates *other* unguarded.

        This is the method the paper's JDK bugs flow through: the iterator
        over ``other`` reads ``other``'s modCount and storage without any
        lock on ``other``.
        """
        iterator = yield from other.iterator()
        while (yield from iterator.has_next()):
            element = yield from iterator.next()
            if not (yield from self.contains(element)):
                return False
        return True

    def add_all(self, other: "AbstractCollection") -> Generator:
        """``AbstractCollection.addAll``: same unguarded iteration bug."""
        changed = False
        iterator = yield from other.iterator()
        while (yield from iterator.has_next()):
            element = yield from iterator.next()
            if (yield from self.add(element)):
                changed = True
        return changed

    def remove_all(self, other: "AbstractCollection") -> Generator:
        """``AbstractCollection.removeAll``: iterates *self*, probes other."""
        changed = False
        iterator = yield from self.iterator()
        while (yield from iterator.has_next()):
            element = yield from iterator.next()
            if (yield from other.contains(element)):
                yield from iterator.remove()
                changed = True
        return changed

    def equals(self, other: "AbstractCollection") -> Generator:
        """``AbstractList.equals``: pairwise iteration of both collections."""
        mine = yield from self.iterator()
        theirs = yield from other.iterator()
        while True:
            i_have = yield from mine.has_next()
            they_have = yield from theirs.has_next()
            if not i_have or not they_have:
                return i_have == they_have
            left = yield from mine.next()
            right = yield from theirs.next()
            if left != right:
                return False

    def clear(self) -> Generator:
        """``AbstractCollection.clear``: drain via the iterator."""
        iterator = yield from self.iterator()
        while (yield from iterator.has_next()):
            yield from iterator.next()
            yield from iterator.remove()

    def to_pylist(self) -> Generator:
        """Snapshot as a Python list (test/debug helper; iterator-based)."""
        items = []
        iterator = yield from self.iterator()
        while (yield from iterator.has_next()):
            items.append((yield from iterator.next()))
        return items

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
