"""A mini JDK collections library containing the paper's real bugs.

``ArrayList``, ``LinkedList``, ``HashSet`` and ``TreeSet`` are
unsynchronized fail-fast collections over the shared heap;
``synchronized_list``/``synchronized_set`` are the JDK decorators whose
bulk operations iterate their *argument* without its lock (the Section 5.3
bug); ``Vector`` is the JDK 1.1 self-synchronized class with its benign
unsynchronized readers.

Every public method is a generator: call with ``yield from`` inside a
simulated thread.
"""

from .abstract_collection import AbstractCollection
from .array_list import ArrayList, ArrayListIterator
from .collections import (
    SynchronizedCollection,
    SynchronizedList,
    synchronized_list,
    synchronized_set,
)
from .hash_set import HashSet, HashSetIterator
from .hashtable import Hashtable, HashtableEnumeration
from .linked_list import LinkedList, LinkedListIterator
from .tree_set import TreeSet, TreeSetIterator
from .vector import Vector, VectorEnumeration

__all__ = [
    "AbstractCollection",
    "ArrayList",
    "ArrayListIterator",
    "LinkedList",
    "LinkedListIterator",
    "HashSet",
    "HashSetIterator",
    "Hashtable",
    "HashtableEnumeration",
    "TreeSet",
    "TreeSetIterator",
    "Vector",
    "VectorEnumeration",
    "SynchronizedCollection",
    "SynchronizedList",
    "synchronized_list",
    "synchronized_set",
]
