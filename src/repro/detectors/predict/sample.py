"""A constant-space sampling screener: the fast first pass over a trace.

Predictive clock analyses pay per-event vector-clock work; on a huge
trace that is exactly the cost a first pass should avoid.  Following the
O(1)-samples line of sampling race detection (arXiv:2506.20127), the
screener keeps only a bounded sample of accesses per memory location and
does no ordering reasoning at all: any two sampled accesses from
different threads, at least one a write, with disjoint locksets, name a
candidate pair.

That makes it the recall/precision extreme of the detector spectrum:

* it over-approximates orderings (even spawn-ordered pairs are
  reported), so its output is only a *screen* — feed it to Phase 2 or
  intersect it with a clock detector's report;
* it under-samples hot locations (at most ``sample_cap`` distinct
  record keys are retained per location, first come first kept; later
  new keys only bump the ``dropped`` counter), so on huge traces it is
  O(locations) space and close to O(events) time where the full
  analyses are not.

Deterministic by construction — the sample is a pure function of the
event stream — so offline replay equals the live run, and repeated
analysis of one trace is byte-identical.
"""

from __future__ import annotations

from repro.obs import maybe_registry
from repro.runtime.events import Event, MemEvent
from repro.runtime.location import Location
from repro.runtime.observer import ExecutionObserver

from ..base import AccessRecord
from ..report import RaceReport, _program_name


class SamplingRaceDetector(ExecutionObserver):
    """Bounded-sample conflict screening; no clocks, no ordering."""

    name = "sample"

    def __init__(self, sample_cap: int = 16):
        assert sample_cap > 0, "sample_cap must be positive"
        self.sample_cap = sample_cap
        self.report: RaceReport = RaceReport(program="?", detector=self.name)
        self._samples: dict[Location, list[AccessRecord]] = {}
        self.dropped = 0

    def on_start(self, execution) -> None:
        self.report = RaceReport(
            program=_program_name(execution), detector=self.name
        )
        self._samples.clear()
        self.dropped = 0

    def on_event(self, event: Event) -> None:
        if not isinstance(event, MemEvent):
            return
        sample = self._samples.setdefault(event.location, [])
        for record in sample:
            if record.tid == event.tid:
                continue
            if not (record.is_write or event.is_write):
                continue
            if not record.lockset.isdisjoint(event.locks_held):
                continue
            self.report.record(
                record.stmt,
                event.stmt,
                location=event.location,
                tids=(record.tid, event.tid),
                both_write=record.is_write and event.is_write,
            )
        new_record = AccessRecord(
            tid=event.tid,
            epoch=0,  # the screener tracks no clocks
            is_write=event.is_write,
            lockset=event.locks_held,
            stmt=event.stmt,
        )
        key = new_record.key()
        for i, record in enumerate(sample):
            if record.key() == key:
                sample[i] = new_record
                return
        if len(sample) >= self.sample_cap:
            self.dropped += 1
            return
        sample.append(new_record)

    def on_finish(self, execution) -> None:
        # Locations at cap may have missed witnesses — same contract as
        # the history cap of the observed-order detectors.
        self.report.truncated_locations = sum(
            1 for sample in self._samples.values() if len(sample) >= self.sample_cap
        )
        registry = maybe_registry()
        if registry is not None:
            registry.inc(f"predict.{self.name}.pairs", len(self.report))
            registry.inc(f"predict.{self.name}.dropped", self.dropped)
