"""Shared machinery for the predictive Phase-1 detectors.

The observed-order detectors (:mod:`repro.detectors.base`) answer "which
pairs were concurrent *in this schedule*?".  The predictive detectors
answer "which pairs could be concurrent in *some* schedule consistent
with what this trace forces?" — a strictly larger candidate set from the
very same recorded events, which is exactly what Phase 2 wants to be fed
(it weeds imprecision for free; missed candidates are gone forever).

Two vector-clock families run side by side over one streamed pass:

* the **weak** (suppression) clocks order accesses only across the
  message edges in ``must_kinds`` — the sub-relation every feasible
  reordering preserves.  Both shipped predictors keep just the *spawn*
  edges: a child's events can never precede its creation.  Wakeup edges
  (which notify paired with which wait) are schedule artifacts, and join
  edges — though real in every schedule — order exactly the post-join
  suffix whose candidates the observed-order hybrid silently discards.
  Fewer edges ⇒ smaller clocks ⇒ every pair the hybrid reports is
  reported here too (the superset guarantee, asserted in the tests).

* the **strong** ("strong-dependently-precedes", SDP) clocks order
  accesses across *every* dependence the trace witnesses: all message
  edges, lock release→acquire edges, and write→read flow edges (a read
  is stamped after the write whose value it observed — reordering past
  it would change the data the code ran on).  They never suppress a
  report; they *grade* it: a pair concurrent even under SDP is
  ``schedulable`` — predictable with high confidence — while a pair
  ordered by SDP is speculative and marked so on its evidence, letting
  Phase 2 (or a human) triage candidates by confidence.

Histories are unbounded (offline analysis can afford completeness; the
observed-order detectors cap at 128 records per location and may evict
witnesses), but still key-collapsed: records equal on
``(tid, stmt, is_write, lockset)`` are interchangeable for statement-pair
detection, so only the latest is kept.

Guard modes (the lock reasoning of the Section 2.2 check):

* ``"blanket"`` — a common lock between the two accesses suppresses the
  pair (the hybrid's rule: the critical sections can never overlap);
* ``"consistent"`` — lock-acquisition-history reasoning: a common lock
  suppresses only while the location's *candidate guard set* (the
  Eraser-style intersection of every lockset it has been accessed under)
  still contains it.  Once any access skips the lock, the discipline is
  broken — the "guarded" witnesses of the pair stop vouching for it, and
  the pair is reported as an inconsistently-guarded candidate.

Known false-positive classes (every extra pair relative to the hybrid
falls in one; see INTERNALS "Predictive detection" for the discussion):

* **join-protected** — one side runs after joining the other's thread;
* **wakeup-ordered** — the sides were ordered by a notify→wait pairing;
* **inconsistently-guarded** — both sides hold the common lock, but the
  location is also accessed without it (``"consistent"`` mode only).

Phase 2 refutes all three classes cheaply (the pair is never *created*),
which is the paper's division of labour: Phase 1 may over-approximate,
Phase 2 is ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs import maybe_registry
from repro.runtime.events import (
    AcquireEvent,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadStartEvent,
)
from repro.runtime.location import Location, LockId
from repro.runtime.observer import ExecutionObserver
from repro.runtime.statement import Statement

from ..report import RaceReport, _program_name
from ..vectorclock import VectorClock
from .edges import SPAWN, EdgeClassifier


@dataclass
class PredictedAccess:
    """One remembered access, stamped under both clock families."""

    tid: int
    weak_epoch: int
    strong_epoch: int
    is_write: bool
    lockset: frozenset[LockId]
    stmt: Statement

    def key(self) -> tuple:
        """Same interchangeability argument as
        :meth:`repro.detectors.base.AccessRecord.key`: equal-key records
        cannot contribute different statement pairs, so keeping only the
        latest loses nothing."""
        return (self.tid, self.stmt, self.is_write, self.lockset)


class PredictiveDetector(ExecutionObserver):
    """Base class: weak clocks to report, strong clocks to grade."""

    #: message-edge kinds folded into the weak (suppression) clocks.
    must_kinds: frozenset[str] = frozenset({SPAWN})
    #: "blanket" or "consistent" (see module docstring).
    guard_mode: str = "blanket"
    name: str = "predictive"

    def __init__(self) -> None:
        self.report: RaceReport = RaceReport(program="?", detector=self.name)
        self._edges = EdgeClassifier()
        self._weak: dict[int, VectorClock] = {}
        self._strong: dict[int, VectorClock] = {}
        #: msg_id -> (weak snapshot, strong snapshot) at SND time.
        self._messages: dict[int, tuple[VectorClock, VectorClock]] = {}
        self._last_release: dict[LockId, VectorClock] = {}
        self._last_write: dict[Location, VectorClock] = {}
        self._histories: dict[Location, list[PredictedAccess]] = {}
        #: Eraser-style candidate guard set per location (consistent mode).
        self._guards: dict[Location, frozenset[LockId]] = {}
        self.soft_edges = 0
        self.guard_breaks = 0

    # ------------------------------------------------------------------ #

    def on_start(self, execution) -> None:
        self.report = RaceReport(
            program=_program_name(execution), detector=self.name
        )
        self._edges.reset()
        self._weak.clear()
        self._strong.clear()
        self._messages.clear()
        self._last_release.clear()
        self._last_write.clear()
        self._histories.clear()
        self._guards.clear()
        self.soft_edges = 0
        self.guard_breaks = 0

    def on_event(self, event: Event) -> None:
        kind = self._edges.note(event)
        if isinstance(event, MemEvent):
            self._on_mem(event)
        elif isinstance(event, SndEvent):
            weak = self._clock(self._weak, event.tid)
            strong = self._clock(self._strong, event.tid)
            self._messages[event.msg_id] = (weak.copy(), strong.copy())
            weak.tick(event.tid)
            strong.tick(event.tid)
        elif isinstance(event, RcvEvent):
            message = self._messages.get(event.msg_id)
            if message is not None:
                weak_msg, strong_msg = message
                # The strong order keeps every witnessed dependence; the
                # weak order only the kinds this detector calls "must".
                self._clock(self._strong, event.tid).join(strong_msg)
                if kind in self.must_kinds:
                    self._clock(self._weak, event.tid).join(weak_msg)
                else:
                    self.soft_edges += 1
        elif isinstance(event, ThreadStartEvent):
            self._weak.setdefault(event.child, VectorClock.for_thread(event.child))
            self._strong.setdefault(
                event.child, VectorClock.for_thread(event.child)
            )
        elif isinstance(event, ReleaseEvent):
            strong = self._clock(self._strong, event.tid)
            self._last_release[event.lock] = strong.copy()
            strong.tick(event.tid)
        elif isinstance(event, AcquireEvent):
            released = self._last_release.get(event.lock)
            if released is not None:
                self._clock(self._strong, event.tid).join(released)

    def on_finish(self, execution) -> None:
        self.report.truncated_locations = 0  # histories are unbounded
        registry = maybe_registry()
        if registry is not None:
            registry.inc(f"predict.{self.name}.pairs", len(self.report))
            registry.inc(f"predict.{self.name}.soft_edges", self.soft_edges)
            if self.guard_mode == "consistent":
                registry.inc(f"predict.{self.name}.guard_breaks", self.guard_breaks)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _clock(clocks: dict[int, VectorClock], tid: int) -> VectorClock:
        clock = clocks.get(tid)
        if clock is None:
            clock = clocks[tid] = VectorClock.for_thread(tid)
        return clock

    def _suppressed_by_lock(
        self, record: PredictedAccess, event: MemEvent, location: Location
    ) -> bool:
        common = record.lockset & event.locks_held
        if not common:
            return False
        if self.guard_mode == "blanket":
            return True
        # Consistent-guard reasoning: the lock-acquisition history must
        # show the common lock held on *every* access to this location.
        return not common.isdisjoint(self._guards.get(location, frozenset()))

    def _on_mem(self, event: MemEvent) -> None:
        weak = self._clock(self._weak, event.tid)
        strong = self._clock(self._strong, event.tid)
        location = event.location
        if self.guard_mode == "consistent":
            guards = self._guards.get(location)
            if guards is None:
                self._guards[location] = event.locks_held
            else:
                refined = guards & event.locks_held
                if refined != guards:
                    self.guard_breaks += 1
                    self._guards[location] = refined
        history = self._histories.setdefault(location, [])
        for record in history:
            if record.tid == event.tid:
                continue
            if not (record.is_write or event.is_write):
                continue
            if self._suppressed_by_lock(record, event, location):
                continue
            if weak.knows(record.tid, record.weak_epoch):
                continue  # forced before this access in every schedule
            self.report.record(
                record.stmt,
                event.stmt,
                location=location,
                tids=(record.tid, event.tid),
                both_write=record.is_write and event.is_write,
                schedulable=not strong.knows(record.tid, record.strong_epoch),
            )
        new_record = PredictedAccess(
            tid=event.tid,
            weak_epoch=weak.get(event.tid),
            strong_epoch=strong.get(event.tid),
            is_write=event.is_write,
            lockset=event.locks_held,
            stmt=event.stmt,
        )
        # Check-then-update (the SHB discipline): the write→read edge a
        # read induces must not hide the read's own race with that write.
        # The record keeps the pre-tick epoch, which is what the snapshot
        # in _last_write carries to future readers.
        if event.is_write:
            self._last_write[location] = strong.copy()
            strong.tick(event.tid)
        else:
            observed = self._last_write.get(location)
            if observed is not None:
                strong.join(observed)
        key = new_record.key()
        for i, record in enumerate(history):
            if record.key() == key:
                history[i] = new_record
                return
        history.append(new_record)
