"""SHB-style prediction: keep predicting past the first race.

Classical happens-before detection is only *sound up to the first race*:
once two accesses race, the observed order of everything after them is
one arbitrary resolution of that race, and treating it as forced both
misses predictable races and mis-grades reported ones.  The SHB line of
work (Mathur, Kini & Viswanathan, "What happens-after the first race?",
arXiv:1808.00185) shows how to keep extracting *guaranteed-predictable*
races from the whole trace by tracking the dependences that every
correct reordering must respect — the reads-from and program-order
skeleton — instead of the full observed order.

:class:`ShbRaceDetector` is that idea adapted to this engine's event
model (see :mod:`repro.detectors.predict.base` for the mechanics):

* the suppression order keeps only **spawn** edges, so candidates the
  observed-order hybrid discards because of a join return or a
  notify→wait pairing are reported rather than silently lost;
* the full strong-dependently-precedes order — every message edge, lock
  release→acquire, and write→read flow — is still tracked, and grades
  each reported pair: ``schedulable`` pairs are concurrent even under
  SDP (predictable with high confidence, the SHB guarantee), the rest
  are explicitly speculative.

Relative to ``hybrid`` this is a guaranteed superset with identical lock
reasoning; the extra candidates fall in the documented join-protected /
wakeup-ordered false-positive classes that Phase 2 refutes cheaply.
"""

from __future__ import annotations

from .base import PredictiveDetector
from .edges import SPAWN


class ShbRaceDetector(PredictiveDetector):
    """Predict past the first race; grade every pair by SDP concurrency."""

    name = "shb"
    must_kinds = frozenset({SPAWN})
    guard_mode = "blanket"
