"""Predictive Phase 1: more candidate races from every recorded trace.

The trace layer made executions record-once / analyze-many; this package
is the first analysis family that exploits it.  Where the observed-order
detectors report only pairs witnessed concurrent *in the schedule that
happened to run*, the predictive detectors reason about which pairs could
collide in *some* feasible reordering of the same trace — a strictly
larger candidate set per recorded execution, feeding Phase 2 more leads
per CPU-second spent executing programs:

* :class:`ShbRaceDetector` (``shb``) — SHB-style "keep predicting past
  the first race": spawn-only suppression order, with full
  strong-dependently-precedes clocks grading every pair's
  ``schedulable`` confidence;
* :class:`WcpRaceDetector` (``wcp``) — WCP-style near-complete
  prediction: shb's order plus lock-acquisition-history guard reasoning
  (inconsistently-guarded pairs are candidates, not exonerated);
* :class:`SamplingRaceDetector` (``sample``) — an O(1)-per-location
  bounded-sample conflict screen for huge traces: no clocks at all.

All three are ordinary :class:`~repro.runtime.observer.ExecutionObserver`
detectors emitting standard :class:`~repro.detectors.report.RaceReport`s:
they run live on an execution, or offline over any stored trace through
:func:`repro.trace.analyze_trace`, with identical results (the
equivalence suite covers them like the observed-order three).
"""

from .base import PredictedAccess, PredictiveDetector
from .edges import COMPLETION, EDGE_KINDS, SPAWN, WAKEUP, EdgeClassifier
from .sample import SamplingRaceDetector
from .shb import ShbRaceDetector
from .wcp import WcpRaceDetector

__all__ = [
    "PredictiveDetector",
    "PredictedAccess",
    "EdgeClassifier",
    "EDGE_KINDS",
    "SPAWN",
    "WAKEUP",
    "COMPLETION",
    "ShbRaceDetector",
    "WcpRaceDetector",
    "SamplingRaceDetector",
]
