"""Classifying message edges by what they *mean*, from the stream alone.

The interpreter encodes every inter-thread happens-before edge as an
anonymous ``SND(g, t)`` / ``RCV(g, t)`` message pair (Section 2.1 of the
paper): thread spawn, thread join, notify→wait wakeups, and interrupt
delivery all look identical to an observer.  The observed-order detectors
treat them identically too — every RCV joins the receiver's clock, so a
pair ordered by *any* message is never reported.

Predictive analysis needs to be choosier.  A spawn edge holds in every
schedule (the child cannot run before it exists); a wakeup edge records
which notify happened to pair with which wait *in this schedule*; a join
edge is real in every schedule but orders exactly the post-join suffix
that a near-complete predictor deliberately keeps speculating about.  The
:class:`EdgeClassifier` recovers the kind of each RCV from its local
stream context, using the interpreter's (stable, tested) emission
patterns:

* **spawn** — ``ThreadStartEvent(child=c)`` then ``SndEvent(parent, g)``
  then ``RcvEvent(c, g)``, all at one step (``Execution._create_thread``);
* **wakeup** — ``AcquireEvent(t)`` then ``RcvEvent(t)`` at one step: a
  woken waiter re-acquired the monitor and receives the notifier's (or
  interrupter's) message (``Execution._do_reacquire``);
* **completion** — any other RCV: a join receiving the target's
  termination message, or an interrupt delivered to a sleeping thread.

Because classification reads only the event stream, it is identical live
and during offline trace replay — the equivalence suite holds for the
predictive detectors exactly as it does for the observed-order ones.
"""

from __future__ import annotations

from repro.runtime.events import (
    AcquireEvent,
    Event,
    RcvEvent,
    SndEvent,
    ThreadStartEvent,
)

#: the child's first receive: holds in every schedule.
SPAWN = "spawn"
#: a woken waiter receiving its notify/interrupt message: pure schedule
#: artifact — another run pairs the wait with a different notify (or none).
WAKEUP = "wakeup"
#: join return / interrupt-from-sleep delivery: real in every schedule,
#: but the edge a near-complete predictor treats as soft (see package doc).
COMPLETION = "completion"

EDGE_KINDS = (SPAWN, WAKEUP, COMPLETION)


class EdgeClassifier:
    """Streaming RCV-edge classifier over the last two events seen."""

    __slots__ = ("_prev", "_prev2")

    def __init__(self) -> None:
        self._prev: Event | None = None
        self._prev2: Event | None = None

    def reset(self) -> None:
        self._prev = None
        self._prev2 = None

    def note(self, event: Event) -> str | None:
        """Feed one event; returns the edge kind for an RCV, else ``None``.

        Must see *every* event of the stream, in order, exactly once.
        """
        kind = None
        if isinstance(event, RcvEvent):
            prev, prev2 = self._prev, self._prev2
            if (
                isinstance(prev, SndEvent)
                and prev.msg_id == event.msg_id
                and prev.step == event.step
                and isinstance(prev2, ThreadStartEvent)
                and prev2.child == event.tid
            ):
                kind = SPAWN
            elif (
                isinstance(prev, AcquireEvent)
                and prev.tid == event.tid
                and prev.step == event.step
            ):
                kind = WAKEUP
            else:
                kind = COMPLETION
        self._prev2 = self._prev
        self._prev = event
        return kind


__all__ = ["EdgeClassifier", "SPAWN", "WAKEUP", "COMPLETION", "EDGE_KINDS"]
