"""WCP-style prediction: near-complete candidates via weak causality.

The weak-causally-precedes line of work (Kini, Mathur & Viswanathan;
complexity results in arXiv:2004.06969) weakens happens-before around
locks: critical sections on a common lock constrain each other only
through the conflicts they actually contain, so many pairs an HB-based
detector orders away remain predictable races.  The price of the extra
recall is paid in candidates that need checking — which is free here,
because Phase 2 *is* the checker.

:class:`WcpRaceDetector` takes :class:`~repro.detectors.predict.shb.
ShbRaceDetector`'s weak order (spawn edges only) and adds
lock-acquisition-history reasoning in place of the blanket lockset rule:
per location it maintains the Eraser-style candidate guard set — the
intersection of every lockset the location has been accessed under — and
a common lock suppresses a conflicting pair only while it is still in
that set.  Once the acquisition history shows the discipline broken (any
access skipped the lock), the "protected" witnesses stop vouching for
the pair and it is reported as an inconsistently-guarded candidate: in a
run where the undisciplined access pattern wins, the statements can
collide.

Ordering of reports: ``pairs(hybrid) ⊆ pairs(shb) ⊆ pairs(wcp)`` on any
trace — the weak order is the same as shb's and the guard rule only ever
suppresses *less* (asserted by the superset suite).  The extra pairs
relative to shb form the documented inconsistently-guarded class.
"""

from __future__ import annotations

from .base import PredictiveDetector
from .edges import SPAWN


class WcpRaceDetector(PredictiveDetector):
    """Near-complete hybrid prediction with lock-history guard reasoning."""

    name = "wcp"
    must_kinds = frozenset({SPAWN})
    guard_mode = "consistent"
