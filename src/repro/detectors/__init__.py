"""Phase 1 detectors: imprecise (and precise) dynamic race detection.

* :class:`HybridRaceDetector` — the paper's Phase 1 (lockset + start/join/
  notify happens-before);
* :class:`HappensBeforeDetector` — precise HB baseline;
* :class:`EraserLocksetDetector` — pure lockset baseline;
* :class:`RaceReport` / :class:`PairEvidence` — their output.

Any of these (or a hand-written pair list) can seed Phase 2: RaceFuzzer
only needs "a set of statements whose simultaneous execution could lead to
a concurrency problem" (Section 1).
"""

from .base import AccessRecord, HistoryRaceDetector
from .happensbefore import HappensBeforeDetector
from .hybrid import HybridRaceDetector
from .lockset import EraserLocksetDetector
from .report import PairEvidence, RaceReport
from .vectorclock import VectorClock

DETECTORS = {
    "hybrid": HybridRaceDetector,
    "happens-before": HappensBeforeDetector,
    "lockset": EraserLocksetDetector,
}

__all__ = [
    "VectorClock",
    "AccessRecord",
    "HistoryRaceDetector",
    "HybridRaceDetector",
    "HappensBeforeDetector",
    "EraserLocksetDetector",
    "RaceReport",
    "PairEvidence",
    "DETECTORS",
]
