"""Phase 1 detectors: imprecise (and precise) dynamic race detection.

* :class:`HybridRaceDetector` — the paper's Phase 1 (lockset + start/join/
  notify happens-before);
* :class:`HappensBeforeDetector` — precise HB baseline;
* :class:`EraserLocksetDetector` — pure lockset baseline;
* :class:`RaceReport` / :class:`PairEvidence` — their output.

Any of these (or a hand-written pair list) can seed Phase 2: RaceFuzzer
only needs "a set of statements whose simultaneous execution could lead to
a concurrency problem" (Section 1).
"""

import inspect

from .base import AccessRecord, HistoryRaceDetector
from .happensbefore import HappensBeforeDetector
from .hybrid import HybridRaceDetector
from .lockset import EraserLocksetDetector
from .report import PairEvidence, RaceReport
from .vectorclock import VectorClock

DETECTORS = {
    "hybrid": HybridRaceDetector,
    "happens-before": HappensBeforeDetector,
    "lockset": EraserLocksetDetector,
}


def make_detector(name: str, **options):
    """Build a registered detector by name, keyword-tolerantly.

    Detector classes accept different construction options (the
    history-based ones take ``history_cap``, the lockset detector takes
    nothing), so callers configuring "whichever detector was requested"
    would otherwise have to special-case each class.  This factory passes
    through only the options the chosen class actually accepts.

    Raises ``KeyError`` for names not in :data:`DETECTORS`.
    """
    try:
        cls = DETECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; registered: {sorted(DETECTORS)}"
        ) from None
    params = inspect.signature(cls.__init__).parameters
    tolerant = any(p.kind is p.VAR_KEYWORD for p in params.values())
    accepted = {
        key: value
        for key, value in options.items()
        if tolerant or key in params
    }
    return cls(**accepted)


__all__ = [
    "VectorClock",
    "AccessRecord",
    "HistoryRaceDetector",
    "HybridRaceDetector",
    "HappensBeforeDetector",
    "EraserLocksetDetector",
    "RaceReport",
    "PairEvidence",
    "DETECTORS",
    "make_detector",
]
