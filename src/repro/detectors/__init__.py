"""Phase 1 detectors: imprecise (and precise) dynamic race detection.

Observed-order detectors (what was concurrent in this schedule):

* :class:`HybridRaceDetector` — the paper's Phase 1 (lockset + start/join/
  notify happens-before);
* :class:`HappensBeforeDetector` — precise HB baseline;
* :class:`EraserLocksetDetector` — pure lockset baseline.

Predictive detectors (what could be concurrent in some feasible
reordering of the same trace — see :mod:`repro.detectors.predict`):

* :class:`ShbRaceDetector` — SHB-style, keeps predicting past the first
  race, grades pairs by strong-dependently-precedes concurrency;
* :class:`WcpRaceDetector` — WCP-style near-complete prediction with
  lock-acquisition-history guard reasoning;
* :class:`SamplingRaceDetector` — O(1)-per-location sampling screen.

All emit :class:`RaceReport` / :class:`PairEvidence`.  Any of them (or a
hand-written pair list) can seed Phase 2: RaceFuzzer only needs "a set of
statements whose simultaneous execution could lead to a concurrency
problem" (Section 1).
"""

import inspect

from .base import AccessRecord, HistoryRaceDetector
from .happensbefore import HappensBeforeDetector
from .hybrid import HybridRaceDetector
from .lockset import EraserLocksetDetector
from .predict import SamplingRaceDetector, ShbRaceDetector, WcpRaceDetector
from .report import (
    PairEvidence,
    RaceReport,
    schedulable_grades,
    union_reports,
)
from .vectorclock import VectorClock

DETECTORS = {
    "hybrid": HybridRaceDetector,
    "happens-before": HappensBeforeDetector,
    "lockset": EraserLocksetDetector,
    "shb": ShbRaceDetector,
    "wcp": WcpRaceDetector,
    "sample": SamplingRaceDetector,
}


def available_detectors() -> list[str]:
    """Registered detector names, sorted — the single source the CLI and
    error messages quote."""
    return sorted(DETECTORS)


def make_detector(name: str, **options):
    """Build a registered detector by name, keyword-tolerantly.

    Detector classes accept different construction options (the
    history-based ones take ``history_cap``, the sampling screener takes
    ``sample_cap``, others take nothing), so callers configuring
    "whichever detector was requested" would otherwise have to
    special-case each class.  This factory passes through only the
    options the chosen class actually accepts.

    Raises ``KeyError`` for names not in :data:`DETECTORS`.
    """
    try:
        cls = DETECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown detector {name!r}; registered: {available_detectors()}"
        ) from None
    params = inspect.signature(cls.__init__).parameters
    tolerant = any(p.kind is p.VAR_KEYWORD for p in params.values())
    accepted = {
        key: value
        for key, value in options.items()
        if tolerant or key in params
    }
    return cls(**accepted)


__all__ = [
    "VectorClock",
    "AccessRecord",
    "HistoryRaceDetector",
    "HybridRaceDetector",
    "HappensBeforeDetector",
    "EraserLocksetDetector",
    "ShbRaceDetector",
    "WcpRaceDetector",
    "SamplingRaceDetector",
    "RaceReport",
    "PairEvidence",
    "union_reports",
    "schedulable_grades",
    "DETECTORS",
    "available_detectors",
    "make_detector",
]
