"""Shared machinery for history-based dynamic race detectors.

Both the hybrid detector (the paper's Phase 1) and the precise
happens-before detector keep, per memory location, a bounded history of
accesses stamped with (thread, epoch, lockset, statement) and compare each
new access against it.  They differ only in two switches:

* ``lock_edges`` — whether a lock release→acquire induces a happens-before
  edge.  The hybrid detector says *no* (that is what makes it predictive:
  it flags races that could occur under a different lock acquisition
  order), the precise detector says *yes*.
* ``use_lockset`` — whether holding a common lock suppresses the pair
  (hybrid: yes, per the formula in Section 2.2; pure HB: no).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.events import (
    AcquireEvent,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadStartEvent,
)
from repro.runtime.location import Location, LockId
from repro.runtime.observer import ExecutionObserver
from repro.runtime.statement import Statement

from .report import RaceReport, _program_name
from .vectorclock import VectorClock


@dataclass
class AccessRecord:
    """One remembered access for the per-location history."""

    tid: int
    epoch: int
    is_write: bool
    lockset: frozenset[LockId]
    stmt: Statement

    def key(self) -> tuple:
        """Records with equal keys are interchangeable for *pair* detection:
        keeping only the latest cannot lose a statement pair (any older
        access it would have raced with was compared before the
        replacement happened, because histories are updated in execution
        order)."""
        return (self.tid, self.stmt, self.is_write, self.lockset)


class HistoryRaceDetector(ExecutionObserver):
    """Base class implementing the Section 2.2 race condition check."""

    #: subclass configuration (see module docstring)
    lock_edges: bool = False
    use_lockset: bool = True
    name: str = "history"

    def __init__(self, history_cap: int = 128):
        self.history_cap = history_cap
        self.report: RaceReport = RaceReport(program="?", detector=self.name)
        self._clocks: dict[int, VectorClock] = {}
        self._messages: dict[int, VectorClock] = {}
        self._last_release: dict[LockId, VectorClock] = {}
        self._histories: dict[Location, list[AccessRecord]] = {}
        self._overflowed: set[Location] = set()

    # ------------------------------------------------------------------ #

    def on_start(self, execution) -> None:
        self.report = RaceReport(
            program=_program_name(execution), detector=self.name
        )
        self._clocks.clear()
        self._messages.clear()
        self._last_release.clear()
        self._histories.clear()
        self._overflowed.clear()

    def on_event(self, event: Event) -> None:
        if isinstance(event, MemEvent):
            self._on_mem(event)
        elif isinstance(event, SndEvent):
            clock = self._clock(event.tid)
            self._messages[event.msg_id] = clock.copy()
            clock.tick(event.tid)
        elif isinstance(event, RcvEvent):
            message = self._messages.get(event.msg_id)
            if message is not None:
                self._clock(event.tid).join(message)
        elif isinstance(event, ThreadStartEvent):
            self._clocks.setdefault(event.child, VectorClock.for_thread(event.child))
        elif self.lock_edges and isinstance(event, ReleaseEvent):
            clock = self._clock(event.tid)
            self._last_release[event.lock] = clock.copy()
            clock.tick(event.tid)
        elif self.lock_edges and isinstance(event, AcquireEvent):
            released = self._last_release.get(event.lock)
            if released is not None:
                self._clock(event.tid).join(released)

    def on_finish(self, execution) -> None:
        self.report.truncated_locations = len(self._overflowed)

    # ------------------------------------------------------------------ #

    def _clock(self, tid: int) -> VectorClock:
        clock = self._clocks.get(tid)
        if clock is None:
            clock = VectorClock.for_thread(tid)
            self._clocks[tid] = clock
        return clock

    def _on_mem(self, event: MemEvent) -> None:
        clock = self._clock(event.tid)
        history = self._histories.setdefault(event.location, [])
        for record in history:
            if record.tid == event.tid:
                continue
            if not (record.is_write or event.is_write):
                continue
            if self.use_lockset and not record.lockset.isdisjoint(event.locks_held):
                continue
            if clock.knows(record.tid, record.epoch):
                continue  # record happens-before this access
            self.report.record(
                record.stmt,
                event.stmt,
                location=event.location,
                tids=(record.tid, event.tid),
                both_write=record.is_write and event.is_write,
            )
        new_record = AccessRecord(
            tid=event.tid,
            epoch=clock.get(event.tid),
            is_write=event.is_write,
            lockset=event.locks_held,
            stmt=event.stmt,
        )
        key = new_record.key()
        for i, record in enumerate(history):
            if record.key() == key:
                history[i] = new_record
                return
        history.append(new_record)
        if len(history) > self.history_cap:
            history.pop(0)
            self._overflowed.add(event.location)
