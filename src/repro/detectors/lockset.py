"""Eraser-style lockset race detection (Savage et al. [43] in the paper).

Tracks, per memory location, the candidate set ``C(v)`` of locks that have
been held on *every* access so far, with the usual initialization state
machine (virgin → exclusive → shared → shared-modified) so that
single-threaded initialization does not raise alarms.  A location whose
candidate set empties while in shared-modified state is reported.

Locksets alone over-approximate even more aggressively than the hybrid
detector (they ignore happens-before entirely), so this detector exists as
the "more false positives" end of the Phase 1 spectrum for the ablation
benchmarks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.runtime.events import Event, MemEvent
from repro.runtime.location import Location, LockId
from repro.runtime.observer import ExecutionObserver
from repro.runtime.statement import Statement

from .report import RaceReport, _program_name


class _State(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _LocationState:
    state: _State = _State.VIRGIN
    owner: int | None = None
    candidates: frozenset[LockId] | None = None  # None = not yet constrained
    #: most recent access per thread, for attributing statement pairs.
    last_by_tid: dict[int, tuple[Statement, bool]] = field(default_factory=dict)


class EraserLocksetDetector(ExecutionObserver):
    """Pure lockset discipline checker producing racing statement pairs."""

    name = "lockset"

    def __init__(self) -> None:
        self.report = RaceReport(program="?", detector=self.name)
        self._locations: dict[Location, _LocationState] = {}

    def on_start(self, execution) -> None:
        self.report = RaceReport(
            program=_program_name(execution), detector=self.name
        )
        self._locations.clear()

    def on_event(self, event: Event) -> None:
        if not isinstance(event, MemEvent):
            return
        info = self._locations.setdefault(event.location, _LocationState())
        self._transition(info, event)
        violating = (
            info.state is _State.SHARED_MODIFIED
            and info.candidates is not None
            and not info.candidates
        )
        if violating:
            self._attribute(info, event)
        info.last_by_tid[event.tid] = (event.stmt, event.is_write)

    # ------------------------------------------------------------------ #

    def _transition(self, info: _LocationState, event: MemEvent) -> None:
        if info.state is _State.VIRGIN:
            info.state = _State.EXCLUSIVE
            info.owner = event.tid
            return
        if info.state is _State.EXCLUSIVE:
            if event.tid == info.owner:
                return
            # First access from a second thread: start refining.
            info.candidates = event.locks_held
            info.state = (
                _State.SHARED_MODIFIED if event.is_write else _State.SHARED
            )
            return
        # SHARED or SHARED_MODIFIED: refine on every access.
        assert info.candidates is not None
        info.candidates = info.candidates & event.locks_held
        if event.is_write:
            info.state = _State.SHARED_MODIFIED

    def _attribute(self, info: _LocationState, event: MemEvent) -> None:
        """Pair the violating access with the latest other-thread access."""
        for tid, (stmt, was_write) in reversed(list(info.last_by_tid.items())):
            if tid == event.tid:
                continue
            if not (was_write or event.is_write):
                continue
            self.report.record(
                stmt,
                event.stmt,
                location=event.location,
                tids=(tid, event.tid),
                both_write=was_write and event.is_write,
            )
            return
