"""Precise happens-before race detection (Schonberg [44] in the paper).

Reports a pair only when two conflicting accesses are truly concurrent in
the *observed* execution: the happens-before relation here includes lock
release→acquire edges in addition to start/join/notify→wait, and no lockset
filtering is applied.  This is the baseline the paper contrasts with:
precise (no false warnings for the observed run) but unable to predict
races that need a different schedule — and expensive, since every access is
tracked.
"""

from __future__ import annotations

from .base import HistoryRaceDetector


class HappensBeforeDetector(HistoryRaceDetector):
    """Detects only races that actually occur in the observed execution."""

    name = "happens-before"
    lock_edges = True
    use_lockset = False
