"""Race reports: the output of Phase 1 and the input of Phase 2.

A :class:`RaceReport` is a set of distinct potentially racing
:class:`~repro.runtime.statement.StatementPair` values, with per-pair
evidence (an example location, the access kinds, how often it was seen).
Table 1's column 6 is ``len(report.pairs)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.runtime.location import Location
from repro.runtime.statement import Statement, StatementPair


def _merge_schedulable(mine: bool | None, other: bool | None) -> bool | None:
    """Combine confidence grades: any schedulable witness grades the pair
    schedulable; otherwise any graded witness keeps it speculative; the
    observed-order detectors never grade (both ``None``)."""
    if mine is True or other is True:
        return True
    if mine is False or other is False:
        return False
    return None


@dataclass
class PairEvidence:
    """Why a pair was reported: one witness plus occurrence counts.

    ``schedulable`` is the predictive detectors' confidence grade:
    ``True`` means some witness of the pair is concurrent even under the
    strong-dependently-precedes order (predictable with high
    confidence), ``False`` means every witness was SDP-ordered (the pair
    is speculative), ``None`` means the detector does not grade (all
    observed-order detectors).
    """

    pair: StatementPair
    location: Location  # an example location both statements touched
    tids: tuple[int, int]  # example thread pair
    both_write: bool = False
    count: int = 1
    schedulable: bool | None = None

    def describe(self) -> str:
        kind = "write/write" if self.both_write else "read/write"
        grade = ""
        if self.schedulable is not None:
            grade = ", schedulable" if self.schedulable else ", speculative"
        return (
            f"{self.pair} on {self.location.describe()} "
            f"[{kind}, seen {self.count}x, threads {self.tids}{grade}]"
        )


@dataclass
class RaceReport:
    """All distinct potentially racing statement pairs found by a detector.

    ``evidence`` values may be ``None`` for pairs that were *supplied*
    rather than detected (a static tool, a hand-written list): the pair is
    known, but no dynamic witness exists.  Use :meth:`from_pairs` to build
    such a report.
    """

    program: str
    detector: str
    evidence: dict[StatementPair, PairEvidence | None] = field(default_factory=dict)
    #: locations whose access history overflowed the per-location cap; pairs
    #: involving only evicted accesses may have been missed.
    truncated_locations: int = 0

    @classmethod
    def from_pairs(
        cls,
        pairs: "Iterable[StatementPair]",
        *,
        program: str = "",
        detector: str = "supplied",
    ) -> "RaceReport":
        """Build a report from an explicit pair list (no dynamic evidence).

        This is how Phase 2 consumes racing pairs that did not come from a
        dynamic detector — the paper notes any source of "a set of
        statements whose simultaneous execution could lead to a concurrency
        problem" will do.
        """
        report = cls(program=program, detector=detector)
        report.evidence = {pair: None for pair in pairs}
        return report

    @property
    def pairs(self) -> list[StatementPair]:
        """Distinct racing pairs, deterministically ordered."""
        return sorted(self.evidence, key=lambda p: (str(p.first), str(p.second)))

    def record(
        self,
        s1: Statement,
        s2: Statement,
        location: Location,
        tids: tuple[int, int],
        both_write: bool,
        schedulable: bool | None = None,
    ) -> bool:
        """Add one observation; returns True if the pair is new."""
        pair = StatementPair(s1, s2)
        known = pair in self.evidence
        existing = self.evidence.get(pair)
        if existing is not None:
            existing.count += 1
            existing.both_write = existing.both_write or both_write
            existing.schedulable = _merge_schedulable(
                existing.schedulable, schedulable
            )
            return False
        # New pair, or a supplied pair gaining its first dynamic witness.
        self.evidence[pair] = PairEvidence(
            pair=pair,
            location=location,
            tids=tids,
            both_write=both_write,
            schedulable=schedulable,
        )
        return not known

    def merge(self, other: "RaceReport") -> None:
        """Union another report into this one (multi-run Phase 1)."""
        for pair, info in other.evidence.items():
            mine = self.evidence.get(pair)
            if mine is None:
                self.evidence[pair] = info
            elif info is not None:
                mine.count += info.count
                mine.both_write = mine.both_write or info.both_write
                mine.schedulable = _merge_schedulable(
                    mine.schedulable, info.schedulable
                )
        self.truncated_locations += other.truncated_locations

    def __len__(self) -> int:
        return len(self.evidence)

    def __iter__(self):
        return iter(self.pairs)

    def __str__(self) -> str:
        lines = [
            f"{self.detector} report for {self.program}: "
            f"{len(self)} potential racing pair(s)"
        ]
        lines.extend(
            f"  {info.describe()}"
            for info in self.evidence.values()
            if info is not None  # supplied pair lists carry no evidence
        )
        return "\n".join(lines)


def union_reports(
    reports: "Mapping[str, RaceReport] | Iterable[RaceReport]",
    *,
    program: str | None = None,
    detector: str | None = None,
) -> RaceReport:
    """Union several detectors' reports into one Phase-2 feed.

    This is how a multi-detector Phase 1 (``detect --detector hybrid
    --detector shb ...``) becomes a single candidate-pair set: pair
    evidence merges exactly as multi-seed reports do, and the combined
    detector name records the provenance (``"hybrid+shb"``).
    """
    if isinstance(reports, Mapping):
        ordered = list(reports.values())
    else:
        ordered = list(reports)
    assert ordered, "union_reports needs at least one report"
    if detector is None:
        detector = "+".join(r.detector for r in ordered)
    if program is None:
        program = ordered[0].program
    union = RaceReport(program=program, detector=detector)
    for report in ordered:
        union.merge(report)
    return union


def schedulable_grades(
    report: RaceReport,
    pairs: "Iterable[StatementPair] | None" = None,
) -> list[bool | None]:
    """Per-pair ``schedulable`` grades aligned with ``pairs``.

    The plumbing between Phase 1's confidence grading and Phase 2's
    adaptive priors: ``True`` for pairs some predictive detector graded
    schedulable, ``False`` for graded-speculative pairs, ``None`` for
    ungraded pairs (observed-order detectors, supplied pair lists, pairs
    unknown to this report).  ``pairs`` defaults to ``report.pairs``.
    """
    if pairs is None:
        pairs = report.pairs
    grades: list[bool | None] = []
    for pair in pairs:
        info = report.evidence.get(pair)
        grades.append(None if info is None else info.schedulable)
    return grades


def _program_name(execution) -> str:
    """Name of the program under observation, for any host engine.

    The generator engine exposes ``execution.program.name``; the native
    backend has no Program object, so fall back gracefully.
    """
    program = getattr(execution, "program", None)
    if program is not None and hasattr(program, "name"):
        return program.name
    return getattr(execution, "name", "native-program")
