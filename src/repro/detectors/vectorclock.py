"""Vector clocks for the happens-before relation of Section 2.1.

The paper computes ``ei → ej`` ("happens-before") as the transitive closure
of program order plus SND/RCV message edges, maintained "by keeping a vector
clock with every thread".  We do the same, with the standard epoch
optimization: a memory access by thread ``t`` is stamped with the *epoch*
``(t, C_t[t])``; a later access with clock ``C`` happens-after it iff
``C[t] >= C_t[t]``.  Each thread's own component starts at 1 so that threads
that have never communicated are unordered.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class VectorClock:
    """A mutable vector clock: a map from thread id to logical time."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Mapping[int, int] | None = None):
        self._clock = dict(clock) if clock else {}

    @classmethod
    def for_thread(cls, tid: int) -> "VectorClock":
        """A fresh thread clock, with the thread's own component at 1."""
        return cls({tid: 1})

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def get(self, tid: int) -> int:
        return self._clock.get(tid, 0)

    def tick(self, tid: int) -> None:
        """Advance ``tid``'s own component (at SND events)."""
        self._clock[tid] = self._clock.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place (at RCV events)."""
        for tid, time in other._clock.items():
            if time > self._clock.get(tid, 0):
                self._clock[tid] = time

    def leq(self, other: "VectorClock") -> bool:
        """``self ≤ other`` pointwise — i.e. self happens-before-or-equals."""
        return all(time <= other.get(tid) for tid, time in self._clock.items())

    def concurrent(self, other: "VectorClock") -> bool:
        """Neither clock dominates the other."""
        return not self.leq(other) and not other.leq(self)

    def knows(self, tid: int, epoch: int) -> bool:
        """Does this clock dominate the access epoch ``(tid, epoch)``?

        Equivalent to "the access happens-before any event taken at this
        clock" — the O(1) race check used by the detectors.
        """
        return self._clock.get(tid, 0) >= epoch

    def items(self) -> Iterator[tuple[int, int]]:
        return iter(self._clock.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        return {t: v for t, v in self._clock.items() if v} == {
            t: v for t, v in other._clock.items() if v
        }

    def __hash__(self) -> int:  # pragma: no cover - clocks are not dict keys
        raise TypeError("VectorClock is mutable and unhashable")

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._clock.items()))
        return f"VC({inner})"
