"""Hybrid dynamic race detection — the paper's Phase 1 ([37] in the paper).

Implements the condition from Section 2.2: events ``e_i = MEM(s_i, m, a_i,
t_i, L_i)`` and ``e_j = MEM(s_j, m, a_j, t_j, L_j)`` race iff

* ``t_i ≠ t_j`` — different threads,
* ``a_i = WRITE ∨ a_j = WRITE`` — at least one write,
* ``L_i ∩ L_j = ∅`` — no common lock,
* ``¬(e_i → e_j) ∧ ¬(e_j → e_i)`` — concurrent under the happens-before
  relation generated *only* by thread start, join, and notify→wait edges.

Because lock release→acquire edges are deliberately excluded, the detector
*predicts* races that could happen under other lock orderings — which is
what gives it coverage, and also what produces the false positives that
Phase 2 weeds out (e.g. Figure 1's flag-synchronized variable ``x``).
"""

from __future__ import annotations

from .base import HistoryRaceDetector


class HybridRaceDetector(HistoryRaceDetector):
    """Lockset + happens-before predictive race detector."""

    name = "hybrid"
    lock_edges = False
    use_lockset = True
