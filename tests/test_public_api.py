"""The public API surface: everything advertised in __all__ exists, is
documented, and the README quickstart actually runs."""

import inspect

import repro
import repro.core
import repro.detectors
import repro.jdk
import repro.native
import repro.runtime
import repro.workloads


class TestAllExports:
    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_alls_resolve(self):
        for module in (
            repro.runtime,
            repro.detectors,
            repro.core,
            repro.jdk,
            repro.native,
            repro.workloads,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version(self):
        assert repro.__version__

    def test_public_callables_are_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_have_documented_public_methods(self):
        offenders = []
        for name in ("Execution", "RaceFuzzer", "HybridRaceDetector"):
            cls = getattr(repro, name)
            for attr_name, attr in vars(cls).items():
                if attr_name.startswith("_") or not inspect.isfunction(attr):
                    continue
                if not (attr.__doc__ or "").strip():
                    offenders.append(f"{name}.{attr_name}")
        assert not offenders, f"undocumented methods: {offenders}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        from repro import (
            Program,
            SharedVar,
            detect_races,
            join_all,
            ops,
            race_directed_test,
            replay_race,
            spawn_all,
        )

        def make():
            balance = SharedVar("balance", 100)

            def teller(amount):
                current = yield balance.read()
                yield balance.write(current + amount)

            def main():
                threads = yield from spawn_all(
                    [lambda: teller(10), lambda: teller(-10)]
                )
                yield from join_all(threads)
                final = yield balance.read()
                yield ops.check(final == 100, f"lost update: {final}")

            return main()

        program = Program(make, name="bank")
        report = detect_races(program, seeds=range(5))
        assert len(report) >= 1
        campaign = race_directed_test(program, trials=20)
        assert campaign.real_pairs
        run = replay_race(program, campaign.real_pairs[0], seed=7)
        assert run.events
