"""TraceStore cache behaviour: keying, hit/miss, atomic publish."""

import pytest

from repro.trace import (
    PHASE1_SCHEDULER,
    TraceKey,
    TraceStore,
    detect_key,
    load_trace,
    scheduler_from_spec,
)
from repro.workloads import figure1


KEY = detect_key("figure1", 0, max_steps=10_000)


class TestKeying:
    def test_key_covers_execution_parameters_only(self):
        base = TraceKey(workload="w", seed=1, scheduler="random:every", max_steps=10)
        assert base.digest() == TraceKey(
            workload="w", seed=1, scheduler="random:every", max_steps=10
        ).digest()
        for changed in (
            TraceKey(workload="w2", seed=1, scheduler="random:every", max_steps=10),
            TraceKey(workload="w", seed=2, scheduler="random:every", max_steps=10),
            TraceKey(workload="w", seed=1, scheduler="random:sync", max_steps=10),
            TraceKey(workload="w", seed=1, scheduler="random:every", max_steps=11),
            TraceKey(
                workload="w",
                seed=1,
                scheduler="random:every",
                max_steps=10,
                schema=999,
            ),
        ):
            assert changed.digest() != base.digest()

    def test_detect_key_uses_phase1_scheduler(self):
        assert KEY.scheduler == PHASE1_SCHEDULER

    def test_scheduler_specs_resolve(self):
        for spec in ("random:every", "random:sync", "default"):
            assert scheduler_from_spec(spec) is not None
        with pytest.raises(ValueError):
            scheduler_from_spec("banana")


class TestStore:
    def test_miss_records_then_hit_skips(self, tmp_path):
        store = TraceStore(tmp_path)
        first = store.ensure(KEY, figure1.build())
        assert store.stats.misses == 1 and store.stats.executions == 1
        second = store.ensure(KEY, figure1.build())
        assert second == first
        assert store.stats.hits == 1 and store.stats.executions == 1

    def test_cache_persists_across_store_instances(self, tmp_path):
        TraceStore(tmp_path).ensure(KEY, figure1.build())
        fresh = TraceStore(tmp_path)
        assert fresh.get(KEY) is not None
        fresh.ensure(KEY, figure1.build())
        assert fresh.stats.executions == 0

    def test_no_temp_files_left_behind(self, tmp_path):
        store = TraceStore(tmp_path)
        store.ensure(KEY, figure1.build())
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert store.entries() == [store.path_for(KEY)]

    def test_compressed_store(self, tmp_path):
        store = TraceStore(tmp_path, compress=True)
        path = store.ensure(KEY, figure1.build())
        assert path.name.endswith(".jsonl.gz")
        # A plain store finds the gz entry for the same key (and vice versa).
        assert TraceStore(tmp_path).get(KEY) == path
        # Same key -> same deterministic schedule (uids are per-execution,
        # so compare the structural signature, not full event equality).
        plain = TraceStore(tmp_path / "plain").ensure(KEY, figure1.build())
        signature = [
            (type(e).__name__, e.tid, e.step) for e in load_trace(path)[1]
        ]
        assert signature == [
            (type(e).__name__, e.tid, e.step) for e in load_trace(plain)[1]
        ]

    def test_open_returns_reader(self, tmp_path):
        store = TraceStore(tmp_path)
        assert store.open(KEY) is None
        store.ensure(KEY, figure1.build())
        reader = store.open(KEY)
        assert reader.header.program == "figure1"
        assert reader.header.seed == 0
        reader.close()

    def test_clear(self, tmp_path):
        store = TraceStore(tmp_path)
        store.ensure(KEY, figure1.build())
        store.ensure(detect_key("figure1", 1, max_steps=10_000), figure1.build())
        assert store.clear() == 2
        assert store.entries() == []

    def test_failed_recording_publishes_nothing(self, tmp_path):
        store = TraceStore(tmp_path)

        class Boom(RuntimeError):
            pass

        def bad_build():
            raise Boom("factory exploded")

        from repro.runtime import Program

        with pytest.raises(Boom):
            store.ensure(KEY, Program(bad_build, name="figure1"))
        assert store.get(KEY) is None
        assert not [p for p in tmp_path.iterdir() if ".tmp" in p.name]
