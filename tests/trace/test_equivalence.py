"""The tentpole acceptance criteria, as tests.

1. For every registered workload and every registered detector — the
   observed-order three and the predictive three — running the detector
   offline over a recorded trace yields a ``RaceReport`` that compares
   equal (full ``==``, evidence included) to the live observer that
   watched the recording execution itself.
2. A warm ``TraceStore`` answers a repeated ``detect_races`` with zero
   program executions.
"""

import pytest

from repro.core import detect_races
from repro.detectors import make_detector
from repro.runtime.interpreter import Execution
from repro.trace import TraceStore, analyze_trace, detect_key, replay_events
from repro.workloads import all_workloads, figure1, get

DETECTORS = ("hybrid", "happens-before", "lockset", "shb", "wcp", "sample")

#: enough steps for every workload to show races, small enough to be quick.
STEP_CAP = 20_000


def _capped(spec):
    return min(spec.max_steps, STEP_CAP)


@pytest.mark.parametrize(
    "workload", [spec.name for spec in all_workloads()]
)
def test_offline_reports_identical_to_live(workload, tmp_path):
    spec = get(workload)
    store = TraceStore(tmp_path)
    live = [make_detector(name) for name in DETECTORS]
    key = detect_key(spec.name, 0, max_steps=_capped(spec))
    path = store.ensure(key, spec.build(), observers=live)
    offline = analyze_trace(path, DETECTORS)
    for observer, name in zip(live, DETECTORS):
        assert observer.report == offline[name], (
            f"{workload}/{name}: offline analysis diverged from the live run"
        )


def test_replay_events_drives_full_observer_lifecycle(tmp_path):
    store = TraceStore(tmp_path)
    key = detect_key("figure1", 0, max_steps=10_000)
    store.ensure(key, figure1.build())
    detector = make_detector("hybrid")
    with store.open(key) as reader:
        (driven,) = replay_events(reader, [detector], program=reader.header.program)
    assert driven is detector
    assert detector.report.program == "figure1"
    assert len(detector.report) == 1


class TestWarmCacheSkipsExecution:
    SEEDS = (0, 1)

    def _detect(self, trace_dir, detector="hybrid"):
        spec = get("figure1")
        return detect_races(
            spec.build(),
            detector=detector,
            seeds=self.SEEDS,
            max_steps=_capped(spec),
            trace_dir=trace_dir,
        )

    def test_zero_executions_on_warm_store(self, tmp_path, monkeypatch):
        cold = self._detect(tmp_path)

        def bomb(self, scheduler):
            raise AssertionError("a warm cache must not execute the program")

        monkeypatch.setattr(Execution, "run", bomb)
        warm = self._detect(tmp_path)
        assert warm == cold  # bit-identical: both sides replay the same traces

    def test_added_detectors_reuse_recorded_traces(self, tmp_path, monkeypatch):
        self._detect(tmp_path)
        monkeypatch.setattr(
            Execution,
            "run",
            lambda self, scheduler: pytest.fail("unexpected execution"),
        )
        reports = self._detect(tmp_path, detector=DETECTORS)
        assert set(reports) == set(DETECTORS)
        assert len(reports["hybrid"]) == 1

    def test_store_stats_confirm_cache_hits(self, tmp_path):
        self._detect(tmp_path)
        store = TraceStore(tmp_path)
        for seed in self.SEEDS:
            key = detect_key("figure1", seed, max_steps=_capped(get("figure1")))
            assert store.get(key) is not None
        assert store.stats.executions == 0


class TestDetectRacesTraceDir:
    def test_cold_equals_warm_exactly(self, tmp_path):
        spec = get("figure2")
        kwargs = dict(seeds=(0, 1, 2), max_steps=_capped(spec), trace_dir=tmp_path)
        assert detect_races(spec.build(), **kwargs) == detect_races(
            spec.build(), **kwargs
        )

    def test_matches_classic_path_on_pairs(self, tmp_path):
        spec = get("figure1")
        classic = detect_races(
            spec.build(), seeds=(0, 1, 2), max_steps=_capped(spec)
        )
        traced = detect_races(
            spec.build(), seeds=(0, 1, 2), max_steps=_capped(spec),
            trace_dir=tmp_path,
        )
        assert classic.pairs == traced.pairs
        assert {
            str(p): (e.count, e.both_write) for p, e in classic.evidence.items()
        } == {
            str(p): (e.count, e.both_write) for p, e in traced.evidence.items()
        }

    def test_parallel_workers_record_for_the_parent(self, tmp_path):
        spec = get("figure1")
        parallel = detect_races(
            spec.build(),
            seeds=(0, 1, 2),
            max_steps=_capped(spec),
            trace_dir=tmp_path / "par",
            jobs=2,
        )
        serial = detect_races(
            spec.build(),
            seeds=(0, 1, 2),
            max_steps=_capped(spec),
            trace_dir=tmp_path / "ser",
        )
        assert parallel.pairs == serial.pairs
        store = TraceStore(tmp_path / "par")
        assert len(store.entries()) == 3

    def test_multi_detector_single_execution_per_seed(self, tmp_path):
        """Without trace_dir, a detector list still means one run per seed."""
        spec = get("figure1")
        executions = 0
        original = Execution.run

        def counting(self, scheduler):
            nonlocal executions
            executions += 1
            return original(self, scheduler)

        try:
            Execution.run = counting
            reports = detect_races(
                spec.build(),
                detector=DETECTORS,
                seeds=(0, 1),
                max_steps=_capped(spec),
            )
        finally:
            Execution.run = original
        assert executions == 2  # one per seed, not one per (seed, detector)
        assert set(reports) == set(DETECTORS)
        single = detect_races(
            spec.build(), seeds=(0, 1), max_steps=_capped(spec)
        )
        assert reports["hybrid"].pairs == single.pairs
