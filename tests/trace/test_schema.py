"""Wire-schema round-trips: every event type survives JSON and pickle.

The trace layer's contract is that ``decode_event(encode_event(e)) == e``
for every event the runtime can emit — including error-carrying events,
which is what the :class:`~repro.runtime.events.ErrorInfo` refactor bought
(live ``BaseException`` payloads neither pickle nor JSON-serialize).
"""

import json
import pickle

import pytest

from repro.runtime.events import (
    Access,
    AcquireEvent,
    DeadlockEvent,
    ErrorEvent,
    ErrorInfo,
    Event,
    MemEvent,
    RcvEvent,
    ReleaseEvent,
    SndEvent,
    ThreadEndEvent,
    ThreadStartEvent,
)
from repro.runtime.location import (
    ElemLoc,
    FieldLoc,
    Location,
    LockId,
    VarLoc,
    location_from_token,
)
from repro.runtime.statement import Statement
from repro.trace import (
    SCHEMA_VERSION,
    TraceFooter,
    TraceHeader,
    TraceSchemaError,
    decode_event,
    encode_event,
)

STMT = Statement(file="prog.py", line=12, func="worker")
LABELLED = Statement(label="thread1:5")
LOCKS = frozenset({LockId(uid=3, name="L"), LockId(uid=9)})

EVENTS = [
    MemEvent(
        step=1,
        tid=0,
        stmt=STMT,
        location=VarLoc(uid=4, name="x"),
        access=Access.READ,
        locks_held=LOCKS,
    ),
    MemEvent(
        step=2,
        tid=1,
        stmt=LABELLED,
        location=FieldLoc(uid=5, name="obj", fieldname="next"),
        access=Access.WRITE,
        locks_held=frozenset(),
    ),
    MemEvent(
        step=3,
        tid=2,
        stmt=STMT,
        location=ElemLoc(uid=6, name="arr", index=7),
        access=Access.WRITE,
        locks_held=frozenset(),
    ),
    SndEvent(step=4, tid=0, msg_id=11),
    RcvEvent(step=5, tid=1, msg_id=11),
    AcquireEvent(step=6, tid=0, lock=LockId(uid=3, name="L"), stmt=STMT),
    ReleaseEvent(step=7, tid=0, lock=LockId(uid=3), stmt=None),
    ThreadStartEvent(step=8, tid=0, child=1, name="worker-1"),
    ThreadEndEvent(step=9, tid=1, error=None),
    ThreadEndEvent(
        step=10,
        tid=2,
        error=ErrorInfo(type="ValueError", message="boom", module="builtins"),
    ),
    ErrorEvent(
        step=11,
        tid=2,
        stmt=STMT,
        error=ErrorInfo.from_exception(ZeroDivisionError("1/0")),
    ),
    DeadlockEvent(step=12, tid=-1, blocked=(1, 2)),
]

_ids = [f"{i}-{type(e).__name__}" for i, e in enumerate(EVENTS)]


@pytest.mark.parametrize("event", EVENTS, ids=_ids)
def test_json_round_trip(event):
    wire = json.loads(json.dumps(encode_event(event)))
    assert decode_event(wire) == event


@pytest.mark.parametrize("event", EVENTS, ids=_ids)
def test_pickle_round_trip(event):
    assert pickle.loads(pickle.dumps(event)) == event


def test_every_event_type_is_exercised():
    """Adding a new Event subclass must extend this suite (and the schema)."""
    import repro.runtime.events as events_mod

    all_types = {
        obj
        for obj in vars(events_mod).values()
        if isinstance(obj, type) and issubclass(obj, Event) and obj is not Event
    }
    assert all_types == {type(event) for event in EVENTS}


def test_unknown_event_kind_rejected():
    with pytest.raises(TraceSchemaError):
        decode_event({"k": "XXX", "s": 0, "t": 0})

    class Mystery(Event):
        pass

    with pytest.raises(TraceSchemaError):
        encode_event(Mystery(step=0, tid=0))


class TestTokens:
    def test_statement_token_round_trip(self):
        for stmt in (STMT, LABELLED, Statement()):
            assert Statement.from_token(stmt.to_token()) == stmt

    def test_labelled_statement_token_is_label_only(self):
        token = Statement(file="x.py", line=3, label="t1:5").to_token()
        assert token == {"lb": "t1:5"}

    def test_location_token_preserves_subclass(self):
        locations = [
            Location(uid=1, name="raw"),
            VarLoc(uid=2, name="x"),
            FieldLoc(uid=3, name="obj", fieldname="head"),
            ElemLoc(uid=4, name="arr", index=9),
        ]
        for location in locations:
            rebuilt = location_from_token(location.to_token())
            assert type(rebuilt) is type(location)
            assert rebuilt == location
            assert rebuilt.describe() == location.describe()

    def test_lock_token_round_trip(self):
        for lock in (LockId(uid=7, name="L"), LockId(uid=8)):
            rebuilt = LockId.from_token(lock.to_token())
            assert rebuilt == lock
            assert rebuilt.describe() == lock.describe()

    def test_error_info_from_exception(self):
        info = ErrorInfo.from_exception(KeyError("missing"))
        assert info.type == "KeyError"
        assert info.message == "'missing'"
        assert info.module == "builtins"
        assert "KeyError" in info.describe()


class TestHeaderFooter:
    def test_header_round_trip(self):
        header = TraceHeader(
            program="figure1", seed=3, scheduler="random:every", max_steps=500
        )
        wire = json.loads(json.dumps(header.to_jsonable()))
        assert TraceHeader.from_jsonable(wire) == header
        assert header.schema == SCHEMA_VERSION

    def test_header_rejects_other_schema_versions(self):
        wire = TraceHeader(program="p", seed=0, scheduler="", max_steps=1).to_jsonable()
        wire["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(TraceSchemaError):
            TraceHeader.from_jsonable(wire)

    def test_header_rejects_non_header_line(self):
        with pytest.raises(TraceSchemaError):
            TraceHeader.from_jsonable({"kind": "footer"})

    def test_footer_round_trip(self):
        footer = TraceFooter(
            steps=13,
            events=25,
            crashes=({"tid": 2, "name": "t", "e": {"t": "E"}, "st": None, "step": 9},),
            deadlock=True,
            deadlocked_tids=(1, 2),
            truncated=False,
        )
        wire = json.loads(json.dumps(footer.to_jsonable()))
        assert TraceFooter.from_jsonable(wire) == footer
