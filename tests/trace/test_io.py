"""Streaming trace I/O: record a live execution, read it back losslessly."""

import pytest

from repro.core import RandomScheduler
from repro.runtime import EventTrace
from repro.trace import (
    TraceReader,
    TraceSchemaError,
    load_trace,
    record_execution,
)
from repro.workloads import figure1


def _record(tmp_path, name="t.jsonl", **kwargs):
    path = tmp_path / name
    witness = EventTrace()
    result = record_execution(
        figure1.build(),
        RandomScheduler(preemption="every"),
        path=path,
        seed=0,
        max_steps=10_000,
        scheduler_spec="random:every",
        observers=[witness],
        **kwargs,
    )
    return path, witness, result


class TestRecordAndRead:
    def test_events_round_trip_exactly(self, tmp_path):
        path, witness, _ = _record(tmp_path)
        header, events, footer = load_trace(path)
        # The witness observed the same execution the recorder streamed,
        # so decoded events must equal the live ones, element for element.
        assert events == witness.events
        assert header.program == "figure1"
        assert header.seed == 0
        assert header.scheduler == "random:every"
        assert footer is not None
        assert footer.events == len(events)

    def test_gzip_round_trip(self, tmp_path):
        gz, witness, _ = _record(tmp_path, name="t.jsonl.gz")
        assert load_trace(gz)[1] == witness.events

    def test_footer_summarizes_result(self, tmp_path):
        path, _, result = _record(tmp_path)
        _, _, footer = load_trace(path)
        assert footer.steps == result.steps
        assert footer.deadlock == result.deadlock
        assert len(footer.crashes) == len(result.crashes)
        for crash, summary in zip(result.crashes, footer.crashes):
            assert summary["e"]["t"] == crash.error_type

    def test_reader_streams_lazily(self, tmp_path):
        path, witness, _ = _record(tmp_path)
        with TraceReader(path) as reader:
            assert reader.footer is None  # header parsed, events not yet
            first = next(iter(reader))
            assert first == witness.events[0]

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceSchemaError):
            TraceReader(empty)

    def test_recording_is_schedule_neutral(self, tmp_path):
        """A recorded run is the identical schedule an unobserved run takes."""
        path, witness, _ = _record(tmp_path)
        bare = EventTrace()
        record_execution(
            figure1.build(),
            RandomScheduler(preemption="every"),
            path=tmp_path / "second.jsonl",
            seed=0,
            max_steps=10_000,
            observers=[bare],
        )
        signature = [(type(e).__name__, e.tid, e.step) for e in witness.events]
        assert signature == [(type(e).__name__, e.tid, e.step) for e in bare.events]
