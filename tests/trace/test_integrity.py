"""Trace integrity: per-file CRC32, event counts, TraceCorruptError.

The durability contract (ISSUE 7): every way a trace file can rot on
disk — truncation, a torn line, a flipped byte, a vanished footer — must
surface as a structured :class:`TraceCorruptError` naming the file, the
offending line and the reason, never as a raw ``JSONDecodeError`` or
``KeyError`` escaping the reader.
"""

import gzip
import json

import pytest

from repro.trace import (
    TraceCorruptError,
    TraceReader,
    TraceSchemaError,
    TraceStore,
    detect_key,
    load_trace,
    verify_trace,
)
from repro.workloads import figure1

KEY = detect_key("figure1", 0, max_steps=10_000)


@pytest.fixture
def trace_path(tmp_path):
    """One freshly recorded figure1 trace."""
    return TraceStore(tmp_path).ensure(KEY, figure1.build())


def _lines(path):
    return path.read_bytes().splitlines(keepends=True)


def _rewrite(path, lines):
    path.write_bytes(b"".join(lines))


class TestCleanPath:
    def test_footer_carries_crc_and_count(self, trace_path):
        reader = TraceReader(trace_path)
        events = list(reader)
        assert reader.footer is not None
        assert reader.footer.crc32 is not None
        assert reader.footer.events == len(events)

    def test_verify_trace_returns_footer(self, trace_path):
        footer = verify_trace(trace_path)
        assert footer.events > 0
        assert footer.crc32 is not None

    def test_load_trace_round_trips(self, trace_path):
        header, events, footer = load_trace(trace_path)
        assert header.program == "figure1"
        assert events and footer.events == len(events)

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            TraceReader(tmp_path / "nope.jsonl")


class TestCorruptionModes:
    def test_corrupt_error_is_a_schema_error(self):
        # Existing except-clauses on TraceSchemaError keep working.
        exc = TraceCorruptError("p.jsonl", 3, "why")
        assert isinstance(exc, TraceSchemaError)
        assert (exc.path, exc.offset, exc.reason) == ("p.jsonl", 3, "why")
        assert "line 3" in str(exc) and "why" in str(exc)

    def test_whole_file_offset_renders_distinctly(self):
        assert "whole file" in str(TraceCorruptError("p.jsonl", 0, "why"))

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        with pytest.raises(TraceCorruptError, match="empty trace file"):
            list(TraceReader(path))

    def test_garbage_header(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_bytes(b"not json\n")
        with pytest.raises(TraceCorruptError, match="malformed header"):
            TraceReader(path)

    def test_missing_footer_is_truncation(self, trace_path):
        _rewrite(trace_path, _lines(trace_path)[:-1])
        with pytest.raises(TraceCorruptError, match="footer missing"):
            verify_trace(trace_path)

    def test_torn_event_line(self, trace_path):
        lines = _lines(trace_path)
        lines[2] = lines[2][: len(lines[2]) // 2]  # no trailing newline either
        _rewrite(trace_path, lines)
        with pytest.raises(TraceCorruptError) as info:
            verify_trace(trace_path)
        assert info.value.offset == 3  # 1-based line number

    def test_garbage_line_inside(self, trace_path):
        lines = _lines(trace_path)
        lines.insert(2, b"{ not json }\n")
        _rewrite(trace_path, lines)
        with pytest.raises(TraceCorruptError, match="malformed line") as info:
            verify_trace(trace_path)
        assert info.value.offset == 3

    def test_blank_line_inside(self, trace_path):
        lines = _lines(trace_path)
        lines.insert(2, b"\n")
        _rewrite(trace_path, lines)
        with pytest.raises(TraceCorruptError, match="blank line"):
            verify_trace(trace_path)

    def test_tampered_line_fails_the_checksum(self, trace_path):
        # Stays valid JSON and a valid event -> only the CRC can catch it.
        lines = _lines(trace_path)
        event = json.loads(lines[1])
        event["step"] = event.get("step", 0) + 999
        lines[1] = json.dumps(event).encode("utf-8") + b"\n"
        _rewrite(trace_path, lines)
        with pytest.raises(TraceCorruptError, match="checksum") as info:
            verify_trace(trace_path)
        assert info.value.offset == 0  # detected at the footer: whole file

    def test_event_count_mismatch(self, trace_path):
        lines = _lines(trace_path)
        del lines[1]  # drop one event, keep the footer
        _rewrite(trace_path, lines)
        with pytest.raises(TraceCorruptError):
            verify_trace(trace_path)

    def test_truncated_gzip(self, tmp_path):
        store = TraceStore(tmp_path, compress=True)
        path = store.ensure(KEY, figure1.build())
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceCorruptError):
            verify_trace(path)

    def test_footer_without_crc_is_tolerated(self, trace_path):
        # Hand-built traces (schema v1 shape) may omit crc32; the event
        # count still guards them.
        lines = _lines(trace_path)
        footer = json.loads(lines[-1])
        footer.pop("crc32", None)
        lines[-1] = json.dumps(footer).encode("utf-8") + b"\n"
        _rewrite(trace_path, lines)
        assert verify_trace(trace_path).crc32 is None

    def test_reader_closes_file_on_corruption(self, trace_path):
        # Quarantine renames the file right after the error; a reader
        # holding the handle open would block that on some platforms.
        _rewrite(trace_path, _lines(trace_path)[:-1])
        reader = TraceReader(trace_path)
        with pytest.raises(TraceCorruptError):
            list(reader)
        assert reader._fh is None
