"""TraceStore durability: quarantine, recovery, budgets, ephemeral mode.

The acceptance bar (ISSUE 7): corrupting any single store entry must
never crash a campaign — ``with_recovery`` quarantines and re-records at
the cost of one execution — and a disk budget must bound the cache with
oldest-first eviction while never evicting the entry being read.
"""

import pytest

from repro.obs import CRITICAL, DEGRADED, HEALTHY, HealthController, collecting
from repro.trace import (
    QUARANTINE_DIR,
    TraceCorruptError,
    TraceStore,
    analyze_trace,
    detect_key,
    verify_trace,
)
from repro.workloads import figure1

KEY = detect_key("figure1", 0, max_steps=10_000)


def _corrupt(path):
    """Drop the footer: the classic torn-write shape."""
    lines = path.read_bytes().splitlines(keepends=True)
    path.write_bytes(b"".join(lines[:-1]))


def _fill(store, n):
    """Record n distinct entries; returns their paths in seed order."""
    paths = []
    for seed in range(n):
        key = detect_key("figure1", seed, max_steps=10_000)
        paths.append(store.ensure(key, figure1.build()))
    return paths


class TestRecovery:
    def test_corrupt_entry_quarantined_and_rerecorded(self, tmp_path):
        store = TraceStore(tmp_path)
        original = store.ensure(KEY, figure1.build())
        clean = analyze_trace(original, ["hybrid"])["hybrid"]
        _corrupt(original)

        healed = store.with_recovery(
            KEY, figure1.build(), lambda p: analyze_trace(p, ["hybrid"])["hybrid"]
        )
        assert healed.pairs == clean.pairs
        assert store.stats.corrupt == 1 and store.stats.recovered == 1
        # Evidence preserved: the damaged file and a .reason sidecar.
        q = tmp_path / QUARANTINE_DIR
        assert (q / original.name).exists()
        reason = (q / f"{original.name}.reason").read_text()
        assert "footer missing" in reason
        # The cache is healthy again: the fresh entry passes verification.
        verify_trace(store.get(KEY))

    def test_recovery_counts_in_metrics(self, tmp_path):
        store = TraceStore(tmp_path)
        _corrupt(store.ensure(KEY, figure1.build()))
        with collecting() as registry:
            store.with_recovery(KEY, figure1.build(), verify_trace)
        counters = registry.snapshot().counters
        assert counters["trace.store_corrupt"] == 1
        assert counters["trace.store_recovered"] == 1

    def test_second_corruption_propagates(self, tmp_path):
        # A consumer that keeps failing is a real bug or a dying disk,
        # not bit rot; recovery must not loop.
        store = TraceStore(tmp_path)
        calls = []

        def always_corrupt(path):
            calls.append(path)
            raise TraceCorruptError(str(path), 0, "synthetic")

        with pytest.raises(TraceCorruptError):
            store.with_recovery(KEY, figure1.build(), always_corrupt)
        assert len(calls) == 2  # original read + exactly one retry

    def test_quarantine_signals_health(self, tmp_path):
        health = HealthController(corrupt_degraded=2)
        store = TraceStore(tmp_path, health=health)
        for _ in range(2):
            _corrupt(store.ensure(KEY, figure1.build()))
            store.with_recovery(KEY, figure1.build(), verify_trace)
        assert health.corrupt_traces == 2
        assert health.state == DEGRADED


class TestBudget:
    def test_max_entries_evicts_oldest(self, tmp_path):
        import os

        store = TraceStore(tmp_path, max_entries=2)
        paths = _fill(store, 4)
        # Deterministic LRU order regardless of filesystem timestamp
        # granularity: age the files explicitly.
        for i, path in enumerate(paths):
            if path.exists():
                os.utime(path, (i, i))
        store.gc()
        survivors = store.entries()
        assert len(survivors) == 2
        assert paths[-1] in survivors  # newest lives
        assert store.stats.evictions >= 2

    def test_max_bytes_never_evicts_the_entry_being_published(self, tmp_path):
        # A budget smaller than one trace still returns a readable path.
        store = TraceStore(tmp_path, max_bytes=1)
        path = store.ensure(KEY, figure1.build())
        assert path.exists()
        verify_trace(path)

    def test_gc_enforces_a_late_budget(self, tmp_path):
        _fill(TraceStore(tmp_path), 3)
        store = TraceStore(tmp_path, max_entries=1)
        evicted, freed = store.gc()
        assert evicted == 2 and freed > 0
        assert len(store.entries()) == 1

    def test_budget_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            TraceStore(tmp_path, max_bytes=0)
        with pytest.raises(ValueError, match="max_entries"):
            TraceStore(tmp_path, max_entries=-1)

    def test_repeated_budget_hits_degrade_health(self, tmp_path):
        health = HealthController(disk_disable_threshold=2)
        store = TraceStore(tmp_path, max_entries=1, health=health)
        _fill(store, 3)  # two eviction passes -> two budget hits
        assert health.disk_budget_hits >= 2
        assert health.state == DEGRADED
        assert not health.trace_recording_enabled


class TestEphemeralMode:
    def _pressured_health(self):
        health = HealthController(disk_disable_threshold=1)
        health.record_disk_budget_hit()
        assert not health.trace_recording_enabled
        return health

    def test_recording_disabled_yields_ephemeral_entries(self, tmp_path):
        store = TraceStore(tmp_path, health=self._pressured_health())
        path = store.ensure(KEY, figure1.build())
        assert ".ephemeral." in path.name
        verify_trace(path)  # still a complete, analyzable trace
        assert store.entries() == []  # but never a cache entry
        assert store.stats.ephemeral == 1
        store.discard(path)
        assert not path.exists()

    def test_discard_never_touches_published_entries(self, tmp_path):
        store = TraceStore(tmp_path)
        path = store.ensure(KEY, figure1.build())
        store.discard(path)
        assert path.exists()

    def test_with_recovery_analyzes_and_discards_under_pressure(self, tmp_path):
        store = TraceStore(tmp_path, health=self._pressured_health())
        footer = store.with_recovery(KEY, figure1.build(), verify_trace)
        assert footer.events > 0
        assert store.entries() == []
        assert not any(tmp_path.glob("*.ephemeral*"))

    def test_critical_health_disables_recording(self, tmp_path):
        health = HealthController(pool_death_critical=1)
        health.record_pool_death()
        assert health.state == CRITICAL
        store = TraceStore(tmp_path, health=health)
        assert ".ephemeral." in store.ensure(KEY, figure1.build()).name


class TestMaintenance:
    def test_verify_reports_damaged_entries(self, tmp_path):
        store = TraceStore(tmp_path)
        paths = _fill(store, 3)
        _corrupt(paths[1])
        bad = store.verify()
        assert [p for p, _ in bad] == [paths[1]]
        assert paths[1].exists()  # report-only by default

    def test_verify_quarantine_moves_them(self, tmp_path):
        store = TraceStore(tmp_path)
        paths = _fill(store, 3)
        _corrupt(paths[1])
        bad = store.verify(quarantine=True)
        assert len(bad) == 1
        assert not paths[1].exists()
        assert (tmp_path / QUARANTINE_DIR / paths[1].name).exists()
        assert store.verify() == []

    def test_fsync_store_smoke(self, tmp_path):
        path = TraceStore(tmp_path, fsync=True).ensure(KEY, figure1.build())
        verify_trace(path)

    def test_health_state_is_healthy_by_default(self):
        assert HealthController().state == HEALTHY
