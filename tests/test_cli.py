"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("moldyn", "raytracer", "figure1", "linkedlist"):
            assert name in out
        assert "paper:" in out


class TestRun:
    def test_clean_run_exits_zero(self, capsys):
        code = main(["run", "sor", "--seed", "0"])
        assert code == 0
        assert "sor" in capsys.readouterr().out

    def test_crashing_run_exits_nonzero(self, capsys):
        # figure1 seed 3 under the random scheduler reaches ERROR1.
        codes = {main(["run", "figure1", "--seed", str(s)]) for s in range(8)}
        assert 1 in codes
        capsys.readouterr()

    @pytest.mark.parametrize("scheduler", ["random", "default", "rapos"])
    def test_scheduler_choices(self, scheduler, capsys):
        assert main(["run", "sor", "--scheduler", scheduler]) == 0
        capsys.readouterr()


class TestDetect:
    def test_detect_prints_pairs(self, capsys):
        assert main(["detect", "figure1", "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "2 potential racing pair(s)" in out
        assert "(5, 7)" in out

    def test_detector_choice(self, capsys):
        assert main(["detect", "figure1", "--detector", "lockset"]) == 0
        assert "lockset" in capsys.readouterr().out

    def test_unknown_detector_is_a_usage_error(self, capsys):
        assert main(["detect", "figure1", "--detector", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown detector(s): nope" in err
        for name in ("hybrid", "shb", "wcp", "sample"):
            assert name in err

    def test_repeated_detector_flags_print_one_section_each(self, capsys):
        assert (
            main(
                [
                    "detect", "figure1", "--seeds", "2",
                    "--detector", "hybrid", "--detector", "shb",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "== hybrid" in out
        assert "== shb" in out
        assert out.index("== hybrid") < out.index("== shb")

    def test_predictive_detector_reports_grades(self, capsys):
        assert main(["detect", "figure1", "--detector", "shb", "--seeds", "5"]) == 0
        out = capsys.readouterr().out
        assert "schedulable" in out
        assert "speculative" in out

    def test_trace_dir_multi_detector_reuses_recordings(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["detect", "figure1", "--trace-dir", store, "--seeds", "2"]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "detect", "figure1", "--trace-dir", store, "--seeds", "2",
                    "--detector", "hybrid", "--detector", "wcp",
                ]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "== wcp" in captured.out
        assert "0 recorded execution(s)" in captured.err  # warm store


class TestAnalyze:
    def test_repeated_detector_flags(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["record", "figure1", "--seeds", "1", "--trace-dir", store]) == 0
        capsys.readouterr()
        assert (
            main(["analyze", store, "--detector", "shb", "--detector", "sample"])
            == 0
        )
        out = capsys.readouterr().out
        assert "shb report" in out
        assert "sample report" in out

    def test_unknown_detector_is_a_usage_error(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["record", "figure1", "--seeds", "1", "--trace-dir", store]) == 0
        capsys.readouterr()
        assert main(["analyze", store, "--detector", "bogus"]) == 2
        assert "unknown detector(s): bogus" in capsys.readouterr().err


class TestFuzz:
    def test_confirmed_race_exits_one(self, capsys):
        # figure1 has a real race, and confirmed races gate CI: exit 1.
        assert main(["fuzz", "figure1", "--trials", "15"]) == 1
        out = capsys.readouterr().out
        assert "1 real" in out
        assert "harmful pairs" in out
        assert "(5, 7)" in out

    def test_clean_campaign_exits_zero(self, capsys):
        # All of sor's potential races are false alarms.
        assert main(["fuzz", "sor", "--trials", "2"]) == 0
        assert "0 real" in capsys.readouterr().out

    def test_multi_detector_phase1_feeds_the_union(self, capsys):
        assert (
            main(
                [
                    "fuzz", "figure1", "--trials", "15",
                    "--detector", "hybrid", "--detector", "shb",
                ]
            )
            == 1  # the union still contains the real race
        )
        out = capsys.readouterr().out
        assert "2 potential, 1 real" in out  # both pairs, one confirmed

    def test_unknown_detector_is_a_usage_error(self, capsys):
        assert main(["fuzz", "figure1", "--detector", "nope"]) == 2
        assert "unknown detector(s): nope" in capsys.readouterr().err

    def test_quarantine_exits_three(self, capsys):
        # A poisoned chunk (no confirmed race) must surface in the exit
        # code even though the campaign itself completes.
        code = main(
            [
                "fuzz", "sor", "--trials", "2",
                "--fault-plan", "fuzz:0:crash:99",
                "--retries", "0",
            ]
        )
        assert code == 3
        assert "quarantined" in capsys.readouterr().out

    def test_adaptive_schedule_confirms_the_race(self, capsys):
        code = main(
            ["fuzz", "figure1", "--schedule", "adaptive", "--trials", "30"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "(5, 7)" in out

    def test_adaptive_is_deterministic_per_seed(self, capsys):
        args = [
            "fuzz", "figure1", "--schedule", "adaptive",
            "--trials", "30", "--seed", "5",
        ]
        assert main(args) == 1
        first = capsys.readouterr().out
        assert main(args) == 1
        assert capsys.readouterr().out == first

    def test_trial_budget_caps_the_campaign(self, capsys):
        code = main(
            [
                "fuzz", "sor", "--schedule", "adaptive",
                "--trials", "50", "--trial-budget", "10",
            ]
        )
        assert code == 0
        capsys.readouterr()

    def test_budget_flags_require_adaptive(self, capsys):
        assert main(["fuzz", "sor", "--trial-budget", "10"]) == 2
        assert "--schedule adaptive" in capsys.readouterr().err
        assert main(["fuzz", "sor", "--time-budget", "1.0"]) == 2
        capsys.readouterr()

    def test_checkpoint_restart_reuses_the_journal(self, tmp_path, capsys):
        path = str(tmp_path / "journal.jsonl")
        args = ["fuzz", "figure1", "--trials", "4", "--checkpoint", path]
        assert main(args) == 1
        first = capsys.readouterr().out
        journal_size = len(open(path).read().splitlines())
        assert journal_size > 0
        assert main(args) == 1  # resumed run: same verdicts, same exit
        assert capsys.readouterr().out == first
        assert len(open(path).read().splitlines()) == journal_size


class TestReplay:
    def test_replay_renders_interleaving(self, capsys):
        assert main(["replay", "figure1", "--pair", "1", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "step" in out
        assert ">>" in out
        assert "races created" in out

    def test_bad_pair_index(self, capsys):
        assert main(["replay", "figure1", "--pair", "99"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_find_crash_replays_an_error_revealing_seed(self, capsys):
        assert main(["replay", "figure1", "--pair", "1", "--find-crash"]) == 0
        out = capsys.readouterr().out
        assert "AssertionViolation" in out
        assert "ERROR1" in out

    def test_find_crash_gives_up_on_crash_free_programs(self, capsys):
        # sor never throws under any schedule (all its races are false).
        assert main(["replay", "sor", "--pair", "0", "--find-crash", "5"]) == 1
        assert "no crashing seed" in capsys.readouterr().err


class TestHarnessDelegation:
    def test_figure2_delegates(self, capsys):
        assert main(["figure2", "--runs", "5", "--paddings", "0,2"]) == 0
        out = capsys.readouterr().out
        assert "RF P(race)" in out

    def test_table1_delegates(self, capsys):
        assert main(["table1", "--quick", "raytracer"]) == 0
        out = capsys.readouterr().out
        assert "raytracer" in out
        assert "Hybrid#" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            main(["run", "not-a-workload"])
