"""Hybrid detector: the Section 2.2 race condition, edge by edge."""

from repro.core import RandomScheduler
from repro.detectors import HybridRaceDetector
from repro.runtime import (
    Execution,
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)
from repro.workloads import figure1


def detect(factory, seeds=range(5), history_cap=128):
    merged = None
    for seed in seeds:
        detector = HybridRaceDetector(history_cap=history_cap)
        Execution(Program(factory), seed=seed, observers=[detector]).run(
            RandomScheduler(preemption="every")
        )
        if merged is None:
            merged = detector.report
        else:
            merged.merge(detector.report)
    return merged


class TestBareConflicts:
    def test_unlocked_write_write_is_reported(self):
        def factory():
            x = SharedVar("x", 0)

            def writer():
                yield x.write(1)

            def main():
                handles = yield from spawn_all([writer, writer])
                yield from join_all(handles)

            return main()

        report = detect(factory)
        assert len(report) == 1
        (evidence,) = report.evidence.values()
        assert evidence.both_write

    def test_read_read_is_not_a_race(self):
        def factory():
            x = SharedVar("x", 0)

            def reader():
                yield x.read()

            def main():
                handles = yield from spawn_all([reader, reader])
                yield from join_all(handles)

            return main()

        assert len(detect(factory)) == 0

    def test_same_thread_accesses_never_race(self):
        def factory():
            x = SharedVar("x", 0)

            def main():
                yield x.write(1)
                yield x.write(2)
                yield x.read()

            return main()

        assert len(detect(factory)) == 0

    def test_distinct_locations_never_race(self):
        def factory():
            x, y = SharedVar("x", 0), SharedVar("y", 0)

            def one():
                yield x.write(1)

            def two():
                yield y.write(1)

            def main():
                handles = yield from spawn_all([one, two])
                yield from join_all(handles)

            return main()

        assert len(detect(factory)) == 0


class TestLocksetSuppression:
    def test_common_lock_suppresses(self):
        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")

            def writer():
                yield lock.acquire()
                yield x.write(1)
                yield lock.release()

            def main():
                handles = yield from spawn_all([writer, writer])
                yield from join_all(handles)

            return main()

        assert len(detect(factory)) == 0

    def test_disjoint_locks_do_not_suppress(self):
        def factory():
            x = SharedVar("x", 0)
            a, b = Lock("A"), Lock("B")

            def one():
                yield a.acquire()
                yield x.write(1)
                yield a.release()

            def two():
                yield b.acquire()
                yield x.write(2)
                yield b.release()

            def main():
                handles = yield from spawn_all([one, two])
                yield from join_all(handles)

            return main()

        assert len(detect(factory)) == 1

    def test_lock_ordering_is_ignored_hence_predictive(self):
        """The hybrid detector must report the Figure-1 'x' pattern even
        though the lock-protected flag orders the accesses in every run —
        that false positive is its predictive power."""
        report = detect(figure1.build().factory)
        assert figure1.FALSE_PAIR in report.evidence
        assert figure1.REAL_PAIR in report.evidence
        assert len(report) == 2


class TestHappensBeforeEdges:
    def test_start_edge_suppresses(self):
        def factory():
            x = SharedVar("x", 0)

            def child():
                yield x.write(2)

            def main():
                yield x.write(1)  # before spawning: ordered by the start edge
                handle = yield ops.spawn(child)
                yield ops.join(handle)

            return main()

        assert len(detect(factory)) == 0

    def test_join_edge_suppresses(self):
        def factory():
            x = SharedVar("x", 0)

            def child():
                yield x.write(1)

            def main():
                handle = yield ops.spawn(child)
                yield ops.join(handle)
                yield x.write(2)  # after join: ordered

            return main()

        assert len(detect(factory)) == 0

    def test_notify_wait_edge_suppresses(self):
        """The notifier sleeps first, so the waiter is parked in every
        schedule and the notify→wait SND/RCV edge always orders the x
        accesses — the hybrid detector must stay silent."""

        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")
            ready = SharedVar("ready", 0)

            def waiter():
                yield lock.acquire()
                while (yield ready.read()) == 0:
                    yield lock.wait()
                yield lock.release()
                yield x.write(2)  # ordered after the notifier's write

            def notifier():
                yield ops.sleep(50)  # guarantee the waiter parks first
                yield x.write(1)
                yield lock.acquire()
                yield ready.write(1)
                yield lock.notify()
                yield lock.release()

            def main():
                handles = yield from spawn_all([waiter, notifier])
                yield from join_all(handles)

            return main()

        for seed in range(20):
            detector = HybridRaceDetector()
            result = Execution(
                Program(factory), seed=seed, observers=[detector]
            ).run(RandomScheduler(preemption="every"))
            assert not result.deadlock
            assert len(detector.report) == 0, f"seed {seed}: {detector.report}"

    def test_without_wait_the_same_pattern_is_reported(self):
        """Control for the notify test: replace the wait with lock-polling
        and the edge disappears — now the hybrid detector must report x."""

        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")
            ready = SharedVar("ready", 0)

            def poller():
                while True:
                    yield lock.acquire()
                    flag = yield ready.read()
                    yield lock.release()
                    if flag:
                        break
                    yield ops.yield_point()
                yield x.write(2)

            def setter():
                yield ops.sleep(20)
                yield x.write(1)
                yield lock.acquire()
                yield ready.write(1)
                yield lock.release()

            def main():
                handles = yield from spawn_all([poller, setter])
                yield from join_all(handles)

            return main()

        report = detect(factory, seeds=range(5))
        assert len(report) == 1  # the (x.write(1), x.write(2)) false alarm


class TestHistoryCap:
    def test_overflow_sets_truncation_marker(self):
        def factory():
            x = SharedVar("x", 0)

            def hammer():
                for i in range(40):
                    yield x.write(i, label=f"w{i}")  # 40 distinct statements

            def main():
                handles = yield from spawn_all([hammer])
                yield from join_all(handles)
                yield x.read()

            return main()

        report = detect(factory, seeds=(0,), history_cap=8)
        assert report.truncated_locations >= 1


class TestReportMerging:
    def test_merge_accumulates_counts(self):
        report = detect(figure1.build().factory, seeds=range(8))
        real = report.evidence[figure1.REAL_PAIR]
        assert real.count >= 8  # seen at least once per run
