"""Eraser lockset detector: the initialization state machine and refinement."""

from repro.core import RandomScheduler
from repro.detectors import EraserLocksetDetector
from repro.runtime import (
    Execution,
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)


def detect_lockset(factory, seed=0):
    detector = EraserLocksetDetector()
    Execution(Program(factory), seed=seed, observers=[detector]).run(
        RandomScheduler(preemption="every")
    )
    return detector.report


class TestStateMachine:
    def test_single_threaded_initialization_is_silent(self):
        """Virgin -> Exclusive: unlocked writes by one thread never alarm."""

        def factory():
            x = SharedVar("x", 0)

            def main():
                yield x.write(1)
                yield x.write(2)
                yield x.read()

            return main()

        assert len(detect_lockset(factory)) == 0

    def test_shared_read_only_is_silent(self):
        """Exclusive -> Shared: unlocked foreign reads alone never alarm."""

        def factory():
            x = SharedVar("x", 0)

            def reader():
                yield x.read()

            def main():
                yield x.write(1)
                handles = yield from spawn_all([reader, reader])
                yield from join_all(handles)

            return main()

        assert len(detect_lockset(factory)) == 0

    def test_unlocked_foreign_write_alarms(self):
        def factory():
            x = SharedVar("x", 0)

            def writer():
                yield x.write(2)

            def main():
                yield x.write(1)
                handle = yield ops.spawn(writer)
                yield ops.join(handle)
                yield x.read()

            return main()

        report = detect_lockset(factory)
        assert len(report) >= 1

    def test_consistent_lock_discipline_is_silent(self):
        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")

            def worker():
                yield lock.acquire()
                value = yield x.read()
                yield x.write(value + 1)
                yield lock.release()

            def main():
                handles = yield from spawn_all([worker, worker])
                yield from join_all(handles)

            return main()

        for seed in range(5):
            assert len(detect_lockset(factory, seed=seed)) == 0

    def test_candidate_set_refinement_across_two_locks(self):
        """Accesses under {A,B} then {A} keep C(v)={A}: silent.  A later
        access under {B} empties C(v): alarm."""

        def factory():
            x = SharedVar("x", 0)
            a, b = Lock("A"), Lock("B")

            def holder_ab():
                yield a.acquire()
                yield b.acquire()
                yield x.write(1)
                yield b.release()
                yield a.release()

            def holder_a():
                yield ops.sleep(10)
                yield a.acquire()
                yield x.write(2)
                yield a.release()

            def holder_b():
                yield ops.sleep(20)
                yield b.acquire()
                yield x.write(3)
                yield b.release()

            def main():
                handles = yield from spawn_all([holder_ab, holder_a, holder_b])
                yield from join_all(handles)

            return main()

        report = detect_lockset(factory)
        assert len(report) == 1

    def test_lockset_ignores_happens_before(self):
        """Join-ordered unlocked accesses still alarm under pure lockset —
        this is why Eraser over-approximates more than hybrid."""

        def factory():
            x = SharedVar("x", 0)

            def early():
                yield x.write(1)

            def late():
                yield x.write(2)

            def main():
                first = yield ops.spawn(early)
                yield ops.join(first)
                second = yield ops.spawn(late)
                yield ops.join(second)

            return main()

        report = detect_lockset(factory)
        assert len(report) == 1  # hybrid would be silent here


class TestAttribution:
    def test_pair_names_both_statements(self):
        def factory():
            x = SharedVar("x", 0)

            def writer():
                yield x.write(2, label="foreign-write")

            def main():
                yield x.write(1, label="init-write")
                handle = yield ops.spawn(writer)
                yield ops.join(handle)

            return main()

        report = detect_lockset(factory)
        (pair,) = report.pairs
        sites = {pair.first.site, pair.second.site}
        assert sites == {"init-write", "foreign-write"}
