"""RaceReport bookkeeping: dedup, merge, ordering."""

from repro.detectors.report import PairEvidence, RaceReport
from repro.runtime.location import VarLoc, fresh_uid
from repro.runtime.statement import Statement, StatementPair


def _loc():
    return VarLoc(fresh_uid(), "x")


class TestRecord:
    def test_first_record_is_new(self):
        report = RaceReport(program="p", detector="d")
        fresh = report.record(
            Statement(label="a"), Statement(label="b"), _loc(), (1, 2), False
        )
        assert fresh is True
        assert len(report) == 1

    def test_duplicate_pair_increments_count(self):
        report = RaceReport(program="p", detector="d")
        a, b = Statement(label="a"), Statement(label="b")
        report.record(a, b, _loc(), (1, 2), False)
        fresh = report.record(b, a, _loc(), (2, 1), True)  # reversed order
        assert fresh is False
        assert len(report) == 1
        evidence = report.evidence[StatementPair(a, b)]
        assert evidence.count == 2
        assert evidence.both_write  # upgraded by the second observation

    def test_pairs_sorted_deterministically(self):
        report = RaceReport(program="p", detector="d")
        for label in ("z", "a", "m"):
            report.record(
                Statement(label=label), Statement(label="k"), _loc(), (1, 2), False
            )
        assert [str(p) for p in report.pairs] == ["(a, k)", "(k, m)", "(k, z)"]

    def test_iteration_and_str(self):
        report = RaceReport(program="prog", detector="hybrid")
        report.record(Statement(label="a"), Statement(label="b"), _loc(), (1, 2), True)
        assert list(report) == report.pairs
        rendered = str(report)
        assert "hybrid" in rendered and "prog" in rendered and "(a, b)" in rendered
        assert "write/write" in rendered


class TestMerge:
    def test_merge_unions_pairs(self):
        first = RaceReport(program="p", detector="d")
        second = RaceReport(program="p", detector="d")
        a, b, c = (Statement(label=l) for l in "abc")
        first.record(a, b, _loc(), (1, 2), False)
        second.record(a, b, _loc(), (1, 2), False)
        second.record(a, c, _loc(), (1, 3), True)
        second.truncated_locations = 2
        first.merge(second)
        assert len(first) == 2
        assert first.evidence[StatementPair(a, b)].count == 2
        assert first.truncated_locations == 2


class TestFromPairs:
    def test_supplied_pairs_have_no_evidence(self):
        a, b, c = (Statement(label=l) for l in "abc")
        pairs = [StatementPair(a, b), StatementPair(a, c)]
        report = RaceReport.from_pairs(pairs, program="p")
        assert report.detector == "supplied"
        assert len(report) == 2
        assert report.pairs == sorted(pairs, key=lambda p: (str(p.first), str(p.second)))
        assert all(report.evidence[pair] is None for pair in pairs)

    def test_str_skips_missing_evidence(self):
        report = RaceReport.from_pairs(
            [StatementPair(Statement(label="a"), Statement(label="b"))],
            program="p",
        )
        assert "1 potential racing pair(s)" in str(report)

    def test_record_upgrades_supplied_pair(self):
        a, b = Statement(label="a"), Statement(label="b")
        report = RaceReport.from_pairs([StatementPair(a, b)], program="p")
        fresh = report.record(a, b, _loc(), (1, 2), True)
        assert fresh is False  # the pair was already known
        assert report.evidence[StatementPair(a, b)].both_write

    def test_merge_tolerates_missing_evidence(self):
        a, b = Statement(label="a"), Statement(label="b")
        detected = RaceReport(program="p", detector="d")
        detected.record(a, b, _loc(), (1, 2), False)
        supplied = RaceReport.from_pairs([StatementPair(a, b)], program="p")
        detected.merge(supplied)  # None evidence must not clobber a witness
        assert detected.evidence[StatementPair(a, b)].count == 1
        supplied.merge(detected)  # and a witness fills in for None
        assert supplied.evidence[StatementPair(a, b)].count == 1


class TestEvidence:
    def test_describe(self):
        evidence = PairEvidence(
            pair=StatementPair(Statement(label="a"), Statement(label="b")),
            location=VarLoc(1, "x"),
            tids=(1, 2),
            both_write=False,
            count=3,
        )
        text = evidence.describe()
        assert "read/write" in text and "3x" in text and "x" in text
