"""The history-replacement optimization is lossless for statement pairs.

`HistoryRaceDetector` replaces an old access record when a new one with
the same (tid, stmt, is_write, lockset) key arrives, and caps history
length.  The module argues (AccessRecord.key docstring) that replacement
cannot lose a *statement pair*.  This suite checks that claim empirically:
a naive reference detector that appends every record unconditionally must
report exactly the same pair set on randomly generated programs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RandomScheduler
from repro.detectors import HybridRaceDetector
from repro.detectors.base import AccessRecord
from repro.runtime import Execution

from tests.runtime.test_replay_determinism import _SCRIPTS, _make_program


class NaiveHybridDetector(HybridRaceDetector):
    """Reference: unbounded history, no key replacement."""

    def __init__(self):
        super().__init__(history_cap=10**9)

    def _on_mem(self, event):
        clock = self._clock(event.tid)
        history = self._histories.setdefault(event.location, [])
        for record in history:
            if record.tid == event.tid:
                continue
            if not (record.is_write or event.is_write):
                continue
            if self.use_lockset and not record.lockset.isdisjoint(event.locks_held):
                continue
            if clock.knows(record.tid, record.epoch):
                continue
            self.report.record(
                record.stmt,
                event.stmt,
                location=event.location,
                tids=(record.tid, event.tid),
                both_write=record.is_write and event.is_write,
            )
        history.append(  # no replacement, no cap
            AccessRecord(
                tid=event.tid,
                epoch=clock.get(event.tid),
                is_write=event.is_write,
                lockset=event.locks_held,
                stmt=event.stmt,
            )
        )


class TestHistoryEquivalence:
    @given(
        scripts=st.lists(_SCRIPTS, min_size=1, max_size=3),
        seed=st.integers(0, 5_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_replacement_reports_exactly_the_naive_pairs(self, scripts, seed):
        program = _make_program(scripts)
        optimized = HybridRaceDetector()
        naive = NaiveHybridDetector()
        Execution(
            program, seed=seed, observers=[optimized, naive], max_steps=50_000
        ).run(RandomScheduler(preemption="every"))
        assert set(optimized.report.evidence) == set(naive.report.evidence)

    def test_equivalence_on_a_workload(self):
        from repro.workloads import get

        for name in ("weblech", "linkedlist"):
            program = get(name).build()
            optimized = HybridRaceDetector()
            naive = NaiveHybridDetector()
            Execution(
                program, seed=1, observers=[optimized, naive], max_steps=200_000
            ).run(RandomScheduler(preemption="every"))
            assert set(optimized.report.evidence) == set(naive.report.evidence), name
