"""Precise happens-before detector: lock edges honoured, no lockset filter."""

from repro.core import RandomScheduler
from repro.detectors import HappensBeforeDetector, HybridRaceDetector
from repro.runtime import (
    Execution,
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)
from repro.workloads import figure1


def detect_hb(factory, seed=0):
    detector = HappensBeforeDetector()
    Execution(Program(factory), seed=seed, observers=[detector]).run(
        RandomScheduler(preemption="every")
    )
    return detector.report


class TestLockEdges:
    def test_release_acquire_orders_flag_pattern(self):
        """Figure 1's x accesses are ordered through the lock on y: a
        precise HB detector (with lock edges) must NOT report them."""
        reports = [detect_hb(figure1.build().factory, seed=s) for s in range(10)]
        for report in reports:
            assert figure1.FALSE_PAIR not in report.evidence

    def test_real_adjacent_race_is_detected_when_it_happens(self):
        """The z race (5,7) is real; whichever run exhibits conflicting
        unordered accesses must be flagged by the HB detector too."""
        found = any(
            figure1.REAL_PAIR in detect_hb(figure1.build().factory, seed=s).evidence
            for s in range(10)
        )
        assert found

    def test_locked_counter_is_silent(self):
        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")

            def worker():
                yield lock.acquire()
                value = yield x.read()
                yield x.write(value + 1)
                yield lock.release()

            def main():
                handles = yield from spawn_all([worker, worker])
                yield from join_all(handles)

            return main()

        for seed in range(5):
            assert len(detect_hb(factory, seed=seed)) == 0

    def test_no_lockset_filter(self):
        """Two writes under the same lock but genuinely concurrent cannot
        exist; but two *reads-then-writes* under DIFFERENT locks are
        concurrent and must be reported despite being 'locked'."""

        def factory():
            x = SharedVar("x", 0)
            a, b = Lock("A"), Lock("B")

            def one():
                yield a.acquire()
                yield x.write(1)
                yield a.release()

            def two():
                yield b.acquire()
                yield x.write(2)
                yield b.release()

            def main():
                handles = yield from spawn_all([one, two])
                yield from join_all(handles)

            return main()

        assert any(len(detect_hb(factory, seed=s)) == 1 for s in range(5))


class TestPrecisionVsCoverage:
    def test_hb_reports_subset_of_hybrid(self):
        """On any single run, precise-HB findings are a subset of hybrid's
        findings *plus* common-lock pairs; on the figure1 program (no
        common-lock real races) it is a strict subset."""
        for seed in range(10):
            hb = HappensBeforeDetector()
            hybrid = HybridRaceDetector()
            Execution(
                figure1.build(), seed=seed, observers=[hb, hybrid]
            ).run(RandomScheduler(preemption="every"))
            assert set(hb.report.evidence) <= set(hybrid.report.evidence)
