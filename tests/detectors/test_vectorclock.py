"""Vector clock laws — unit and property-based."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import VectorClock

clocks = st.dictionaries(
    st.integers(0, 5), st.integers(0, 20), min_size=0, max_size=6
).map(VectorClock)


class TestBasics:
    def test_fresh_thread_clock_starts_at_one(self):
        clock = VectorClock.for_thread(3)
        assert clock.get(3) == 1
        assert clock.get(0) == 0

    def test_tick_advances_own_component(self):
        clock = VectorClock.for_thread(1)
        clock.tick(1)
        assert clock.get(1) == 2
        clock.tick(9)  # ticking an absent component starts it
        assert clock.get(9) == 1

    def test_join_is_pointwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({1: 2, 3: 5})
        a.join(b)
        assert (a.get(1), a.get(2), a.get(3)) == (3, 1, 5)

    def test_copy_is_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.tick(1)
        assert a.get(1) == 1
        assert b.get(1) == 2

    def test_equality_ignores_zero_entries(self):
        assert VectorClock({1: 1, 2: 0}) == VectorClock({1: 1})
        assert VectorClock({1: 1}) != VectorClock({1: 2})

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(VectorClock())

    def test_repr(self):
        assert repr(VectorClock({2: 3})) == "VC(2:3)"

    def test_knows_is_epoch_dominance(self):
        clock = VectorClock({1: 3})
        assert clock.knows(1, 3)
        assert clock.knows(1, 2)
        assert not clock.knows(1, 4)
        assert not clock.knows(2, 1)


class TestConcurrency:
    def test_fresh_threads_are_concurrent(self):
        assert VectorClock.for_thread(1).concurrent(VectorClock.for_thread(2))

    def test_message_creates_order(self):
        sender = VectorClock.for_thread(1)
        receiver = VectorClock.for_thread(2)
        snapshot = sender.copy()
        sender.tick(1)
        receiver.join(snapshot)
        assert snapshot.leq(receiver)
        assert not receiver.leq(snapshot)
        # Sender's post-tick state is still concurrent with the receiver.
        assert sender.concurrent(receiver)


class TestProperties:
    @given(a=clocks)
    @settings(max_examples=50)
    def test_leq_reflexive(self, a):
        assert a.leq(a)

    @given(a=clocks, b=clocks)
    @settings(max_examples=100)
    def test_leq_antisymmetric_up_to_equality(self, a, b):
        if a.leq(b) and b.leq(a):
            assert a == b

    @given(a=clocks, b=clocks, c=clocks)
    @settings(max_examples=100)
    def test_leq_transitive(self, a, b, c):
        if a.leq(b) and b.leq(c):
            assert a.leq(c)

    @given(a=clocks, b=clocks)
    @settings(max_examples=100)
    def test_join_is_least_upper_bound(self, a, b):
        joined = a.copy()
        joined.join(b)
        assert a.leq(joined) and b.leq(joined)
        # Least: any other upper bound dominates the join.
        upper = a.copy()
        upper.join(b)
        upper.tick(0)
        assert joined.leq(upper)

    @given(a=clocks, b=clocks)
    @settings(max_examples=100)
    def test_join_commutative(self, a, b):
        left = a.copy()
        left.join(b)
        right = b.copy()
        right.join(a)
        assert left == right

    @given(a=clocks, b=clocks, c=clocks)
    @settings(max_examples=100)
    def test_join_associative(self, a, b, c):
        left = a.copy()
        left.join(b)
        left.join(c)
        bc = b.copy()
        bc.join(c)
        right = a.copy()
        right.join(bc)
        assert left == right

    @given(a=clocks)
    @settings(max_examples=50)
    def test_join_idempotent(self, a):
        joined = a.copy()
        joined.join(a)
        assert joined == a

    @given(a=clocks, b=clocks)
    @settings(max_examples=100)
    def test_concurrent_iff_incomparable(self, a, b):
        assert a.concurrent(b) == (not a.leq(b) and not b.leq(a))

    @given(a=clocks, tid=st.integers(0, 5))
    @settings(max_examples=50)
    def test_tick_strictly_increases(self, a, tid):
        before = a.copy()
        a.tick(tid)
        assert before.leq(a) and before != a


class TestPredictiveMonotonicity:
    """The laws the predictive detectors' superset guarantee rests on.

    The weak (suppression) clocks join a *subset* of the edges the
    hybrid's clocks join, with identical SND ticks — so weak ≤ hybrid
    pointwise at every access, and fewer joins can only ever mean fewer
    ``knows`` suppressions, never more.
    """

    @given(a=clocks, b=clocks, c=clocks)
    @settings(max_examples=100)
    def test_join_is_monotone(self, a, b, c):
        """x ≤ y implies x ⊔ z ≤ y ⊔ z: skipping a join keeps a clock
        dominated by the clock that took it."""
        smaller = a.copy()
        bigger = a.copy()
        bigger.join(b)
        smaller.join(c)
        bigger.join(c)
        assert smaller.leq(bigger)

    @given(a=clocks, b=clocks, tid=st.integers(0, 5), epoch=st.integers(1, 20))
    @settings(max_examples=100)
    def test_knows_is_monotone_in_the_clock(self, a, b, tid, epoch):
        """A dominated clock knows no epoch the dominating one misses —
        so every pair the bigger-clocked detector reports (¬knows), the
        smaller-clocked one reports too: the superset guarantee."""
        smaller = a.copy()
        bigger = a.copy()
        bigger.join(b)
        if smaller.knows(tid, epoch):
            assert bigger.knows(tid, epoch)
