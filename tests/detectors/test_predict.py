"""The predictive Phase-1 subsystem: shb, wcp, and the sampling screen.

The acceptance criteria of the subsystem, as tests:

* superset hierarchy — ``pairs(hybrid) ⊆ pairs(shb) ⊆ pairs(wcp)`` on
  stored traces, strictly on several workloads;
* every extra pair is graded (``schedulable``/speculative) and falls in a
  documented false-positive class that Phase 2 weeds;
* repeated offline analysis of one trace is byte-identical;
* the detectors register in ``make_detector`` and the new
  ``available_detectors()`` lists them.
"""

import pytest

from repro.core import RandomScheduler, detect_races, fuzz_races
from repro.detectors import (
    available_detectors,
    make_detector,
    union_reports,
)
from repro.detectors.predict import (
    COMPLETION,
    SPAWN,
    WAKEUP,
    EdgeClassifier,
    SamplingRaceDetector,
    ShbRaceDetector,
    WcpRaceDetector,
)
from repro.obs import collecting
from repro.runtime import (
    Execution,
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)
from repro.runtime.events import (
    AcquireEvent,
    RcvEvent,
    SndEvent,
    ThreadStartEvent,
)
from repro.trace import TraceStore, analyze_trace, detect_key
from repro.workloads import figure1, get

STEP_CAP = 20_000


def run_detector(factory, detector, seeds=range(5)):
    merged = None
    for seed in seeds:
        Execution(Program(factory), seed=seed, observers=[detector]).run(
            RandomScheduler(preemption="every")
        )
        if merged is None:
            merged = detector.report
        else:
            merged.merge(detector.report)
    return merged


def detect_all(workload, names, seeds=(0, 1, 2)):
    spec = get(workload)
    return detect_races(
        spec.build(),
        detector=list(names),
        seeds=seeds,
        max_steps=min(spec.max_steps, STEP_CAP),
    )


# --------------------------------------------------------------------- #
# Edge classification (stream context recovers the edge kinds).
# --------------------------------------------------------------------- #


class TestEdgeClassifier:
    def test_spawn_pattern(self):
        edges = EdgeClassifier()
        assert edges.note(ThreadStartEvent(step=3, tid=0, child=1, name="t1")) is None
        assert edges.note(SndEvent(step=3, tid=0, msg_id=7)) is None
        assert edges.note(RcvEvent(step=3, tid=1, msg_id=7)) == SPAWN

    def test_wakeup_pattern(self):
        edges = EdgeClassifier()
        assert edges.note(AcquireEvent(step=9, tid=2, lock=1)) is None
        assert edges.note(RcvEvent(step=9, tid=2, msg_id=4)) == WAKEUP

    def test_standalone_rcv_is_completion(self):
        edges = EdgeClassifier()
        assert edges.note(RcvEvent(step=5, tid=0, msg_id=2)) == COMPLETION

    def test_spawn_needs_matching_step_and_msg(self):
        edges = EdgeClassifier()
        edges.note(ThreadStartEvent(step=3, tid=0, child=1, name="t1"))
        edges.note(SndEvent(step=3, tid=0, msg_id=7))
        # A join of the spawned thread later reuses no spawn context.
        assert edges.note(RcvEvent(step=8, tid=0, msg_id=9)) == COMPLETION

    def test_reset_clears_context(self):
        edges = EdgeClassifier()
        edges.note(AcquireEvent(step=9, tid=2, lock=1))
        edges.reset()
        assert edges.note(RcvEvent(step=9, tid=2, msg_id=4)) == COMPLETION


# --------------------------------------------------------------------- #
# What prediction adds over observation, on hand-built programs.
# --------------------------------------------------------------------- #


class TestPredictionBeyondObservation:
    def test_join_protected_pair_predicted_and_graded(self):
        """The hybrid's join edge hides the post-join conflict; shb keeps
        it as a speculative candidate (the join-protected FP class)."""

        def factory():
            x = SharedVar("x", 0)

            def child():
                yield x.write(1)

            def main():
                handle = yield ops.spawn(child)
                yield ops.join(handle)
                yield x.write(2)

            return main()

        from repro.detectors import HybridRaceDetector

        assert len(run_detector(factory, HybridRaceDetector())) == 0
        report = run_detector(factory, ShbRaceDetector())
        assert len(report) == 1
        (evidence,) = report.evidence.values()
        # The join really does order the accesses: graded speculative.
        assert evidence.schedulable is False

    def test_spawn_edge_still_suppresses(self):
        """A child can never precede its creation in any schedule, so the
        spawn edge stays in the weak order and keeps suppressing."""

        def factory():
            x = SharedVar("x", 0)

            def child():
                yield x.write(2)

            def main():
                yield x.write(1)
                handle = yield ops.spawn(child)
                yield ops.join(handle)

            return main()

        assert len(run_detector(factory, ShbRaceDetector())) == 0
        assert len(run_detector(factory, WcpRaceDetector())) == 0

    def test_wakeup_ordered_pair_predicted(self):
        """The notify→wait pairing is a schedule artifact: shb reports the
        pair the hybrid's wakeup edge suppresses (the wakeup-ordered FP
        class)."""

        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")
            ready = SharedVar("ready", 0)

            def waiter():
                yield lock.acquire()
                while (yield ready.read()) == 0:
                    yield lock.wait()
                yield lock.release()
                yield x.write(2)

            def notifier():
                yield ops.sleep(50)  # guarantee the waiter parks first
                yield x.write(1)
                yield lock.acquire()
                yield ready.write(1)
                yield lock.notify()
                yield lock.release()

            def main():
                handles = yield from spawn_all([waiter, notifier])
                yield from join_all(handles)

            return main()

        from repro.detectors import HybridRaceDetector

        assert len(run_detector(factory, HybridRaceDetector(), range(10))) == 0
        report = run_detector(factory, ShbRaceDetector(), range(10))
        assert any(
            "x" in info.location.describe()
            for info in report.evidence.values()
        )

    def test_inconsistently_guarded_pair_is_wcp_only(self):
        """t1 and t2 access x under L, t3 writes it bare.  The blanket
        rule exonerates (t1, t2); consistent-guard reasoning sees the
        broken discipline and keeps it as a candidate."""

        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")

            def locked_writer():
                yield lock.acquire()
                yield x.write(1, label="sync-write")
                yield lock.release()

            def locked_reader():
                yield lock.acquire()
                yield x.read(label="sync-read")
                yield lock.release()

            def bare_writer():
                yield x.write(2, label="bare-write")

            def main():
                handles = yield from spawn_all(
                    [locked_writer, locked_reader, bare_writer]
                )
                yield from join_all(handles)

            return main()

        shb = run_detector(factory, ShbRaceDetector(), range(10))
        wcp = run_detector(factory, WcpRaceDetector(), range(10))
        shb_pairs = set(shb.pairs)
        wcp_pairs = set(wcp.pairs)
        assert shb_pairs <= wcp_pairs
        extra = {
            frozenset((p.first.label, p.second.label))
            for p in wcp_pairs - shb_pairs
        }
        assert frozenset(("sync-write", "sync-read")) in extra
        detector = WcpRaceDetector()
        Execution(Program(factory), seed=0, observers=[detector]).run(
            RandomScheduler(preemption="every")
        )
        assert detector.guard_breaks >= 1

    def test_consistent_discipline_keeps_suppressing_in_wcp(self):
        def factory():
            x = SharedVar("x", 0)
            lock = Lock("L")

            def writer():
                yield lock.acquire()
                yield x.write(1)
                yield lock.release()

            def main():
                handles = yield from spawn_all([writer, writer])
                yield from join_all(handles)

            return main()

        assert len(run_detector(factory, WcpRaceDetector(), range(10))) == 0


class TestSchedulableGrading:
    def test_figure1_real_pair_schedulable_false_pair_speculative(self):
        """The SDP clocks recover exactly the paper's Figure-1 story: the
        z race is schedulable in some reordering, while the lock-ordered
        flag handoff forces stmt1 before stmt10 in every one."""
        report = run_detector(
            figure1.build().factory, ShbRaceDetector(), range(10)
        )
        assert report.evidence[figure1.REAL_PAIR].schedulable is True
        assert report.evidence[figure1.FALSE_PAIR].schedulable is False

    def test_counter_increment_pattern_stays_reported(self):
        """Read-modify-write races: the write→read edge must grade, not
        suppress — an SHB order folded into suppression would hide the
        second increment's races with the first."""

        def factory():
            x = SharedVar("x", 0)

            def bump():
                value = yield x.read(label="load")
                yield x.write(value + 1, label="store")

            def main():
                handles = yield from spawn_all([bump, bump])
                yield from join_all(handles)

            return main()

        from repro.detectors import HybridRaceDetector

        hybrid = run_detector(factory, HybridRaceDetector(), range(10))
        shb = run_detector(factory, ShbRaceDetector(), range(10))
        assert set(hybrid.pairs) <= set(shb.pairs)
        labels = {
            frozenset((p.first.label, p.second.label)) for p in shb.pairs
        }
        assert frozenset(("load", "store")) in labels
        assert frozenset(("store",)) in labels  # store/store


# --------------------------------------------------------------------- #
# The superset hierarchy on real workloads, from stored traces.
# --------------------------------------------------------------------- #


class TestSupersetHierarchy:
    WORKLOADS = ("sor", "philosophers", "raytracer", "figure1", "moldyn")
    #: workloads where prediction strictly exceeds observation.
    STRICT_SHB = ("sor", "philosophers", "raytracer")

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_hybrid_subset_shb_subset_wcp(self, workload):
        reports = detect_all(workload, ("hybrid", "shb", "wcp", "sample"))
        hybrid = set(reports["hybrid"].pairs)
        shb = set(reports["shb"].pairs)
        wcp = set(reports["wcp"].pairs)
        assert hybrid <= shb, f"{workload}: shb lost a hybrid pair"
        assert shb <= wcp, f"{workload}: wcp lost an shb pair"

    @pytest.mark.parametrize("workload", STRICT_SHB)
    def test_prediction_strictly_exceeds_observation(self, workload):
        reports = detect_all(workload, ("hybrid", "shb"))
        hybrid = set(reports["hybrid"].pairs)
        shb = set(reports["shb"].pairs)
        assert hybrid < shb, f"{workload}: expected a strict superset"
        # Every extra pair carries a confidence grade.
        for pair in shb - hybrid:
            assert reports["shb"].evidence[pair].schedulable is not None

    def test_sor_extra_pairs_are_join_protected_and_weeded_by_phase2(self):
        """sor's four extra candidates are main's post-join boundary reads
        — the documented join-protected class.  Phase 2 never creates
        them, which is exactly the division of labour the paper sets up.
        """
        spec = get("sor")
        reports = detect_all("sor", ("hybrid", "shb"))
        extra = sorted(
            set(reports["shb"].pairs) - set(reports["hybrid"].pairs),
            key=str,
        )
        assert len(extra) == 4
        for pair in extra:
            evidence = reports["shb"].evidence[pair]
            assert evidence.schedulable is False  # graded speculative
            assert 0 in evidence.tids  # one side is main (tid 0)
        verdicts = fuzz_races(
            spec.build(),
            extra,
            trials=3,
            max_steps=min(spec.max_steps, STEP_CAP),
        )
        assert all(v.times_created == 0 for v in verdicts.values())


# --------------------------------------------------------------------- #
# Offline == live, and determinism of repeated analysis.
# --------------------------------------------------------------------- #


class TestOfflineDeterminism:
    def test_repeated_analysis_is_byte_identical(self, tmp_path):
        spec = get("sor")
        store = TraceStore(tmp_path)
        key = detect_key(spec.name, 0, max_steps=STEP_CAP)
        path = store.ensure(key, spec.build())
        names = ("shb", "wcp", "sample")
        first = analyze_trace(path, names)
        second = analyze_trace(path, names)
        for name in names:
            assert first[name] == second[name]
            assert str(first[name]) == str(second[name])

    def test_offline_equals_live_for_predictive_detectors(self, tmp_path):
        spec = get("philosophers")
        store = TraceStore(tmp_path)
        live = [make_detector(name) for name in ("shb", "wcp", "sample")]
        key = detect_key(spec.name, 1, max_steps=STEP_CAP)
        path = store.ensure(key, spec.build(), observers=live)
        offline = analyze_trace(path, ("shb", "wcp", "sample"))
        for observer, name in zip(live, ("shb", "wcp", "sample")):
            assert observer.report == offline[name]


# --------------------------------------------------------------------- #
# The sampling screener.
# --------------------------------------------------------------------- #


class TestSamplingScreener:
    def test_reports_plain_conflicts(self):
        def factory():
            x = SharedVar("x", 0)

            def writer():
                yield x.write(1)

            def main():
                handles = yield from spawn_all([writer, writer])
                yield from join_all(handles)

            return main()

        report = run_detector(factory, SamplingRaceDetector())
        assert len(report) == 1

    def test_cap_bounds_the_sample_and_counts_drops(self):
        def factory():
            x = SharedVar("x", 0)

            def hammer():
                for i in range(12):
                    yield x.write(i, label=f"w{i}")

            def main():
                handles = yield from spawn_all([hammer])
                yield from join_all(handles)

            return main()

        detector = SamplingRaceDetector(sample_cap=4)
        report = run_detector(factory, detector, seeds=(0,))
        assert detector.dropped > 0
        assert report.truncated_locations == 1

    def test_rejects_nonpositive_cap(self):
        with pytest.raises(AssertionError):
            SamplingRaceDetector(sample_cap=0)

    def test_sample_cap_reaches_detector_through_analyze(self, tmp_path):
        spec = get("figure1")
        store = TraceStore(tmp_path)
        key = detect_key(spec.name, 0, max_steps=STEP_CAP)
        path = store.ensure(key, spec.build())
        small = analyze_trace(path, ("sample",), sample_cap=1)
        large = analyze_trace(path, ("sample",))
        assert len(small["sample"]) <= len(large["sample"])


# --------------------------------------------------------------------- #
# Registry, options, and the report union.
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_available_detectors_lists_all_six(self):
        names = available_detectors()
        assert names == sorted(names)
        for expected in (
            "hybrid",
            "happens-before",
            "lockset",
            "shb",
            "wcp",
            "sample",
        ):
            assert expected in names

    def test_make_detector_builds_predictive_classes(self):
        assert isinstance(make_detector("shb"), ShbRaceDetector)
        assert isinstance(make_detector("wcp"), WcpRaceDetector)
        screener = make_detector("sample", sample_cap=3, history_cap=64)
        assert isinstance(screener, SamplingRaceDetector)
        assert screener.sample_cap == 3  # history_cap silently dropped

    def test_unknown_name_raises_with_valid_names(self):
        with pytest.raises(KeyError, match="shb"):
            make_detector("nope")


class TestUnionReports:
    def test_union_merges_pairs_and_grades(self):
        reports = detect_all("figure1", ("hybrid", "shb"), seeds=range(10))
        union = union_reports(reports)
        assert union.detector == "hybrid+shb"
        assert set(union.pairs) == set(reports["hybrid"].pairs) | set(
            reports["shb"].pairs
        )
        # The graded evidence survives the union.
        assert union.evidence[figure1.REAL_PAIR].schedulable is True

    def test_union_accepts_iterables_and_overrides(self):
        reports = detect_all("figure1", ("hybrid", "shb"))
        union = union_reports(
            list(reports.values()), detector="phase1", program="p"
        )
        assert union.detector == "phase1"
        assert union.program == "p"


# --------------------------------------------------------------------- #
# Observability: predict.* counters and per-detector spans.
# --------------------------------------------------------------------- #


class TestObservability:
    def test_counters_and_spans_under_collecting(self, tmp_path):
        spec = get("sor")
        with collecting() as registry:
            detect_races(
                spec.build(),
                detector=["shb", "wcp", "sample"],
                seeds=(0,),
                max_steps=STEP_CAP,
                trace_dir=tmp_path,
            )
            snapshot = registry.snapshot()
        counters = snapshot.counters
        assert counters.get("predict.shb.pairs", 0) > 0
        assert counters.get("predict.wcp.pairs", 0) > 0
        assert counters.get("predict.sample.pairs", 0) > 0
        # sor joins its workers: the softened edges are counted.
        assert counters.get("predict.shb.soft_edges", 0) > 0
        assert "predict.wcp.guard_breaks" in counters
        for name in ("shb", "wcp", "sample"):
            assert f"predict.analyze.{name}" in snapshot.spans

    def test_no_registry_no_crash(self):
        report = run_detector(
            figure1.build().factory, ShbRaceDetector(), seeds=(0,)
        )
        assert len(report) >= 1
