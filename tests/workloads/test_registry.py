"""Workload registry: completeness and structural validity of every spec."""

import pytest

from repro.runtime import Program
from repro.workloads import all_workloads, get, table1_workloads
from repro.workloads.base import GroundTruth, PaperRow, WorkloadSpec

TABLE1_NAMES = {
    "moldyn",
    "raytracer",
    "montecarlo",
    "cache4j",
    "sor",
    "hedc",
    "weblech",
    "jspider",
    "jigsaw",
    "vector",
    "linkedlist",
    "arraylist",
    "hashset",
    "treeset",
}


class TestRegistry:
    def test_every_table1_row_is_registered(self):
        assert {spec.name for spec in table1_workloads()} == TABLE1_NAMES

    def test_examples_registered(self):
        names = {spec.name for spec in all_workloads()}
        assert {"figure1", "figure2"} <= names

    def test_get_by_name(self):
        assert get("moldyn").name == "moldyn"
        with pytest.raises(KeyError):
            get("nonexistent")

    def test_every_spec_has_truth_and_description(self):
        for spec in all_workloads():
            assert isinstance(spec, WorkloadSpec)
            assert spec.description
            assert isinstance(spec.truth, GroundTruth), spec.name
            assert spec.truth.notes, spec.name

    def test_table1_specs_carry_paper_rows(self):
        for spec in table1_workloads():
            assert isinstance(spec.paper, PaperRow), spec.name
            assert spec.paper.sloc > 0
            assert spec.paper.hybrid_races >= spec.paper.real_races

    def test_builders_produce_fresh_programs(self):
        for spec in all_workloads():
            first, second = spec.build(), spec.build()
            assert isinstance(first, Program), spec.name
            assert first is not second

    def test_ground_truth_is_consistent(self):
        for spec in all_workloads():
            assert 0 <= spec.truth.harmful_pairs <= spec.truth.real_pairs, spec.name

    def test_kinds(self):
        kinds = {spec.kind for spec in all_workloads()}
        assert kinds == {"closed", "collection", "example"}
