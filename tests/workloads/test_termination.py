"""Every workload terminates under every scheduler and never hits the
engine (deadlocks and simulated exceptions are expected outcomes; engine
errors and step-budget truncation are not)."""

import pytest

from repro.core import DefaultScheduler, RandomScheduler
from repro.runtime import Execution
from repro.workloads import all_workloads

WORKLOADS = [spec for spec in all_workloads()]


@pytest.mark.parametrize("spec", WORKLOADS, ids=lambda s: s.name)
class TestTermination:
    def test_random_scheduler_terminates(self, spec):
        for seed in range(5):
            result = Execution(spec.build(), seed=seed, max_steps=300_000).run(
                RandomScheduler(preemption="every")
            )
            assert not result.truncated, f"{spec.name} seed {seed} truncated"

    def test_sync_preemption_terminates(self, spec):
        for seed in range(3):
            result = Execution(spec.build(), seed=seed, max_steps=300_000).run(
                RandomScheduler(preemption="sync")
            )
            assert not result.truncated, f"{spec.name} seed {seed} truncated"

    def test_default_scheduler_terminates(self, spec):
        result = Execution(spec.build(), seed=0, max_steps=300_000).run(
            DefaultScheduler()
        )
        assert not result.truncated, f"{spec.name} truncated"

    def test_replay_is_deterministic(self, spec):
        def signature(seed):
            result = Execution(spec.build(), seed=seed, max_steps=300_000).run(
                RandomScheduler(preemption="every")
            )
            return (result.steps, tuple(result.exception_types), result.deadlock)

        assert signature(3) == signature(3)
