"""Per-workload Table 1 shape: measured verdicts vs seeded ground truth.

These run the full two-phase pipeline per benchmark with a reduced trial
count, so the assertions are on *stable* quantities: the exact Phase 1
pair counts, the set of real races (exact for high-probability races,
lower bounds for the flaky collection drivers), and which exception types
appear.  The full-trial numbers live in EXPERIMENTS.md.
"""

import pytest

from repro.harness.table1 import measure_row
from repro.workloads import get

TRIALS = 30


@pytest.fixture(scope="module")
def rows():
    cache = {}

    def measure(name):
        if name not in cache:
            cache[name] = measure_row(
                get(name), trials=TRIALS, baseline_runs=10, timing_runs=1
            )
        return cache[name]

    return measure


class TestComputeKernels:
    def test_moldyn(self, rows):
        row = rows("moldyn")
        assert row.potential == 5
        assert row.real == 4  # the seeded benign races, nothing more
        assert row.harmful == 0
        assert row.probability == 1.0

    def test_raytracer_exactly_the_checksum_races(self, rows):
        row = rows("raytracer")
        assert row.potential == 2
        assert row.real == 2
        assert row.harmful == 0
        assert row.probability == 1.0
        # Both pairs touch the checksum accumulator.
        for verdict in row.campaign.verdicts.values():
            assert verdict.is_real

    def test_montecarlo(self, rows):
        row = rows("montecarlo")
        assert row.potential == 2
        assert row.real == 1  # only the finished flag
        assert row.harmful == 0

    def test_sor_all_false_positives(self, rows):
        row = rows("sor")
        assert row.potential >= 4
        assert row.real == 0
        assert row.harmful == 0

    def test_jspider_all_false_positives(self, rows):
        row = rows("jspider")
        assert row.potential >= 1
        assert row.real == 0


class TestServerWorkloads:
    def test_cache4j_sleep_race_and_interrupt_crash(self, rows):
        row = rows("cache4j")
        assert row.potential == 2
        assert row.real == 2
        assert row.harmful >= 1
        assert row.campaign.exception_types.keys() == {"InterruptedException"}
        assert row.probability == 1.0

    def test_hedc_npe(self, rows):
        row = rows("hedc")
        assert row.potential == 3
        assert row.real == 2
        assert row.harmful >= 1
        assert row.campaign.exception_types.keys() == {"NullPointerError"}

    def test_weblech_frontier_bug(self, rows):
        row = rows("weblech")
        assert row.potential == 7
        assert 5 <= row.real <= 7
        assert row.harmful >= 1
        assert "NoSuchElementError" in row.campaign.exception_types

    def test_jigsaw_benign_telemetry(self, rows):
        row = rows("jigsaw")
        assert row.potential >= 12
        assert row.real >= 10
        assert row.harmful == 0
        assert not row.campaign.exception_types


class TestCollectionDrivers:
    def test_vector_benign(self, rows):
        row = rows("vector")
        assert row.potential == 5
        assert row.real >= 4
        assert row.harmful == 0  # the paper's 0-exception vector row
        assert not row.campaign.exception_types

    def test_linkedlist_cme(self, rows):
        row = rows("linkedlist")
        assert row.potential >= 10
        assert row.real >= 8
        assert row.harmful >= 5
        assert "ConcurrentModificationError" in row.campaign.exception_types

    def test_arraylist_cme(self, rows):
        row = rows("arraylist")
        assert row.potential >= 7
        assert row.real >= 5
        assert row.harmful >= 4
        assert "ConcurrentModificationError" in row.campaign.exception_types

    def test_treeset_cme(self, rows):
        row = rows("treeset")
        assert row.potential >= 4
        assert row.real >= 3
        assert row.harmful >= 1
        assert "ConcurrentModificationError" in row.campaign.exception_types

    def test_hashset_races_and_wrapper_deadlock(self, rows):
        row = rows("hashset")
        assert row.potential >= 3
        assert row.real >= 1
        # The cross-object removeAll lock inversion: RaceFuzzer reports real
        # deadlocks (Algorithm 1 lines 30-32) in a good fraction of runs.
        assert row.deadlocks_found > 0


class TestInvariants:
    @pytest.mark.parametrize(
        "name",
        ["moldyn", "raytracer", "cache4j", "sor", "hedc", "linkedlist"],
    )
    def test_real_subset_of_potential(self, rows, name):
        row = rows(name)
        created = set()
        for verdict in row.campaign.verdicts.values():
            created |= verdict.created_pairs
        # Every created pair involves statements from some phase-1 pair's
        # statement set (self-races on one statement of a pair count).
        phase1_statements = set()
        for pair in row.campaign.phase1.pairs:
            phase1_statements.add(pair.first)
            phase1_statements.add(pair.second)
        for pair in created:
            assert pair.first in phase1_statements
            assert pair.second in phase1_statements
