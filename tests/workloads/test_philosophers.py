"""Dining philosophers: race-free, deadlock-prone, deadlock-directable."""

from repro.core import (
    DeadlockFuzzer,
    RandomScheduler,
    detect_lock_order_inversions,
    detect_races,
    race_directed_test,
)
from repro.runtime import Execution
from repro.workloads import get
from repro.workloads.philosophers import build


class TestRaceFreedom:
    def test_registered(self):
        assert get("philosophers").kind == "example"

    def test_no_potential_races(self):
        report = detect_races(build(), seeds=range(5), max_steps=500_000)
        assert len(report) == 0

    def test_racefuzzer_has_nothing_to_confirm(self):
        campaign = race_directed_test(
            build(), trials=5, phase1_seeds=range(3), max_steps=500_000
        )
        assert campaign.potential_pairs == 0
        assert campaign.real_pairs == []


class TestDeadlockDirection:
    def test_passive_runs_rarely_deadlock_with_thinking_time(self):
        deadlocks = sum(
            Execution(build(thinking=8), seed=seed, max_steps=500_000)
            .run(RandomScheduler("every"))
            .deadlock
            for seed in range(20)
        )
        assert deadlocks < 20  # some clean runs exist to learn from

    def test_lock_order_cycle_is_mined(self):
        report = detect_lock_order_inversions(
            build(thinking=8), seeds=range(6), max_steps=500_000
        )
        assert report.cycles()
        assert report.target_statements()

    def test_directed_fuzzing_starves_the_table(self):
        targets = detect_lock_order_inversions(
            build(thinking=8), seeds=range(6), max_steps=500_000
        ).target_statements()
        fuzzer = DeadlockFuzzer(targets, max_steps=500_000)
        runs = 20
        directed = sum(
            fuzzer.run(build(thinking=8), seed=seed).deadlock
            for seed in range(runs)
        )
        passive = sum(
            Execution(build(thinking=8), seed=seed, max_steps=500_000)
            .run(RandomScheduler("every"))
            .deadlock
            for seed in range(runs)
        )
        assert directed >= passive
        assert directed >= runs * 0.7

    def test_correct_runs_count_every_meal(self):
        for seed in range(10):
            result = Execution(build(), seed=seed, max_steps=500_000).run(
                RandomScheduler("every")
            )
            if not result.deadlock:
                assert not result.crashes, f"seed {seed}: {result.crashes}"
