"""CLI surface: --metrics-out, --progress, repro stats, trace-store line."""

import json

from repro.cli import main
from repro.obs import REQUIRED_COUNTERS, validate_run_report


def _load(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class TestMetricsOut:
    def test_fuzz_writes_valid_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["fuzz", "figure1", "--trials", "4", "--metrics-out", str(out)]
        )
        capsys.readouterr()
        assert code == 1  # figure1's race confirms
        report = _load(out)
        assert validate_run_report(report) == []
        assert report["command"] == "fuzz"
        assert report["workload"] == "figure1"
        assert report["counters"]["fuzz.trials"] > 0
        assert report["counters"]["fuzz.coin_flips"] > 0
        assert report["counters"]["interp.executions"] > 0
        assert any(name.startswith("pair.") for name in report["spans"])
        assert "phase2.fuzz" in report["spans"]

    def test_run_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        main(["run", "sor", "--metrics-out", str(out)])
        capsys.readouterr()
        report = _load(out)
        assert validate_run_report(report) == []
        assert report["command"] == "run"
        assert report["counters"]["interp.executions"] == 1

    def test_detect_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert (
            main(["detect", "figure1", "--seeds", "2", "--metrics-out", str(out)])
            == 0
        )
        capsys.readouterr()
        report = _load(out)
        assert report["command"] == "detect"
        assert report["counters"]["interp.executions"] == 2

    def test_checkpoint_resume_merges_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        journal = tmp_path / "journal.jsonl"
        argv = [
            "fuzz", "figure1", "--trials", "4", "--jobs", "2",
            "--checkpoint", str(journal), "--metrics-out", str(out),
        ]
        main(argv)
        first = _load(out)
        main(argv)  # resumed: all chunks cached
        capsys.readouterr()
        second = _load(out)
        # trials accumulate (no new ones ran), cache hits are recorded
        assert second["counters"]["fuzz.trials"] == first["counters"]["fuzz.trials"]
        assert second["counters"]["supervisor.cached"] > 0
        assert validate_run_report(second) == []


class TestProgress:
    def test_fuzz_progress_lines(self, tmp_path, capsys):
        main(["fuzz", "figure1", "--trials", "4", "--progress"])
        err = capsys.readouterr().err
        assert "[fuzz]" in err
        assert "2/2 (100%)" in err


class TestDetectTraceStoreLine:
    def test_cold_then_warm_store(self, tmp_path, capsys):
        traces = tmp_path / "traces"
        main(["detect", "figure1", "--seeds", "2", "--trace-dir", str(traces)])
        cold = capsys.readouterr().err
        assert "trace store: 0 hit(s), 2 miss(es), 2 recorded execution(s)" in cold
        main(["detect", "figure1", "--seeds", "2", "--trace-dir", str(traces)])
        warm = capsys.readouterr().err
        assert "trace store: 2 hit(s), 0 miss(es), 0 recorded execution(s)" in warm


class TestStats:
    def _report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        main(["fuzz", "figure1", "--trials", "4", "--metrics-out", str(out)])
        capsys.readouterr()
        return out

    def test_stats_renders_tables(self, tmp_path, capsys):
        out = self._report(tmp_path, capsys)
        assert main(["stats", str(out)]) == 0
        text = capsys.readouterr().out
        assert "command: fuzz" in text
        assert "fuzz.trials" in text
        assert "spans (seconds)" in text

    def test_stats_prometheus(self, tmp_path, capsys):
        out = self._report(tmp_path, capsys)
        assert main(["stats", str(out), "--prometheus"]) == 0
        text = capsys.readouterr().out
        for key in REQUIRED_COUNTERS:
            assert "repro_" + key.replace(".", "_") in text

    def test_stats_rejects_missing_file(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_stats_rejects_invalid_report(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"kind": "other"}')
        assert main(["stats", str(bad)]) == 2
        assert "invalid run report" in capsys.readouterr().err
