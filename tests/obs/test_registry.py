"""Registry semantics: counters, gauges, histograms, spans, merge laws."""

import pickle

import pytest

from repro.obs import (
    STEP_BUCKETS,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
    SpanData,
    collecting,
    get_registry,
    maybe_registry,
)
from repro.obs import span as module_span


class TestCounters:
    def test_inc_creates_at_zero(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counter("a") == 5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter("nope") == 0


class TestGauges:
    def test_gauge_max_keeps_high_water(self):
        registry = MetricsRegistry()
        registry.gauge_max("depth", 3)
        registry.gauge_max("depth", 1)
        assert registry.gauge("depth") == 3
        registry.gauge_max("depth", 7)
        assert registry.gauge("depth") == 7

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge("nope") is None


class TestHistograms:
    def test_observe_buckets_and_mean(self):
        registry = MetricsRegistry()
        for value in (5, 50, 50, 5_000_000):
            registry.observe("steps", value)
        h = registry.snapshot().histograms["steps"]
        assert h.bounds == STEP_BUCKETS
        assert h.counts[0] == 1  # <= 10
        assert h.counts[1] == 2  # <= 100
        assert h.counts[-1] == 1  # overflow
        assert h.count == 4
        assert h.total == 5 + 50 + 50 + 5_000_000

    def test_boundary_value_lands_in_its_bucket(self):
        h = HistogramData.empty((10.0, 100.0))
        h.observe(10.0)
        assert h.counts == [1, 0, 0]

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            HistogramData.empty((10.0, 10.0))
        with pytest.raises(ValueError):
            HistogramData.empty((100.0, 10.0))

    def test_merge_requires_equal_bounds(self):
        a = HistogramData.empty((1.0, 2.0))
        b = HistogramData.empty((1.0, 3.0))
        with pytest.raises(ValueError):
            a.add(b)


class TestSpans:
    def test_span_aggregates_min_max(self):
        data = SpanData()
        for seconds in (0.2, 0.1, 0.4):
            data.observe(seconds)
        assert data.count == 3
        assert data.min_s == pytest.approx(0.1)
        assert data.max_s == pytest.approx(0.4)
        assert data.total_s == pytest.approx(0.7)

    def test_registry_span_times_block(self):
        registry = MetricsRegistry()
        with registry.span("work"):
            pass
        data = registry.snapshot().spans["work"]
        assert data.count == 1
        assert data.total_s >= 0.0

    def test_span_records_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("work"):
                raise RuntimeError("boom")
        assert registry.snapshot().spans["work"].count == 1


class TestDisabled:
    def test_disabled_registry_is_a_noop(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.gauge_max("g", 1)
        registry.observe("h", 1)
        registry.observe_span("s", 1.0)
        with registry.span("s2"):
            pass
        snapshot = registry.snapshot()
        assert snapshot.counters == {}
        assert snapshot.gauges == {}
        assert snapshot.histograms == {}
        assert snapshot.spans == {}

    def test_default_active_registry_is_disabled(self):
        assert maybe_registry() is None
        assert not get_registry().enabled

    def test_collecting_swaps_and_restores(self):
        assert maybe_registry() is None
        with collecting() as registry:
            assert maybe_registry() is registry
            registry.inc("x")
        assert maybe_registry() is None

    def test_collecting_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert maybe_registry() is None

    def test_module_span_noop_when_disabled(self):
        with module_span("anything"):
            pass
        assert maybe_registry() is None


def _snap(counters=None, gauges=None, observations=(), spans=()):
    registry = MetricsRegistry()
    for name, value in (counters or {}).items():
        registry.inc(name, value)
    for name, value in (gauges or {}).items():
        registry.gauge_max(name, value)
    for name, value in observations:
        registry.observe(name, value)
    for name, seconds in spans:
        registry.observe_span(name, seconds)
    return registry.snapshot()


class TestSnapshotMerge:
    def test_counters_add_gauges_max(self):
        a = _snap(counters={"c": 2}, gauges={"g": 5})
        b = _snap(counters={"c": 3, "d": 1}, gauges={"g": 2, "h": 9})
        merged = a.merged(b)
        assert merged.counters == {"c": 5, "d": 1}
        assert merged.gauges == {"g": 5, "h": 9}

    def test_merge_does_not_mutate_inputs(self):
        a = _snap(counters={"c": 2})
        b = _snap(counters={"c": 3})
        a.merged(b)
        assert a.counters == {"c": 2}
        assert b.counters == {"c": 3}

    def test_merge_associative_and_commutative(self):
        snaps = [
            _snap(
                counters={"c": i, f"only{i}": 1},
                gauges={"g": float(i)},
                observations=[("h", 10.0 * i)],
                spans=[("s", 0.1 * (i + 1))],
            )
            for i in range(1, 4)
        ]
        a, b, c = snaps
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        swapped = c.merged(a).merged(b)
        for other in (right, swapped):
            assert left.counters == other.counters
            assert left.gauges == other.gauges
            assert left.histograms == other.histograms
            # span count/min/max are order-independent exactly; totals
            # only up to float-summation rounding
            for name, mine in left.spans.items():
                theirs = other.spans[name]
                assert (mine.count, mine.min_s, mine.max_s) == (
                    theirs.count, theirs.min_s, theirs.max_s,
                )
                assert mine.total_s == pytest.approx(theirs.total_s)

    def test_merge_with_empty_is_identity(self):
        a = _snap(counters={"c": 2}, observations=[("h", 5.0)])
        empty = MetricsSnapshot()
        assert a.merged(empty).counters == a.counters
        assert empty.merged(a).counters == a.counters

    def test_snapshot_pickles(self):
        a = _snap(
            counters={"c": 2},
            gauges={"g": 1.0},
            observations=[("h", 5.0)],
            spans=[("s", 0.25)],
        )
        b = pickle.loads(pickle.dumps(a))
        assert b.counters == a.counters
        assert b.histograms == a.histograms
        assert b.spans == a.spans

    def test_jsonable_round_trip(self):
        a = _snap(
            counters={"c": 2},
            gauges={"g": 1.5},
            observations=[("h", 5.0)],
            spans=[("s", 0.25)],
        )
        b = MetricsSnapshot.from_jsonable(a.to_jsonable())
        assert b == a


class TestRegistryMerge:
    def test_merge_snapshot_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("c", 1)
        registry.merge_snapshot(_snap(counters={"c": 4}, gauges={"g": 2.0}))
        assert registry.counter("c") == 5
        assert registry.gauge("g") == 2.0

    def test_fold_order_equals_single_merge(self):
        parts = [_snap(counters={"c": i}, observations=[("h", i)]) for i in (1, 2, 3)]
        left = MetricsRegistry()
        for part in parts:
            left.merge_snapshot(part)
        right = MetricsRegistry()
        for part in reversed(parts):
            right.merge_snapshot(part)
        assert left.snapshot() == right.snapshot()
