"""Campaign timeline: identity, merge laws, sections, serial==parallel."""

import json

import pytest

from repro.core.driver import detect_races, fuzz_races, race_directed_test
from repro.obs import (
    DETERMINISTIC_KINDS,
    TIMELINE_KIND,
    TimelineEvent,
    TimelineRecorder,
    TimelineSnapshot,
    build_timeline_document,
    load_timeline,
    maybe_timeline,
    merge_timeline_sections,
    pair_label,
    pair_trajectories,
    recording_timeline,
    snapshot_from_document,
    timeline_section,
    validate_timeline_section,
    write_timeline,
)
from repro.workloads import figure1, get


def _event(kind="trial", key=("w", 1), attrs=None, **display):
    return TimelineEvent(
        kind=kind,
        key=tuple(key),
        attrs=tuple(sorted((attrs or {"n": 1}).items())),
        **display,
    )


def _recorder_with(*events):
    recorder = TimelineRecorder(enabled=True)
    for kind, key, attrs in events:
        recorder.emit(kind, key, attrs)
    return recorder


class TestOffByDefault:
    def test_maybe_timeline_is_none_outside_recording(self):
        assert maybe_timeline() is None

    def test_disabled_recorder_ignores_emit(self):
        recorder = TimelineRecorder(enabled=False)
        recorder.emit("trial", ("w", 1), {"n": 1})
        assert recorder.snapshot().events == ()

    def test_recording_timeline_activates_and_restores(self):
        with recording_timeline() as recorder:
            assert maybe_timeline() is recorder
            recorder.emit("trial", ("w", 1), {"n": 1})
        assert maybe_timeline() is None
        assert len(recorder.snapshot().events) == 1


class TestIdentity:
    def test_display_fields_excluded_from_identity(self):
        bare = _event(wall_s=0.0, dur_s=0.0, track="")
        dressed = _event(wall_s=123.0, dur_s=4.5, track="p99")
        assert bare.identity == dressed.identity

    def test_attrs_order_is_canonical(self):
        recorder = TimelineRecorder(enabled=True)
        recorder.emit("trial", ("w", 1), {"b": 2, "a": 1})
        recorder.emit("trial", ("w", 1), {"a": 1, "b": 2})
        assert len(recorder.snapshot().events) == 1

    def test_distinct_keys_are_distinct_events(self):
        recorder = _recorder_with(
            ("trial", ("w", 1), {"n": 1}), ("trial", ("w", 2), {"n": 1})
        )
        assert len(recorder.snapshot().events) == 2


class TestMergeLaws:
    def _snapshots(self):
        a = _recorder_with(("trial", ("w", 1), {"n": 1})).snapshot()
        b = _recorder_with(
            ("trial", ("w", 1), {"n": 1}), ("trial", ("w", 2), {"n": 2})
        ).snapshot()
        c = _recorder_with(("chunk", ("p", 0), {"count": 5})).snapshot()
        return a, b, c

    def test_merge_dedups_by_identity(self):
        a, b, _ = self._snapshots()
        assert len(a.merged(b).events) == 2

    def test_merge_is_commutative(self):
        a, b, c = self._snapshots()
        for x, y in ((a, b), (a, c), (b, c)):
            assert [e.identity for e in x.merged(y).events] == [
                e.identity for e in y.merged(x).events
            ]

    def test_merge_is_associative(self):
        a, b, c = self._snapshots()
        left = a.merged(b).merged(c)
        right = a.merged(b.merged(c))
        assert [e.identity for e in left.events] == [
            e.identity for e in right.events
        ]

    def test_any_fold_order_agrees(self):
        a, b, c = self._snapshots()
        orders = [(a, b, c), (c, a, b), (b, c, a)]
        folded = []
        for first, second, third in orders:
            folded.append(
                [e.identity for e in first.merged(second).merged(third).events]
            )
        assert folded[0] == folded[1] == folded[2]


class TestRingBudget:
    def test_budget_truncates_and_counts_dropped(self):
        recorder = TimelineRecorder(enabled=True, budget=4)
        for index in range(10):
            recorder.emit("trial", ("w", index), {"n": index})
        snapshot = recorder.snapshot()
        assert len(snapshot.events) == 4
        assert snapshot.dropped == 6

    def test_truncation_keeps_smallest_identities(self):
        # Keeping the N smallest identities (not the N most recent) is
        # what makes truncation independent of arrival order.
        forward = TimelineRecorder(enabled=True, budget=3)
        backward = TimelineRecorder(enabled=True, budget=3)
        for index in range(8):
            forward.emit("trial", ("w", index), {})
        for index in reversed(range(8)):
            backward.emit("trial", ("w", index), {})
        assert [e.identity for e in forward.snapshot().events] == [
            e.identity for e in backward.snapshot().events
        ]

    def test_compaction_bounds_the_raw_list(self):
        recorder = TimelineRecorder(enabled=True, budget=8)
        for index in range(1000):
            recorder.emit("trial", ("w", index % 4), {})
        assert len(recorder._events) <= 2 * recorder.budget + 1


class TestSerialization:
    def test_event_round_trip(self):
        event = _event(wall_s=5.0, dur_s=0.25, track="p7")
        assert TimelineEvent.from_jsonable(event.to_jsonable()) == event

    def test_snapshot_round_trip(self):
        snapshot = _recorder_with(
            ("trial", ("w", 1), {"n": 1}), ("chunk", ("p", 0), {"count": 2})
        ).snapshot()
        restored = TimelineSnapshot.from_jsonable(snapshot.to_jsonable())
        assert restored.events == snapshot.events

    def test_document_round_trip(self, tmp_path):
        snapshot = _recorder_with(("trial", ("w", 1), {"n": 1})).snapshot()
        path = tmp_path / "timeline.json"
        written = write_timeline(
            path, snapshot, command="fuzz", workload="figure1"
        )
        loaded = load_timeline(path)
        assert loaded == written
        assert loaded["kind"] == TIMELINE_KIND
        restored = snapshot_from_document(loaded)
        assert restored.events == snapshot.events

    def test_document_is_json_serializable(self):
        snapshot = _recorder_with(("trial", ("w", 1), {"n": 1})).snapshot()
        json.dumps(build_timeline_document(snapshot, command="fuzz"))

    def test_section_events_rebuild_as_snapshot(self):
        snapshot = _recorder_with(("trial", ("w", 1), {"n": 1})).snapshot()
        section = timeline_section(snapshot)
        restored = snapshot_from_document(section)
        assert [e.identity for e in restored.events] == [
            e.identity for e in snapshot.events
        ]


class TestSection:
    def test_only_deterministic_kinds_enter_the_section(self):
        recorder = _recorder_with(
            ("trial", ("w", 1), {"n": 1}),
            ("store", ("w", 1, "hit"), {}),
            ("health", (0, "degraded"), {"reason": "x"}),
            ("task.retry", ("fuzz", 0, 1), {"kind": "crash"}),
        )
        section = timeline_section(recorder.snapshot())
        kinds = {entry[0] for entry in section["events"]}
        assert kinds == {"trial"}
        assert kinds <= DETERMINISTIC_KINDS

    def test_section_validates(self):
        section = timeline_section(
            _recorder_with(("trial", ("w", 1), {"n": 1})).snapshot()
        )
        assert validate_timeline_section(section) == []

    def test_validation_rejects_bad_shapes(self):
        assert validate_timeline_section([]) != []
        assert validate_timeline_section({"version": 0}) != []
        assert validate_timeline_section(
            {"version": 1, "budget": 8, "dropped": 0, "events": [["k"]]}
        ) != []
        assert validate_timeline_section(
            {"version": 1, "budget": -1, "dropped": 0, "events": []}
        ) != []

    def test_section_merge_dedups_and_is_none_tolerant(self):
        a = timeline_section(
            _recorder_with(("trial", ("w", 1), {"n": 1})).snapshot()
        )
        b = timeline_section(
            _recorder_with(
                ("trial", ("w", 1), {"n": 1}), ("trial", ("w", 2), {"n": 2})
            ).snapshot()
        )
        merged = merge_timeline_sections(a, b)
        assert len(merged["events"]) == 2
        assert merge_timeline_sections(a, None) == a
        assert merge_timeline_sections(None, b) == b
        assert merge_timeline_sections(None, None) is None


class TestPairLabel:
    def test_pair_label_uses_sites(self):
        assert pair_label(figure1.REAL_PAIR) == (
            f"{figure1.REAL_PAIR.first.site}|{figure1.REAL_PAIR.second.site}"
        )


def _campaign_section(jobs, *, schedule=None, trials=6):
    program = get("figure1").build()
    with recording_timeline() as recorder:
        report = detect_races(
            program, seeds=range(2), max_steps=20_000, jobs=jobs
        )
        fuzz_races(
            program,
            report.pairs,
            trials=trials,
            chunk_size=2,
            max_steps=20_000,
            schedule=schedule,
            jobs=jobs,
        )
    return timeline_section(recorder.snapshot())


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("schedule", [None, "adaptive"])
    def test_serial_equals_jobs_2(self, schedule):
        assert _campaign_section(1, schedule=schedule) == _campaign_section(
            2, schedule=schedule
        )

    def test_full_pipeline_serial_equals_jobs_2(self):
        def section(jobs):
            with recording_timeline() as recorder:
                race_directed_test(
                    get("figure1").build(),
                    phase1_seeds=range(2),
                    trials=6,
                    chunk_size=2,
                    max_steps=20_000,
                    schedule="adaptive",
                    jobs=jobs,
                )
            return timeline_section(recorder.snapshot())

        assert section(1) == section(2)


class TestTrajectories:
    def test_adaptive_campaign_builds_trajectories(self):
        section = _campaign_section(1, schedule="adaptive")
        label = pair_label(figure1.REAL_PAIR)
        assert label in section["pairs"]
        info = section["pairs"][label]
        trajectory = info["trajectory"]
        assert trajectory[0][1:] == info["prior"]
        # alpha + beta grows by exactly the trials folded in so far.
        for cum_trials, alpha, beta in trajectory:
            assert alpha + beta == pytest.approx(
                sum(info["prior"]) + cum_trials
            )

    def test_fixed_campaign_falls_back_to_chunk_events(self):
        section = _campaign_section(1, schedule=None)
        info = section["pairs"][pair_label(figure1.REAL_PAIR)]
        assert info["trials"] == 6
        assert info["trajectory"][-1][0] == 6

    def test_trajectories_from_raw_events(self):
        events = (
            _event("pair.bind", (0,), {"pair": "a|b", "alpha": 1.0, "beta": 1.0}),
            _event("schedule.posterior", (0, 0), {"trials": 2, "created": 1}),
            _event("schedule.posterior", (0, 2), {"trials": 2, "created": 0}),
        )
        pairs = pair_trajectories(events)
        assert pairs["a|b"]["trajectory"] == [
            [0, 1.0, 1.0],
            [2, 2.0, 2.0],
            [4, 2.0, 4.0],
        ]


class TestWorkerShipping:
    def test_worker_events_carry_worker_tracks(self):
        # With a pool, chunk events are recorded in the worker process and
        # shipped home on the MeteredResult — their track names the worker
        # pid, which must differ from the parent's.
        import os

        with recording_timeline() as recorder:
            fuzz_races(
                get("figure1").build(),
                [figure1.REAL_PAIR],
                trials=4,
                chunk_size=2,
                max_steps=20_000,
                jobs=2,
            )
        tracks = {
            e.track for e in recorder.snapshot().events if e.kind == "chunk"
        }
        assert tracks and f"p{os.getpid()}" not in tracks
