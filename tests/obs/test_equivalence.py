"""Serial == parallel for metrics, exactly as for campaign results.

Workload counters (``interp.*``, ``fuzz.*``, ``trace.*``) must be
identical between a serial run and a process-pool run on the same seeds:
workers collect into their own registries and the supervisor folds
accepted snapshots deterministically.  ``supervisor.*`` counters compare
between supervised serial and supervised parallel (an unsupervised serial
run has no supervisor), and wall-clock aggregates (spans, ``*_wall_s``
histograms) are machine-dependent and excluded.
"""

import pytest

from repro.core import detect_races, fuzz_races
from repro.obs import collecting
from repro.workloads import get

WORKLOADS = ["figure1", "philosophers"]

#: histograms whose values are wall-clock seconds (not schedule-determined).
TIMING_HISTOGRAMS = ("fuzz.trial_wall_s",)


def _workload_counters(snapshot):
    return {
        name: value
        for name, value in snapshot.counters.items()
        if name.split(".", 1)[0] in ("interp", "fuzz", "trace")
    }


def _campaign_snapshot(name, *, jobs, supervised=False, trials=6):
    spec = get(name)
    kwargs = {"retries": 1} if supervised else {}
    with collecting() as registry:
        phase1 = detect_races(
            spec.build(), seeds=spec.phase1_seeds, max_steps=spec.max_steps
        )
        fuzz_races(
            spec.build(),
            phase1.pairs,
            trials=trials,
            max_steps=spec.max_steps,
            jobs=jobs,
            chunk_size=2,
            **kwargs,
        )
    return registry.snapshot()


@pytest.mark.parametrize("workload", WORKLOADS)
class TestSerialParallelEquivalence:
    def test_workload_counters_equal(self, workload):
        serial = _campaign_snapshot(workload, jobs=1)
        parallel = _campaign_snapshot(workload, jobs=2)
        assert _workload_counters(serial) == _workload_counters(parallel)

    def test_gauges_equal(self, workload):
        serial = _campaign_snapshot(workload, jobs=1)
        parallel = _campaign_snapshot(workload, jobs=2)
        assert serial.gauges == parallel.gauges

    def test_schedule_histograms_equal(self, workload):
        serial = _campaign_snapshot(workload, jobs=1)
        parallel = _campaign_snapshot(workload, jobs=2)
        for name, histogram in serial.histograms.items():
            if name in TIMING_HISTOGRAMS:
                # bucket boundaries depend on wall clock; only the
                # observation count is schedule-determined.
                assert parallel.histograms[name].count == histogram.count
            else:
                assert parallel.histograms[name] == histogram

    def test_supervisor_counters_equal_when_both_supervised(self, workload):
        serial = _campaign_snapshot(workload, jobs=1, supervised=True)
        parallel = _campaign_snapshot(workload, jobs=2, supervised=True)
        supervisor = lambda s: {  # noqa: E731
            name: value
            for name, value in s.counters.items()
            if name.startswith("supervisor.")
        }
        assert supervisor(serial) == supervisor(parallel)
        assert _workload_counters(serial) == _workload_counters(parallel)


class TestTable1Metrics:
    def test_rows_carry_snapshots_and_parent_merges(self):
        from repro.harness.table1 import build_table
        from repro.workloads.base import get as get_spec

        specs = [get_spec("figure1")]
        with collecting() as registry:
            rows = build_table(
                specs, jobs=1, trials=4, baseline_runs=5, timing_runs=1
            )
        assert rows[0].metrics is not None
        assert rows[0].metrics.counters["fuzz.trials"] > 0
        # the parent registry absorbed the row's snapshot
        assert (
            registry.counter("fuzz.trials")
            == rows[0].metrics.counters["fuzz.trials"]
        )

    def test_serial_equals_parallel_table(self):
        from repro.harness.table1 import build_table
        from repro.workloads.base import get as get_spec

        specs = [get_spec("figure1"), get_spec("vector")]
        kwargs = {"trials": 4, "baseline_runs": 5, "timing_runs": 1}
        with collecting() as serial_registry:
            build_table(list(specs), jobs=1, **kwargs)
        with collecting() as parallel_registry:
            build_table(list(specs), jobs=2, **kwargs)
        assert _workload_counters(
            serial_registry.snapshot()
        ) == _workload_counters(parallel_registry.snapshot())
