"""Progress updates and the throttled printer."""

import io

import pytest

from repro.obs import ProgressPrinter, ProgressUpdate


class TestProgressUpdate:
    def test_render_includes_counts_and_confirms(self):
        update = ProgressUpdate(
            phase="fuzz", done=12, total=40, confirms=3, elapsed_s=4.2
        )
        text = update.render()
        assert "[fuzz] 12/40 (30%)" in text
        assert "3 confirmed" in text
        assert "4.2s elapsed" in text
        assert "eta" in text

    def test_eta_scales_linearly(self):
        update = ProgressUpdate(phase="fuzz", done=10, total=40, elapsed_s=5.0)
        assert update.eta_s == pytest.approx(15.0)

    def test_eta_undefined_before_first_settle(self):
        assert ProgressUpdate(phase="fuzz", done=0, total=40).eta_s is None

    def test_final_omits_eta(self):
        update = ProgressUpdate(phase="fuzz", done=40, total=40, elapsed_s=8.0)
        assert update.final
        assert "eta" not in update.render()

    def test_eta_uses_remaining_scheduled_work_when_known(self):
        # An adaptive campaign early-stops pairs: 30 chunks were notionally
        # possible but only 5 remain scheduled.  ETA covers the 5.
        update = ProgressUpdate(
            phase="fuzz", done=10, total=40, elapsed_s=5.0, remaining=5
        )
        assert update.eta_s == pytest.approx(2.5)

    def test_final_when_nothing_remains_despite_total(self):
        # Early exit: done < total but the scheduler has retired the rest.
        update = ProgressUpdate(
            phase="fuzz", done=10, total=40, elapsed_s=5.0, remaining=0
        )
        assert update.final

    def test_not_final_while_work_remains(self):
        update = ProgressUpdate(
            phase="fuzz", done=40, total=40, elapsed_s=5.0, remaining=5
        )
        assert not update.final

    def test_confirms_omitted_when_none(self):
        text = ProgressUpdate(phase="detect", done=1, total=2).render()
        assert "confirmed" not in text

    def test_zero_total_renders(self):
        assert "100%" in ProgressUpdate(phase="fuzz", done=0, total=0).render()

    def test_healthy_state_stays_off_the_line(self):
        assert "health" not in ProgressUpdate(phase="fuzz", done=1, total=2).render()

    def test_degraded_state_is_rendered(self):
        update = ProgressUpdate(phase="fuzz", done=1, total=2, health="degraded")
        assert "health=degraded" in update.render()


class TestProgressPrinter:
    def _update(self, done, total=10):
        return ProgressUpdate(phase="fuzz", done=done, total=total)

    def test_throttles_to_interval(self):
        clock_now = [0.0]
        stream = io.StringIO()
        printer = ProgressPrinter(
            stream, interval=1.0, clock=lambda: clock_now[0]
        )
        printer(self._update(1))  # first one prints
        printer(self._update(2))  # throttled: same instant
        clock_now[0] = 0.5
        printer(self._update(3))  # throttled: under interval
        clock_now[0] = 1.5
        printer(self._update(4))  # interval elapsed
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "1/10" in lines[0]
        assert "4/10" in lines[1]

    def test_final_update_always_prints(self):
        stream = io.StringIO()
        printer = ProgressPrinter(stream, interval=100.0, clock=lambda: 0.0)
        printer(self._update(1))
        printer(self._update(10))  # final despite throttle window
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "10/10" in lines[1]
