"""`repro dash` HTML rendering and Chrome trace-event export."""

import json

import pytest

from repro.core.driver import race_directed_test
from repro.obs import (
    MetricsRegistry,
    build_run_report,
    build_timeline_document,
    chrome_trace,
    collecting,
    recording_timeline,
    render_dash,
    write_chrome_trace,
    write_dash,
)
from repro.obs.traceexport import PAIR_PID, WORKER_PID
from repro.workloads import figure1, get


def _campaign():
    """One recorded figure1 campaign: (timeline snapshot, v3 report)."""
    registry = MetricsRegistry(enabled=True)
    with collecting(registry), recording_timeline() as recorder:
        race_directed_test(
            get("figure1").build(),
            phase1_seeds=range(2),
            trials=4,
            chunk_size=2,
            max_steps=20_000,
            schedule="adaptive",
        )
    snapshot = recorder.snapshot()
    report = build_run_report(
        registry.snapshot(), command="fuzz", workload="figure1", timeline=snapshot
    )
    return snapshot, report


@pytest.fixture(scope="module")
def campaign():
    return _campaign()


def _assert_standalone_html(html):
    assert html.startswith("<!DOCTYPE html>")
    assert html.rstrip().endswith("</html>")
    assert "<style>" in html  # inline CSS — no external fetches
    assert "http://" not in html and "https://" not in html


class TestDash:
    def test_renders_from_v3_report(self, campaign):
        _, report = campaign
        html = render_dash(report)
        _assert_standalone_html(html)
        label = f"{figure1.REAL_PAIR.first.site}|{figure1.REAL_PAIR.second.site}"
        assert label in html
        assert "<svg" in html  # posterior sparkline

    def test_renders_from_timeline_document(self, campaign):
        snapshot, _ = campaign
        document = build_timeline_document(
            snapshot, command="fuzz", workload="figure1"
        )
        html = render_dash(document)
        _assert_standalone_html(html)
        assert "<svg" in html

    def test_write_dash(self, tmp_path, campaign):
        _, report = campaign
        path = tmp_path / "dash.html"
        write_dash(path, report)
        _assert_standalone_html(path.read_text())

    def test_renders_fixed_schedule_timeline(self):
        # Fixed-schedule campaigns record chunk events but no pair.bind,
        # so trajectories carry no bind index — the dash must still sort
        # and render them.
        from repro.core.driver import fuzz_races
        from repro.obs import build_timeline_document, recording_timeline

        with recording_timeline() as recorder:
            fuzz_races(
                get("figure1").build(),
                [figure1.REAL_PAIR],
                trials=4,
                chunk_size=2,
                max_steps=20_000,
            )
        document = build_timeline_document(recorder.snapshot(), command="fuzz")
        html = render_dash(document)
        _assert_standalone_html(html)
        assert "<svg" in html

    def test_renders_report_without_timeline_section(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("fuzz.trials", 3)
        report = build_run_report(registry.snapshot(), command="fuzz")
        _assert_standalone_html(render_dash(report))


class TestChromeTrace:
    def test_trace_shape(self, campaign):
        snapshot, _ = campaign
        trace = chrome_trace(snapshot)
        events = trace["traceEvents"]
        assert isinstance(events, list) and events
        for event in events:
            assert set(event) >= {"ph", "pid", "tid"}
            assert event["ph"] in {"M", "X", "i"}
            if event["ph"] != "M":
                assert isinstance(event["ts"], int) and event["ts"] >= 0
            if event["ph"] == "X":
                assert event["dur"] >= 1
        json.dumps(trace)  # Perfetto needs plain JSON

    def test_pair_keyed_kinds_mirrored_onto_pair_process(self, campaign):
        snapshot, _ = campaign
        events = chrome_trace(snapshot)["traceEvents"]
        pids = {e["pid"] for e in events}
        assert {WORKER_PID, PAIR_PID} <= pids
        pair_rows = [
            e for e in events if e["pid"] == PAIR_PID and e["ph"] != "M"
        ]
        assert pair_rows  # chunk/trial events appear on the pair track

    def test_accepts_document_and_section(self, campaign):
        snapshot, report = campaign
        document = build_timeline_document(snapshot, command="fuzz")
        assert chrome_trace(document)["traceEvents"]
        assert chrome_trace(report["timeline"])["traceEvents"]

    def test_write_chrome_trace(self, tmp_path, campaign):
        snapshot, _ = campaign
        path = tmp_path / "trace.json"
        write_chrome_trace(path, snapshot)
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded["displayTimeUnit"] == "ms"
