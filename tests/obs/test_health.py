"""The HealthController state machine: escalation, policy, one-way-ness."""

import pytest

from repro.obs import (
    CRITICAL,
    DEGRADED,
    HEALTH_STATES,
    HEALTHY,
    STATE_RANK,
    HealthController,
    HealthTransition,
    collecting,
)


class TestEscalation:
    def test_starts_healthy_with_full_service(self):
        health = HealthController()
        assert health.state == HEALTHY
        assert health.trace_recording_enabled
        assert health.recommended_jobs(8) == 8
        assert health.describe() == HEALTHY

    def test_one_pool_death_degrades(self):
        health = HealthController()
        health.record_pool_death()
        assert health.state == DEGRADED

    def test_pool_deaths_escalate_to_critical(self):
        health = HealthController(pool_death_critical=3)
        for _ in range(3):
            health.record_pool_death()
        assert health.state == CRITICAL
        # Both transitions recorded, in order.
        assert [t.state for t in health.transitions] == [DEGRADED, CRITICAL]

    def test_memory_failures_degrade_at_threshold(self):
        health = HealthController(memory_degraded=2)
        health.record_memory_failure()
        assert health.state == HEALTHY
        health.record_memory_failure()
        assert health.state == DEGRADED

    def test_single_corrupt_trace_is_routine(self):
        health = HealthController(corrupt_degraded=3)
        health.record_corrupt_trace()
        health.record_corrupt_trace()
        assert health.state == HEALTHY
        health.record_corrupt_trace()
        assert health.state == DEGRADED

    def test_disk_budget_hit_degrades_immediately(self):
        health = HealthController()
        health.record_disk_budget_hit()
        assert health.state == DEGRADED

    def test_machine_is_one_way(self):
        # No signal ever de-escalates: reproducibility beats adaptivity.
        health = HealthController(pool_death_critical=1)
        health.record_pool_death()
        assert health.state == CRITICAL
        health.record_memory_failure()
        health.record_corrupt_trace()
        assert health.state == CRITICAL
        assert len(health.transitions) == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="pool_death_critical"):
            HealthController(pool_death_degraded=5, pool_death_critical=2)

    def test_state_rank_covers_all_states(self):
        assert sorted(STATE_RANK) == sorted(HEALTH_STATES)
        assert STATE_RANK[HEALTHY] < STATE_RANK[DEGRADED] < STATE_RANK[CRITICAL]


class TestPolicy:
    def test_recording_disabled_after_repeated_disk_pressure(self):
        health = HealthController(disk_disable_threshold=3)
        for _ in range(2):
            health.record_disk_budget_hit()
        assert health.trace_recording_enabled  # degraded but still caching
        health.record_disk_budget_hit()
        assert not health.trace_recording_enabled

    def test_recording_disabled_when_critical(self):
        health = HealthController(pool_death_critical=1)
        health.record_pool_death()
        assert not health.trace_recording_enabled

    def test_recommended_jobs_halves_under_pressure(self):
        health = HealthController()
        health.record_pool_death()
        assert health.recommended_jobs(8) == 4
        assert health.recommended_jobs(2) == 1
        assert health.recommended_jobs(1) == 1  # floor

    def test_describe_names_every_transition(self):
        health = HealthController(pool_death_critical=2)
        health.record_pool_death()
        health.record_pool_death()
        described = health.describe()
        assert described.startswith(CRITICAL)
        assert "pool death" in described


class TestObservability:
    def test_transitions_fire_the_callback(self):
        seen: list[HealthTransition] = []
        health = HealthController(on_transition=seen.append)
        health.record_disk_budget_hit()
        health.record_disk_budget_hit()  # same state: no second transition
        assert [t.state for t in seen] == [DEGRADED]
        assert "disk budget" in seen[0].reason
        assert seen[0].describe() == f"-> {DEGRADED}: {seen[0].reason}"

    def test_signals_and_transitions_are_metered(self):
        with collecting() as registry:
            health = HealthController(pool_death_critical=2, memory_degraded=1)
            health.record_pool_death()
            health.record_pool_death()
            health.record_memory_failure()
            health.record_disk_budget_hit()
            health.record_corrupt_trace()
        counters = registry.snapshot().counters
        assert counters["health.pool_deaths"] == 2
        assert counters["health.memory_failures"] == 1
        assert counters["health.disk_budget_hits"] == 1
        assert counters["health.corrupt_traces"] == 1
        assert counters["health.transitions"] == 2
        assert counters[f"health.transitions.{DEGRADED}"] == 1
        assert counters[f"health.transitions.{CRITICAL}"] == 1
        assert registry.snapshot().gauges["health.state"] == STATE_RANK[CRITICAL]

    def test_unmetered_controller_works_without_a_registry(self):
        health = HealthController()
        health.record_pool_death()  # must not touch a registry
        assert health.state == DEGRADED
