"""Layer instrumentation: the counters each subsystem is expected to emit."""

import pytest

from repro.core import detect_races, fuzz_races, race_directed_test
from repro.obs import collecting
from repro.trace import TraceStore, analyze_trace, detect_key
from repro.workloads import figure1, get


class TestInterpreterCounters:
    def test_execution_counters(self):
        with collecting() as registry:
            detect_races(figure1.build(), seeds=range(2), max_steps=20_000)
        snapshot = registry.snapshot()
        assert snapshot.counters["interp.executions"] == 2
        assert snapshot.counters["interp.steps"] > 0
        assert snapshot.counters["interp.context_switches"] > 0
        assert snapshot.counters["interp.lock_ops"] > 0
        # per-kind op counters sum to the step total
        kind_total = sum(
            value
            for name, value in snapshot.counters.items()
            if name.startswith("interp.ops.")
        )
        assert kind_total == snapshot.counters["interp.steps"]
        h = snapshot.histograms["interp.steps_per_execution"]
        assert h.count == 2

    def test_disabled_run_records_nothing(self):
        report = detect_races(figure1.build(), seeds=range(2), max_steps=20_000)
        assert report.pairs  # campaign itself unaffected
        with collecting() as registry:
            pass
        assert registry.snapshot().counters == {}


class TestFuzzCounters:
    def test_postponing_counters(self):
        with collecting() as registry:
            phase1 = detect_races(
                figure1.build(), seeds=range(3), max_steps=20_000
            )
            verdicts = fuzz_races(
                figure1.build(), phase1.pairs, trials=5, max_steps=20_000
            )
        snapshot = registry.snapshot()
        trials = sum(v.trials for v in verdicts.values())
        assert snapshot.counters["fuzz.trials"] == trials
        assert snapshot.counters["fuzz.races_created"] == sum(
            v.times_created for v in verdicts.values()
        )
        # the real pair postpones at its racing statements every trial
        assert snapshot.counters["fuzz.postpones"] > 0
        assert snapshot.counters["fuzz.coin_flips"] > 0
        assert snapshot.gauges["fuzz.postponed_high_water"] >= 1
        assert snapshot.histograms["fuzz.trial_wall_s"].count == trials

    def test_campaign_spans_present(self):
        with collecting() as registry:
            race_directed_test(
                figure1.build(),
                trials=4,
                phase1_seeds=range(3),
                max_steps=20_000,
            )
        spans = registry.snapshot().spans
        assert "phase1.detect" in spans
        assert "phase2.fuzz" in spans
        pair_spans = [name for name in spans if name.startswith("pair.")]
        assert len(pair_spans) == 2  # figure1's two potential pairs
        for name in pair_spans:
            assert spans[name].count >= 1


class TestSupervisorCounters:
    def test_supervised_run_counts_tasks(self):
        spec = get("figure1")
        with collecting() as registry:
            phase1 = detect_races(
                spec.build(), seeds=spec.phase1_seeds, max_steps=spec.max_steps
            )
            fuzz_races(
                spec.build(),
                phase1.pairs,
                trials=4,
                max_steps=spec.max_steps,
                jobs=1,
                retries=1,
                chunk_size=2,
            )
        counters = registry.snapshot().counters
        assert counters["supervisor.batches"] >= 1
        assert counters["supervisor.tasks"] >= len(phase1.pairs)
        assert counters["supervisor.retries"] == 0
        assert counters["supervisor.quarantines"] == 0

    def test_retries_counted_under_faults(self):
        from repro.core import parse_fault_plan

        spec = get("figure1")
        with collecting() as registry:
            race_directed_test(
                spec.build(),
                trials=4,
                phase1_seeds=spec.phase1_seeds,
                max_steps=spec.max_steps,
                retries=2,
                faults=parse_fault_plan("fuzz:0:crash"),
            )
        counters = registry.snapshot().counters
        assert counters["supervisor.retries"] >= 1
        assert counters["supervisor.failed_attempts.crash"] >= 1


class TestTraceCounters:
    def test_store_hits_misses_and_bytes(self, tmp_path):
        spec = get("figure1")
        store = TraceStore(tmp_path)
        key = detect_key(spec.name, 0, max_steps=spec.max_steps)
        with collecting() as registry:
            store.ensure(key, spec.build())  # miss: records
            store.ensure(key, spec.build())  # hit
        counters = registry.snapshot().counters
        assert counters["trace.store_misses"] == 1
        assert counters["trace.store_hits"] == 1
        assert counters["trace.store_executions"] == 1
        assert counters["trace.records"] == 1
        assert counters["trace.store_bytes"] > 0

    def test_analyze_counts_replays(self, tmp_path):
        spec = get("figure1")
        store = TraceStore(tmp_path)
        key = detect_key(spec.name, 0, max_steps=spec.max_steps)
        path = store.ensure(key, spec.build())
        with collecting() as registry:
            analyze_trace(path, ("hybrid", "lockset"))
        counters = registry.snapshot().counters
        assert counters["trace.replays"] == 1
        assert counters["trace.analyses"] == 2

    def test_metrics_match_store_stats(self, tmp_path):
        """The registry's trace counters agree with StoreStats."""
        spec = get("figure1")
        store = TraceStore(tmp_path)
        with collecting() as registry:
            for seed in range(3):
                key = detect_key(spec.name, seed, max_steps=spec.max_steps)
                store.ensure(key, spec.build())
            store.ensure(
                detect_key(spec.name, 0, max_steps=spec.max_steps), spec.build()
            )
        counters = registry.snapshot().counters
        assert counters["trace.store_hits"] == store.stats.hits == 1
        assert counters["trace.store_misses"] == store.stats.misses == 3
        assert counters["trace.store_executions"] == store.stats.executions == 3


class TestResultsUnchanged:
    @pytest.mark.parametrize("collect", [False, True])
    def test_campaign_verdicts_identical_with_metrics(self, collect):
        def campaign():
            return race_directed_test(
                figure1.build(),
                trials=6,
                phase1_seeds=range(3),
                max_steps=20_000,
            )

        baseline = campaign()
        if collect:
            with collecting():
                observed = campaign()
        else:
            observed = campaign()
        assert observed.real_pairs == baseline.real_pairs
        assert {
            p: v.times_created for p, v in observed.verdicts.items()
        } == {p: v.times_created for p, v in baseline.verdicts.items()}
