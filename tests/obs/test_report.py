"""Run reports: schema, validation, renderers, checkpoint merge."""

import json

from repro.obs import (
    REPORT_KIND,
    REPORT_VERSION,
    REQUIRED_COUNTERS,
    REQUIRED_COUNTERS_V1,
    MetricsRegistry,
    TimelineRecorder,
    build_run_report,
    environment_metadata,
    load_run_report,
    render_prometheus,
    render_stats_table,
    snapshot_from_report,
    validate_run_report,
    write_run_report,
)


def _snapshot():
    registry = MetricsRegistry()
    registry.inc("fuzz.trials", 7)
    registry.inc("interp.steps", 100)
    registry.gauge_max("fuzz.postponed_high_water", 2)
    registry.observe("interp.steps_per_execution", 50)
    registry.observe_span("phase2.fuzz", 0.5)
    return registry.snapshot()


def _timeline(*seeds):
    recorder = TimelineRecorder(enabled=True)
    for seed in seeds or (0,):
        recorder.emit("trial", ("figure1", seed), {"created": 1})
    return recorder.snapshot()


class TestBuild:
    def test_report_shape(self):
        report = build_run_report(_snapshot(), command="fuzz", workload="figure1")
        assert report["kind"] == REPORT_KIND
        assert report["version"] == REPORT_VERSION
        assert report["command"] == "fuzz"
        assert report["workload"] == "figure1"
        assert report["counters"]["fuzz.trials"] == 7
        assert report["env"]["python"]

    def test_required_counters_zero_filled(self):
        report = build_run_report(_snapshot(), command="fuzz")
        for key in REQUIRED_COUNTERS:
            assert key in report["counters"]
        assert report["counters"]["supervisor.retries"] == 0

    def test_environment_metadata_keys(self):
        env = environment_metadata()
        for key in ("python", "implementation", "platform", "machine", "cpu_count"):
            assert key in env

    def test_extra_payload(self):
        report = build_run_report(_snapshot(), command="fuzz", extra={"note": "x"})
        assert report["extra"] == {"note": "x"}

    def test_report_is_json_serializable(self):
        report = build_run_report(_snapshot(), command="fuzz")
        json.dumps(report)


class TestValidate:
    def test_valid_report_passes(self):
        report = build_run_report(_snapshot(), command="fuzz")
        assert validate_run_report(report) == []

    def test_rejects_non_object(self):
        assert validate_run_report([1, 2]) != []
        assert validate_run_report("x") != []

    def test_rejects_wrong_kind_and_version(self):
        report = build_run_report(_snapshot(), command="fuzz")
        bad = dict(report, kind="something-else")
        assert any("kind" in e for e in validate_run_report(bad))
        future = dict(report, version=REPORT_VERSION + 1)
        assert any("newer" in e for e in validate_run_report(future))

    def test_rejects_missing_required_counter(self):
        report = build_run_report(_snapshot(), command="fuzz")
        counters = dict(report["counters"])
        del counters["fuzz.trials"]
        errors = validate_run_report(dict(report, counters=counters))
        assert any("fuzz.trials" in e for e in errors)

    def test_rejects_negative_counter(self):
        report = build_run_report(_snapshot(), command="fuzz")
        counters = dict(report["counters"], **{"fuzz.trials": -1})
        errors = validate_run_report(dict(report, counters=counters))
        assert any("non-negative" in e for e in errors)

    def test_v2_requires_schedule_counters(self):
        report = build_run_report(_snapshot(), command="fuzz")
        assert report["counters"]["schedule.rounds"] == 0
        counters = dict(report["counters"])
        del counters["schedule.rounds"]
        errors = validate_run_report(dict(report, counters=counters))
        assert any("schedule.rounds" in e for e in errors)

    def test_v1_reports_still_validate_without_schedule_counters(self):
        # Reports written before the scheduling layer existed carry
        # version 1 and no schedule.* keys; they must keep passing.
        report = build_run_report(_snapshot(), command="fuzz")
        v1_counters = {
            key: value
            for key, value in report["counters"].items()
            if not key.startswith("schedule.")
        }
        old = dict(report, version=1, counters=v1_counters)
        assert validate_run_report(old) == []
        assert set(REQUIRED_COUNTERS_V1) <= set(v1_counters)

    def test_v2_reports_still_validate_under_v3(self):
        # Reports written before the timeline layer existed carry
        # version 2 and no timeline section; they must keep passing.
        report = build_run_report(_snapshot(), command="fuzz")
        old = dict(report, version=2)
        old.pop("timeline", None)
        assert validate_run_report(old) == []

    def test_v3_report_with_timeline_section_passes(self):
        report = build_run_report(
            _snapshot(), command="fuzz", timeline=_timeline()
        )
        assert report["version"] == 3
        assert report["timeline"]["events"]
        assert validate_run_report(report) == []

    def test_timeline_on_old_version_rejected(self):
        report = build_run_report(
            _snapshot(), command="fuzz", timeline=_timeline()
        )
        errors = validate_run_report(dict(report, version=2))
        assert any("requires report version >= 3" in e for e in errors)

    def test_malformed_timeline_section_rejected(self):
        report = build_run_report(_snapshot(), command="fuzz")
        assert validate_run_report(dict(report, timeline=[1, 2])) != []
        bad_events = {"version": 1, "budget": 8, "dropped": 0, "events": [["k"]]}
        assert validate_run_report(dict(report, timeline=bad_events)) != []

    def test_rejects_inconsistent_histogram(self):
        report = build_run_report(_snapshot(), command="fuzz")
        h = dict(report["histograms"]["interp.steps_per_execution"])
        h["count"] = h["count"] + 5
        errors = validate_run_report(
            dict(report, histograms={"interp.steps_per_execution": h})
        )
        assert any("sum" in e for e in errors)


class TestWriteLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "report.json"
        written = write_run_report(
            path, _snapshot(), command="fuzz", workload="figure1"
        )
        loaded = load_run_report(path)
        assert loaded == written
        assert validate_run_report(loaded) == []
        assert snapshot_from_report(loaded).counters["fuzz.trials"] == 7

    def test_overwrite_by_default(self, tmp_path):
        path = tmp_path / "report.json"
        write_run_report(path, _snapshot(), command="fuzz")
        write_run_report(path, _snapshot(), command="fuzz")
        assert load_run_report(path)["counters"]["fuzz.trials"] == 7

    def test_merge_existing_accumulates(self, tmp_path):
        path = tmp_path / "report.json"
        write_run_report(path, _snapshot(), command="fuzz")
        write_run_report(path, _snapshot(), command="fuzz", merge_existing=True)
        report = load_run_report(path)
        assert report["counters"]["fuzz.trials"] == 14
        assert report["counters"]["interp.steps"] == 200
        # gauges take the max, not the sum
        assert report["gauges"]["fuzz.postponed_high_water"] == 2
        assert report["spans"]["phase2.fuzz"]["count"] == 2
        assert validate_run_report(report) == []

    def test_merge_existing_ignores_missing_prior(self, tmp_path):
        path = tmp_path / "report.json"
        write_run_report(path, _snapshot(), command="fuzz", merge_existing=True)
        assert load_run_report(path)["counters"]["fuzz.trials"] == 7

    def test_merge_existing_ignores_invalid_prior(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text("{not json")
        write_run_report(path, _snapshot(), command="fuzz", merge_existing=True)
        assert load_run_report(path)["counters"]["fuzz.trials"] == 7

    def test_merge_existing_unions_timeline_sections(self, tmp_path):
        # Checkpoint-resume: two partial writes must land on the same
        # section as one uninterrupted write over all events.
        path = tmp_path / "report.json"
        write_run_report(
            path, _snapshot(), command="fuzz", timeline=_timeline(0, 1)
        )
        write_run_report(
            path,
            _snapshot(),
            command="fuzz",
            merge_existing=True,
            timeline=_timeline(1, 2),
        )
        merged = load_run_report(path)["timeline"]
        assert merged["events"] == build_run_report(
            _snapshot(), command="fuzz", timeline=_timeline(0, 1, 2)
        )["timeline"]["events"]
        assert validate_run_report(load_run_report(path)) == []

    def test_merge_existing_keeps_prior_timeline_when_not_recording(
        self, tmp_path
    ):
        path = tmp_path / "report.json"
        write_run_report(
            path, _snapshot(), command="fuzz", timeline=_timeline(0)
        )
        write_run_report(path, _snapshot(), command="fuzz", merge_existing=True)
        assert len(load_run_report(path)["timeline"]["events"]) == 1


class TestRender:
    def test_prometheus_format(self):
        report = build_run_report(_snapshot(), command="fuzz")
        text = render_prometheus(report)
        assert "# TYPE repro_fuzz_trials counter" in text
        assert "repro_fuzz_trials 7" in text
        assert "repro_fuzz_postponed_high_water 2" in text
        assert 'repro_interp_steps_per_execution_bucket{le="100"} 1' in text
        assert 'repro_interp_steps_per_execution_bucket{le="+Inf"} 1' in text
        assert 'repro_span_seconds_count{span="phase2.fuzz"} 1' in text
        assert text.endswith("\n")

    def test_prometheus_declares_span_series_types(self):
        text = render_prometheus(build_run_report(_snapshot(), command="fuzz"))
        assert "# TYPE repro_span_seconds_count counter" in text
        assert "# TYPE repro_span_seconds_sum counter" in text
        assert "# TYPE repro_span_seconds_max gauge" in text

    def test_prometheus_escapes_span_labels(self):
        registry = MetricsRegistry()
        registry.inc("fuzz.trials", 1)
        registry.observe_span('odd\nspan"with\\stuff', 0.1)
        text = render_prometheus(
            build_run_report(registry.snapshot(), command="fuzz")
        )
        # Prometheus exposition: \n, " and \ must be escaped inside
        # label values — a raw newline would split the sample line.
        assert '{span="odd\\nspan\\"with\\\\stuff"}' in text
        for line in text.splitlines():
            if "odd" in line:
                assert "\n" not in line

    def test_stats_table(self):
        report = build_run_report(_snapshot(), command="fuzz", workload="figure1")
        text = render_stats_table(report)
        assert "command: fuzz" in text
        assert "workload: figure1" in text
        assert "fuzz.trials" in text
        assert "phase2.fuzz" in text
        assert "counters" in text and "spans (seconds)" in text
