"""HashSet and TreeSet semantics and fail-fast iteration."""

import pytest

from repro.jdk import HashSet, TreeSet
from repro.runtime.errors import ConcurrentModificationError, NoSuchElementError

from tests.conftest import run_single


class TestHashSet:
    def test_add_deduplicates(self):
        def body():
            hs = HashSet("s")
            assert (yield from hs.add(1))
            assert not (yield from hs.add(1))
            assert (yield from hs.size()) == 1

        run_single(body)

    def test_contains_and_remove(self):
        def body():
            hs = HashSet("s")
            for value in (1, 2, 3):
                yield from hs.add(value)
            assert (yield from hs.contains(2))
            assert (yield from hs.remove(2))
            assert not (yield from hs.contains(2))
            assert not (yield from hs.remove(2))

        run_single(body)

    def test_collisions_share_bucket_correctly(self):
        def body():
            hs = HashSet("s", capacity=2)  # force collisions
            for value in range(8):
                yield from hs.add(value)
            assert (yield from hs.size()) == 8
            for value in range(8):
                assert (yield from hs.contains(value))
            assert (yield from hs.remove(4))
            assert not (yield from hs.contains(4))
            assert (yield from hs.contains(6))  # same bucket survivor

        run_single(body)

    def test_iterator_sees_every_element_once(self):
        def body():
            hs = HashSet("s", capacity=3)
            for value in range(6):
                yield from hs.add(value)
            seen = yield from hs.to_pylist()
            assert sorted(seen) == list(range(6))

        run_single(body)

    def test_iterator_fails_fast(self):
        def body():
            hs = HashSet("s")
            for value in (1, 2, 3):
                yield from hs.add(value)
            iterator = yield from hs.iterator()
            yield from iterator.next()
            yield from hs.add(99)
            with pytest.raises(ConcurrentModificationError):
                yield from iterator.next()

        run_single(body)

    def test_iterator_remove(self):
        def body():
            hs = HashSet("s")
            for value in (1, 2, 3):
                yield from hs.add(value)
            iterator = yield from hs.iterator()
            while (yield from iterator.has_next()):
                if (yield from iterator.next()) == 2:
                    yield from iterator.remove()
            assert sorted((yield from hs.to_pylist())) == [1, 3]

        run_single(body)

    def test_empty_iterator(self):
        def body():
            hs = HashSet("s")
            iterator = yield from hs.iterator()
            assert not (yield from iterator.has_next())
            with pytest.raises(NoSuchElementError):
                yield from iterator.remove()

        run_single(body)


class TestTreeSet:
    def test_iteration_is_sorted(self):
        def body():
            ts = TreeSet("t")
            for value in (5, 1, 3, 2, 4):
                yield from ts.add(value)
            assert (yield from ts.to_pylist()) == [1, 2, 3, 4, 5]

        run_single(body)

    def test_add_deduplicates(self):
        def body():
            ts = TreeSet("t")
            assert (yield from ts.add(2))
            assert not (yield from ts.add(2))
            assert (yield from ts.size()) == 1

        run_single(body)

    def test_first(self):
        def body():
            ts = TreeSet("t")
            with pytest.raises(NoSuchElementError):
                yield from ts.first()
            yield from ts.add(9)
            yield from ts.add(4)
            assert (yield from ts.first()) == 4

        run_single(body)

    def test_contains_uses_order_for_early_exit(self):
        def body():
            ts = TreeSet("t")
            for value in (1, 5, 9):
                yield from ts.add(value)
            assert (yield from ts.contains(5))
            assert not (yield from ts.contains(4))
            assert not (yield from ts.contains(99))

        run_single(body)

    def test_remove_relinks(self):
        def body():
            ts = TreeSet("t")
            for value in (1, 2, 3):
                yield from ts.add(value)
            assert (yield from ts.remove(2))
            assert (yield from ts.to_pylist()) == [1, 3]
            assert not (yield from ts.remove(2))
            assert not (yield from ts.remove(99))

        run_single(body)

    def test_iterator_fails_fast(self):
        def body():
            ts = TreeSet("t")
            for value in (1, 2, 3):
                yield from ts.add(value)
            iterator = yield from ts.iterator()
            yield from iterator.next()
            yield from ts.remove(3)
            with pytest.raises(ConcurrentModificationError):
                yield from iterator.next()

        run_single(body)

    def test_cross_container_bulk_ops(self):
        def body():
            ts = TreeSet("t")
            hs = HashSet("h")
            for value in (1, 2):
                yield from ts.add(value)
                yield from hs.add(value)
            assert (yield from ts.contains_all(hs))
            yield from hs.add(3)
            assert not (yield from ts.contains_all(hs))
            yield from ts.add_all(hs)
            assert (yield from ts.to_pylist()) == [1, 2, 3]

        run_single(body)
