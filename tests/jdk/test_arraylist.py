"""ArrayList: sequential semantics and fail-fast iterator behaviour."""

import pytest

from repro.jdk import ArrayList
from repro.runtime.errors import (
    ConcurrentModificationError,
    IndexOutOfBoundsError,
    NoSuchElementError,
)

from tests.conftest import run_single


class TestBasics:
    def test_add_get_size(self):
        def body():
            lst = ArrayList("l")
            assert (yield from lst.is_empty())
            yield from lst.add("a")
            yield from lst.add("b")
            assert (yield from lst.size()) == 2
            assert (yield from lst.get(0)) == "a"
            assert (yield from lst.get(1)) == "b"

        run_single(body)

    def test_set_returns_old_value(self):
        def body():
            lst = ArrayList("l")
            yield from lst.add("a")
            old = yield from lst.set(0, "z")
            assert old == "a"
            assert (yield from lst.get(0)) == "z"

        run_single(body)

    def test_index_of_and_contains(self):
        def body():
            lst = ArrayList("l")
            for value in ("a", "b", "a"):
                yield from lst.add(value)
            assert (yield from lst.index_of("a")) == 0
            assert (yield from lst.index_of("b")) == 1
            assert (yield from lst.index_of("zzz")) == -1
            assert (yield from lst.contains("b"))
            assert not (yield from lst.contains("q"))

        run_single(body)

    def test_remove_at_shifts(self):
        def body():
            lst = ArrayList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            removed = yield from lst.remove_at(1)
            assert removed == "b"
            assert (yield from lst.to_pylist()) == ["a", "c"]

        run_single(body)

    def test_remove_by_value(self):
        def body():
            lst = ArrayList("l")
            for value in ("a", "b", "a"):
                yield from lst.add(value)
            assert (yield from lst.remove("a"))  # first occurrence only
            assert (yield from lst.to_pylist()) == ["b", "a"]
            assert not (yield from lst.remove("zzz"))

        run_single(body)

    def test_clear_is_constant_time_reset(self):
        def body():
            lst = ArrayList("l")
            for value in range(5):
                yield from lst.add(value)
            yield from lst.clear()
            assert (yield from lst.is_empty())
            assert (yield from lst.to_pylist()) == []

        run_single(body)

    def test_range_checks(self):
        def body():
            lst = ArrayList("l")
            yield from lst.add("a")
            with pytest.raises(IndexOutOfBoundsError):
                yield from lst.get(1)
            with pytest.raises(IndexOutOfBoundsError):
                yield from lst.get(-1)
            with pytest.raises(IndexOutOfBoundsError):
                yield from lst.remove_at(5)

        run_single(body)


class TestIterator:
    def test_full_walk(self):
        def body():
            lst = ArrayList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            iterator = yield from lst.iterator()
            seen = []
            while (yield from iterator.has_next()):
                seen.append((yield from iterator.next()))
            assert seen == ["a", "b", "c"]

        run_single(body)

    def test_comodification_fails_fast_even_single_threaded(self):
        """Java semantics: mutating the list invalidates live iterators —
        no concurrency needed."""

        def body():
            lst = ArrayList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            iterator = yield from lst.iterator()
            yield from iterator.next()
            yield from lst.add("d")  # bump modCount behind the iterator
            with pytest.raises(ConcurrentModificationError):
                yield from iterator.next()

        run_single(body)

    def test_next_past_end_raises_no_such_element(self):
        def body():
            lst = ArrayList("l")
            yield from lst.add("a")
            iterator = yield from lst.iterator()
            yield from iterator.next()
            with pytest.raises(NoSuchElementError):
                yield from iterator.next()

        run_single(body)

    def test_iterator_remove(self):
        def body():
            lst = ArrayList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            iterator = yield from lst.iterator()
            while (yield from iterator.has_next()):
                value = yield from iterator.next()
                if value == "b":
                    yield from iterator.remove()
            assert (yield from lst.to_pylist()) == ["a", "c"]

        run_single(body)

    def test_iterator_remove_before_next_raises(self):
        def body():
            lst = ArrayList("l")
            yield from lst.add("a")
            iterator = yield from lst.iterator()
            with pytest.raises(NoSuchElementError):
                yield from iterator.remove()

        run_single(body)


class TestBulkOperations:
    def test_contains_all_add_all_remove_all_equals(self):
        def body():
            first, second = ArrayList("f"), ArrayList("s")
            for value in (1, 2, 3):
                yield from first.add(value)
            for value in (2, 3):
                yield from second.add(value)
            assert (yield from first.contains_all(second))
            assert not (yield from second.contains_all(first))
            yield from second.add_all(first)
            assert (yield from second.to_pylist()) == [2, 3, 1, 2, 3]
            yield from first.remove_all(second)
            assert (yield from first.to_pylist()) == []
            other = ArrayList("o")
            assert (yield from first.equals(other))
            yield from other.add(9)
            assert not (yield from first.equals(other))

        run_single(body)
