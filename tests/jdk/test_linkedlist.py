"""LinkedList: node ring semantics and fail-fast iteration."""

import pytest

from repro.jdk import LinkedList
from repro.runtime.errors import (
    ConcurrentModificationError,
    IndexOutOfBoundsError,
    NoSuchElementError,
)

from tests.conftest import run_single


class TestBasics:
    def test_append_and_walk(self):
        def body():
            lst = LinkedList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            assert (yield from lst.size()) == 3
            assert (yield from lst.to_pylist()) == ["a", "b", "c"]

        run_single(body)

    def test_add_first_and_get_first(self):
        def body():
            lst = LinkedList("l")
            yield from lst.add("b")
            yield from lst.add_first("a")
            assert (yield from lst.get_first()) == "a"
            assert (yield from lst.to_pylist()) == ["a", "b"]

        run_single(body)

    def test_remove_first(self):
        def body():
            lst = LinkedList("l")
            for value in ("a", "b"):
                yield from lst.add(value)
            assert (yield from lst.remove_first()) == "a"
            assert (yield from lst.to_pylist()) == ["b"]

        run_single(body)

    def test_empty_accessors_raise(self):
        def body():
            lst = LinkedList("l")
            with pytest.raises(NoSuchElementError):
                yield from lst.get_first()
            with pytest.raises(NoSuchElementError):
                yield from lst.remove_first()

        run_single(body)

    def test_get_by_index(self):
        def body():
            lst = LinkedList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            assert (yield from lst.get(2)) == "c"
            with pytest.raises(IndexOutOfBoundsError):
                yield from lst.get(3)

        run_single(body)

    def test_remove_by_value_unlinks(self):
        def body():
            lst = LinkedList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            assert (yield from lst.remove("b"))
            assert (yield from lst.to_pylist()) == ["a", "c"]
            assert not (yield from lst.remove("zzz"))
            yield from lst.remove("a")
            yield from lst.remove("c")
            assert (yield from lst.is_empty())

        run_single(body)


class TestIterator:
    def test_comodification_fails_fast(self):
        def body():
            lst = LinkedList("l")
            for value in ("a", "b"):
                yield from lst.add(value)
            iterator = yield from lst.iterator()
            yield from iterator.next()
            yield from lst.remove("b")
            with pytest.raises(ConcurrentModificationError):
                yield from iterator.next()

        run_single(body)

    def test_iterator_remove(self):
        def body():
            lst = LinkedList("l")
            for value in ("a", "b", "c"):
                yield from lst.add(value)
            iterator = yield from lst.iterator()
            while (yield from iterator.has_next()):
                if (yield from iterator.next()) == "b":
                    yield from iterator.remove()
            assert (yield from lst.to_pylist()) == ["a", "c"]

        run_single(body)

    def test_next_past_end(self):
        def body():
            lst = LinkedList("l")
            iterator = yield from lst.iterator()
            assert not (yield from iterator.has_next())
            with pytest.raises(NoSuchElementError):
                yield from iterator.next()

        run_single(body)


class TestBulkAndClear:
    def test_clear_via_iterator(self):
        def body():
            lst = LinkedList("l")
            for value in range(4):
                yield from lst.add(value)
            yield from lst.clear()
            assert (yield from lst.is_empty())
            yield from lst.add("fresh")
            assert (yield from lst.to_pylist()) == ["fresh"]

        run_single(body)

    def test_equals_pairwise(self):
        def body():
            first, second = LinkedList("f"), LinkedList("s")
            for value in (1, 2):
                yield from first.add(value)
                yield from second.add(value)
            assert (yield from first.equals(second))
            yield from second.add(3)
            assert not (yield from first.equals(second))

        run_single(body)
