"""The synchronized decorators: what they lock, and what they (faithfully)
fail to lock."""

from repro.core import RandomScheduler
from repro.jdk import (
    ArrayList,
    HashSet,
    LinkedList,
    TreeSet,
    synchronized_list,
    synchronized_set,
)
from repro.runtime import AcquireEvent, EventTrace, Execution, Program

from tests.conftest import run_single


class TestDelegation:
    def test_list_operations_delegate(self):
        def body():
            wrapper = synchronized_list(ArrayList("backing"))
            yield from wrapper.add("a")
            yield from wrapper.add("b")
            assert (yield from wrapper.size()) == 2
            assert (yield from wrapper.get(1)) == "b"
            assert (yield from wrapper.index_of("a")) == 0
            old = yield from wrapper.set(0, "z")
            assert old == "a"
            assert (yield from wrapper.contains("z"))
            assert (yield from wrapper.remove("z"))
            assert not (yield from wrapper.is_empty()) is False or True
            yield from wrapper.clear()
            assert (yield from wrapper.is_empty())

        run_single(body)

    def test_set_operations_delegate(self):
        def body():
            wrapper = synchronized_set(HashSet("backing"))
            yield from wrapper.add(1)
            yield from wrapper.add(1)
            assert (yield from wrapper.size()) == 1
            assert (yield from wrapper.to_pylist()) == [1]

        run_single(body)

    def test_bulk_ops_work_sequentially(self):
        def body():
            first = synchronized_list(LinkedList("f"))
            second = synchronized_list(LinkedList("s"))
            for value in (1, 2, 3):
                yield from first.add(value)
            for value in (2, 3):
                yield from second.add(value)
            assert (yield from first.contains_all(second))
            assert not (yield from second.contains_all(first))
            yield from second.add_all(first)
            assert (yield from second.to_pylist()) == [2, 3, 1, 2, 3]
            yield from second.remove_all(first)
            assert (yield from second.to_pylist()) == []
            assert not (yield from first.equals(second))

        run_single(body)

    def test_wrapping_all_four_collections(self):
        def body():
            for backing in (
                ArrayList("a"),
                LinkedList("l"),
            ):
                wrapper = synchronized_list(backing)
                yield from wrapper.add(1)
                assert (yield from wrapper.size()) == 1
            for backing in (HashSet("h"), TreeSet("t")):
                wrapper = synchronized_set(backing)
                yield from wrapper.add(1)
                assert (yield from wrapper.size()) == 1

        run_single(body)

    def test_repr(self):
        wrapper = synchronized_list(ArrayList("backing"))
        assert "backing" in repr(wrapper)


class TestLockingShape:
    """Verify, via acquire events, the exact JDK locking behaviour that
    creates the Section 5.3 bug."""

    @staticmethod
    def _acquired_locks(body_factory):
        trace = EventTrace()

        def make():
            def main():
                yield from body_factory()

            return main()

        Execution(Program(make), observers=[trace]).run(RandomScheduler())
        return [event.lock.describe() for event in trace.of_type(AcquireEvent)]

    def test_own_operations_lock_own_mutex(self):
        wrapper_box = {}

        def body():
            wrapper = synchronized_list(ArrayList("backing"))
            wrapper_box["w"] = wrapper
            yield from wrapper.add(1)

        locks = self._acquired_locks(body)
        assert locks == [wrapper_box["w"].mutex.id.describe()]

    def test_contains_all_locks_only_the_receiver(self):
        """THE bug: l1.containsAll(l2) acquires l1's mutex but never l2's."""
        boxes = {}

        def body():
            first = synchronized_list(LinkedList("b1"))
            second = synchronized_list(LinkedList("b2"))
            boxes["first"], boxes["second"] = first, second
            yield from second.add(1)
            yield from first.contains_all(second)

        locks = self._acquired_locks(body)
        second_mutex = boxes["second"].mutex.id.describe()
        first_mutex = boxes["first"].mutex.id.describe()
        assert first_mutex in locks
        # second's mutex is acquired only by the setup add, never by
        # containsAll's iteration of it:
        assert locks.count(second_mutex) == 1

    def test_iterator_is_unsynchronized(self):
        def body():
            wrapper = synchronized_list(ArrayList("backing"))
            yield from wrapper.add(1)
            iterator = yield from wrapper.iterator()
            while (yield from iterator.has_next()):
                yield from iterator.next()

        locks = self._acquired_locks(body)
        assert len(locks) == 1  # only the add
