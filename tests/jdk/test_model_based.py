"""Model-based property tests: random op sequences vs Python's list/set.

Run single-threaded (the concurrent behaviour is covered by the fuzzing
integration tests); here hypothesis checks that every collection is a
correct *sequential* implementation of its contract, which is the
precondition for calling the concurrent failures "bugs".
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jdk import ArrayList, HashSet, LinkedList, TreeSet, Vector

from tests.conftest import run_single

# op, value — value range kept small to exercise collisions/duplicates
list_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "contains", "size", "clear"]),
        st.integers(0, 7),
    ),
    max_size=25,
)

set_ops = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "contains", "size"]),
        st.integers(0, 7),
    ),
    max_size=25,
)


def _check_list_model(make_collection, script):
    def body():
        collection = make_collection()
        model = []
        for op, value in script:
            if op == "add":
                yield from collection.add(value)
                model.append(value)
            elif op == "remove":
                removed = yield from collection.remove(value)
                assert removed == (value in model)
                if removed:
                    model.remove(value)
            elif op == "contains":
                assert (yield from collection.contains(value)) == (value in model)
            elif op == "size":
                assert (yield from collection.size()) == len(model)
            elif op == "clear":
                yield from collection.clear()
                model.clear()
        assert (yield from collection.to_pylist()) == model

    run_single(body)


def _check_set_model(make_collection, script, sorted_iteration):
    def body():
        collection = make_collection()
        model = set()
        for op, value in script:
            if op == "add":
                added = yield from collection.add(value)
                assert added == (value not in model)
                model.add(value)
            elif op == "remove":
                removed = yield from collection.remove(value)
                assert removed == (value in model)
                model.discard(value)
            elif op == "contains":
                assert (yield from collection.contains(value)) == (value in model)
            elif op == "size":
                assert (yield from collection.size()) == len(model)
        items = yield from collection.to_pylist()
        assert len(items) == len(model)
        assert set(items) == model
        if sorted_iteration:
            assert items == sorted(model)

    run_single(body)


class TestListModels:
    @given(script=list_ops)
    @settings(max_examples=60, deadline=None)
    def test_arraylist_matches_python_list(self, script):
        _check_list_model(lambda: ArrayList("al"), script)

    @given(script=list_ops)
    @settings(max_examples=60, deadline=None)
    def test_linkedlist_matches_python_list(self, script):
        _check_list_model(lambda: LinkedList("ll"), script)


class TestSetModels:
    @given(script=set_ops)
    @settings(max_examples=60, deadline=None)
    def test_hashset_matches_python_set(self, script):
        _check_set_model(lambda: HashSet("hs", capacity=3), script, False)

    @given(script=set_ops)
    @settings(max_examples=60, deadline=None)
    def test_treeset_matches_python_set(self, script):
        _check_set_model(lambda: TreeSet("ts"), script, True)


class TestVectorModel:
    @given(script=list_ops)
    @settings(max_examples=40, deadline=None)
    def test_vector_matches_python_list(self, script):
        def body():
            vector = Vector("v")
            model = []
            for op, value in script:
                if op == "add":
                    yield from vector.add_element(value)
                    model.append(value)
                elif op == "remove":
                    removed = yield from vector.remove_element(value)
                    assert removed == (value in model)
                    if removed:
                        model.remove(value)
                elif op == "contains":
                    assert (yield from vector.contains(value)) == (value in model)
                elif op == "size":
                    assert (yield from vector.size()) == len(model)
                elif op == "clear":
                    yield from vector.remove_all_elements()
                    model.clear()
            assert (yield from vector.copy_into()) == model

        run_single(body)
