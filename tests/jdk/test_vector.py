"""Vector (JDK 1.1 style): synchronized surface and the benign readers."""

import pytest

from repro.core import RandomScheduler
from repro.jdk import Vector
from repro.runtime import AcquireEvent, EventTrace, Execution, Program
from repro.runtime.errors import NoSuchElementError
from repro.runtime import join_all, ops, spawn_all

from tests.conftest import run_single


class TestVectorBasics:
    def test_add_element_at_size(self):
        def body():
            vec = Vector("v")
            yield from vec.add_element("a")
            yield from vec.add_element("b")
            assert (yield from vec.size()) == 2
            assert (yield from vec.element_at(0)) == "a"
            assert (yield from vec.element_at(1)) == "b"

        run_single(body)

    def test_element_at_bounds(self):
        def body():
            vec = Vector("v")
            yield from vec.add_element("a")
            with pytest.raises(NoSuchElementError):
                yield from vec.element_at(1)
            with pytest.raises(NoSuchElementError):
                yield from vec.element_at(-1)

        run_single(body)

    def test_first_element(self):
        def body():
            vec = Vector("v")
            with pytest.raises(NoSuchElementError):
                yield from vec.first_element()
            yield from vec.add_element("x")
            assert (yield from vec.first_element()) == "x"

        run_single(body)

    def test_remove_element_shifts(self):
        def body():
            vec = Vector("v")
            for value in ("a", "b", "c"):
                yield from vec.add_element(value)
            assert (yield from vec.remove_element("b"))
            assert (yield from vec.copy_into()) == ["a", "c"]
            assert not (yield from vec.remove_element("zzz"))

        run_single(body)

    def test_set_element_at(self):
        def body():
            vec = Vector("v")
            yield from vec.add_element("a")
            yield from vec.set_element_at("z", 0)
            assert (yield from vec.element_at(0)) == "z"
            with pytest.raises(NoSuchElementError):
                yield from vec.set_element_at("q", 5)

        run_single(body)

    def test_index_of_and_contains(self):
        def body():
            vec = Vector("v")
            for value in ("a", "b"):
                yield from vec.add_element(value)
            assert (yield from vec.index_of("b")) == 1
            assert (yield from vec.index_of("q")) == -1
            assert (yield from vec.contains("a"))
            assert not (yield from vec.contains("q"))

        run_single(body)

    def test_remove_all_elements(self):
        def body():
            vec = Vector("v")
            for value in range(3):
                yield from vec.add_element(value)
            yield from vec.remove_all_elements()
            assert (yield from vec.is_empty())
            assert (yield from vec.copy_into()) == []

        run_single(body)

    def test_enumeration_walks_all(self):
        def body():
            vec = Vector("v")
            for value in ("a", "b", "c"):
                yield from vec.add_element(value)
            enumeration = vec.elements()
            seen = []
            while (yield from enumeration.has_more_elements()):
                seen.append((yield from enumeration.next_element()))
            assert seen == ["a", "b", "c"]

        run_single(body)


class TestSynchronizationSurface:
    def test_mutators_acquire_the_monitor(self):
        trace = EventTrace()

        def make():
            vec = Vector("v")

            def main():
                yield from vec.add_element("a")
                yield from vec.element_at(0)

            return main()

        Execution(Program(make), observers=[trace]).run(RandomScheduler())
        acquires = trace.of_type(AcquireEvent)
        assert len(acquires) == 2  # one per synchronized method call

    def test_unsync_readers_never_acquire(self):
        trace = EventTrace()

        def make():
            vec = Vector("v")

            def main():
                yield from vec.add_element("a")  # 1 acquire
                yield from vec.size()  # none
                yield from vec.is_empty()  # none
                yield from vec.copy_into()  # none
                enumeration = vec.elements()
                while (yield from enumeration.has_more_elements()):
                    yield from enumeration.next_element()  # none

            return main()

        Execution(Program(make), observers=[trace]).run(RandomScheduler())
        assert len(trace.of_type(AcquireEvent)) == 1

    def test_enumeration_tolerates_concurrent_shrink(self):
        """Non-fail-fast: a racing remove_all_elements never makes the
        enumeration throw (the vector row's 0 exceptions)."""

        def make():
            vec = Vector("v")

            def enumerator():
                enumeration = vec.elements()
                while (yield from enumeration.has_more_elements()):
                    yield from enumeration.next_element()

            def shrinker():
                yield from vec.remove_all_elements()

            def main():
                for value in range(4):
                    yield from vec.add_element(value)
                handles = yield from spawn_all([enumerator, shrinker])
                yield from join_all(handles)

            return main()

        for seed in range(25):
            result = Execution(Program(make), seed=seed).run(
                RandomScheduler(preemption="every")
            )
            assert not result.crashes, f"seed {seed}: {result.crashes}"
            assert not result.deadlock
