"""Hashtable: sequential semantics, locking surface, benign races."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RandomScheduler, race_directed_test
from repro.jdk.hashtable import Hashtable
from repro.runtime import (
    AcquireEvent,
    EventTrace,
    Execution,
    Program,
    join_all,
    spawn_all,
)
from repro.runtime.errors import NoSuchElementError, NullPointerError

from tests.conftest import run_single


class TestBasics:
    def test_put_get_remove(self):
        def body():
            table = Hashtable("t")
            assert (yield from table.put("a", 1)) is None
            assert (yield from table.put("a", 2)) == 1  # replace returns old
            assert (yield from table.get("a")) == 2
            assert (yield from table.size()) == 1
            assert (yield from table.remove("a")) == 2
            assert (yield from table.remove("a")) is None
            assert (yield from table.get("a")) is None
            assert (yield from table.size()) == 0

        run_single(body)

    def test_nulls_rejected(self):
        def body():
            table = Hashtable("t")
            with pytest.raises(NullPointerError):
                yield from table.put(None, 1)
            with pytest.raises(NullPointerError):
                yield from table.put("k", None)

        run_single(body)

    def test_collisions(self):
        def body():
            table = Hashtable("t", capacity=2)
            for key in range(8):
                yield from table.put(key, key * 10)
            assert (yield from table.size()) == 8
            for key in range(8):
                assert (yield from table.get(key)) == key * 10
                assert (yield from table.contains_key(key))
            yield from table.remove(4)
            assert not (yield from table.contains_key(4))
            assert (yield from table.get(6)) == 60  # bucket-mate survives

        run_single(body)

    def test_contains_value_and_clear(self):
        def body():
            table = Hashtable("t")
            yield from table.put("a", 1)
            yield from table.put("b", 2)
            assert (yield from table.contains_value(2))
            assert not (yield from table.contains_value(9))
            yield from table.clear()
            assert (yield from table.size()) == 0
            assert not (yield from table.contains_value(1))

        run_single(body)

    def test_enumerations(self):
        def body():
            table = Hashtable("t", capacity=3)
            for key in range(5):
                yield from table.put(key, key * 10)
            keys, values = [], []
            key_enum = table.keys()
            while (yield from key_enum.has_more_elements()):
                keys.append((yield from key_enum.next_element()))
            value_enum = table.elements()
            while (yield from value_enum.has_more_elements()):
                values.append((yield from value_enum.next_element()))
            assert sorted(keys) == list(range(5))
            assert sorted(values) == [k * 10 for k in range(5)]
            with pytest.raises(NoSuchElementError):
                yield from key_enum.next_element()

        run_single(body)

    @given(
        script=st.lists(
            st.tuples(
                st.sampled_from(["put", "remove", "get", "size"]),
                st.integers(0, 6),
            ),
            max_size=25,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_model_based_vs_dict(self, script):
        def body():
            table = Hashtable("t", capacity=3)
            model = {}
            for op, key in script:
                if op == "put":
                    old = yield from table.put(key, key + 100)
                    assert old == model.get(key)
                    model[key] = key + 100
                elif op == "remove":
                    old = yield from table.remove(key)
                    assert old == model.pop(key, None)
                elif op == "get":
                    assert (yield from table.get(key)) == model.get(key)
                elif op == "size":
                    assert (yield from table.size()) == len(model)

        run_single(body)


class TestLockingSurface:
    def test_map_ops_synchronized_enumerations_not(self):
        trace = EventTrace()

        def make():
            table = Hashtable("t")

            def main():
                yield from table.put("a", 1)  # 1 acquire
                yield from table.get("a")  # 1 acquire
                yield from table.contains_value(1)  # none
                enum = table.keys()
                while (yield from enum.has_more_elements()):
                    yield from enum.next_element()  # none

            return main()

        Execution(Program(make), observers=[trace]).run(RandomScheduler())
        assert len(trace.of_type(AcquireEvent)) == 2


class TestConcurrentBehaviour:
    @staticmethod
    def _driver():
        def factory():
            table = Hashtable("shared", capacity=3)

            def writer():
                for key in range(4):
                    yield from table.put(key, key)
                yield from table.remove(2)

            def scanner():
                for _ in range(3):
                    yield from table.contains_value(1)
                enum = table.elements()
                while (yield from enum.has_more_elements()):
                    yield from enum.next_element()

            def main():
                handles = yield from spawn_all([writer, scanner])
                yield from join_all(handles)

            return main()

        return Program(factory, name="hashtable-driver")

    def test_races_surface_only_the_historical_exception(self):
        """The 1.1 enumerations are not fail-fast, so most racing runs pass
        silently with stale data; the one crash mode Java 1.1 really had —
        the table shrinking between hasMoreElements and nextElement —
        surfaces as NoSuchElementError and nothing else."""
        crash_types = set()
        for seed in range(40):
            result = Execution(self._driver(), seed=seed).run(
                RandomScheduler(preemption="every")
            )
            crash_types.update(result.exception_types)
            assert not result.deadlock
        assert crash_types <= {"NoSuchElementError"}

    def test_pipeline_confirms_scan_races(self):
        campaign = race_directed_test(
            self._driver(), trials=25, phase1_seeds=range(5)
        )
        assert campaign.potential_pairs >= 1  # scan vs locked mutators
        assert campaign.real_pairs  # confirmed: they really race
        # Any attributed exception must be the historical one.
        assert set(campaign.exception_types) <= {"NoSuchElementError"}
