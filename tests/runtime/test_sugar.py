"""The DSL layer: shared structures and synchronization sugar."""

import pytest

from repro.runtime import (
    AtomicCounter,
    Barrier,
    BlockingQueue,
    CountDownLatch,
    IndexOutOfBoundsError,
    Lock,
    SharedArray,
    SharedCells,
    SharedObject,
    SharedVar,
    SimulatedError,
    join_all,
    ops,
    spawn_all,
    synchronized,
)

from tests.conftest import run_program, run_single


class TestSharedVar:
    def test_init_value_visible_without_write(self):
        def body():
            x = SharedVar("x", init=99)
            value = yield x.read()
            assert value == 99

        run_single(body)

    def test_each_instance_is_its_own_location(self):
        def body():
            a, b = SharedVar("same-name", 0), SharedVar("same-name", 0)
            yield a.write(1)
            value = yield b.read()
            assert value == 0

        run_single(body)


class TestSharedArrayAndCells:
    def test_array_bounds_checked(self):
        arr = SharedArray(3, "a", init=0)
        with pytest.raises(IndexOutOfBoundsError):
            arr.read(3)
        with pytest.raises(IndexOutOfBoundsError):
            arr.write(-1, 0)

    def test_array_read_write(self):
        def body():
            arr = SharedArray(3, "a", init=7)
            assert (yield arr.read(2)) == 7
            yield arr.write(2, 9)
            assert (yield arr.read(2)) == 9
            assert (yield arr.read(0)) == 7

        run_single(body)

    def test_cells_are_unbounded(self):
        def body():
            cells = SharedCells("c", init=None)
            yield cells.write(1000, "far")
            assert (yield cells.read(1000)) == "far"
            assert (yield cells.read(5)) is None

        run_single(body)


class TestSharedObject:
    def test_field_defaults_and_updates(self):
        def body():
            obj = SharedObject("task", busy=0, url=None)
            assert (yield obj.get("busy")) == 0
            assert (yield obj.get("url")) is None
            yield obj.set("busy", 1)
            assert (yield obj.get("busy")) == 1
            # Undeclared fields default to None.
            assert (yield obj.get("other")) is None

        run_single(body)

    def test_objects_can_hold_references_to_each_other(self):
        def body():
            first = SharedObject("n1", next=None)
            second = SharedObject("n2", next=None)
            yield first.set("next", second)
            target = yield first.get("next")
            assert target is second

        run_single(body)


class TestSynchronized:
    def test_releases_on_normal_exit(self):
        def body():
            lock = Lock("L")
            x = SharedVar("x", 0)

            def critical():
                yield x.write(1)
                return "done"

            result = yield from synchronized(lock, critical())
            assert result == "done"
            # Lock must be free again: re-acquiring must not deadlock.
            yield lock.acquire()
            yield lock.release()

        run_single(body)

    def test_releases_on_exception(self):
        def make():
            lock = Lock("L")
            witness = SharedVar("w", 0)

            def bad():
                raise SimulatedError("inside critical section")
                yield  # pragma: no cover

            def crasher():
                yield from synchronized(lock, bad())

            def second():
                yield lock.acquire()  # must not deadlock
                yield witness.write(1)
                yield lock.release()

            def main():
                first = yield ops.spawn(crasher)
                yield ops.join(first)
                other = yield ops.spawn(second)
                yield ops.join(other)
                value = yield witness.read()
                yield ops.check(value == 1, "lock leaked on crash")

            return main()

        result = run_program(make)
        assert result.exception_types == ["SimulatedError"]
        assert not result.deadlock


class TestBarrier:
    def test_requires_positive_parties(self):
        with pytest.raises(ValueError):
            Barrier(0)

    def test_barrier_separates_phases(self, rng_seeds):
        def make():
            barrier = Barrier(3)
            phase_log = []

            def worker(k):
                phase_log.append(("a", k))
                yield from barrier.wait_for_all()
                phase_log.append(("b", k))
                yield from barrier.wait_for_all()
                phase_log.append(("c", k))

            def main():
                handles = yield from spawn_all(
                    [(lambda k: lambda: worker(k))(k) for k in range(3)]
                )
                yield from join_all(handles)
                phases = [tag for tag, _ in phase_log]
                yield ops.check(
                    phases == sorted(phases), f"phases interleaved: {phases}"
                )

            return main()

        for seed in rng_seeds:
            result = run_program(make, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"


class TestCountDownLatch:
    def test_await_blocks_until_zero(self, rng_seeds):
        def make():
            latch = CountDownLatch(2)
            log = []

            def worker(k):
                yield ops.yield_point()
                log.append(f"work-{k}")
                yield from latch.count_down()

            def main():
                yield from spawn_all(
                    [(lambda k: lambda: worker(k))(k) for k in range(2)]
                )
                yield from latch.await_zero()
                yield ops.check(len(log) == 2, f"latch opened early: {log}")

            return main()

        for seed in rng_seeds:
            result = run_program(make, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"


class TestBlockingQueue:
    def test_fifo_single_threaded(self):
        def body():
            queue = BlockingQueue(name="q")
            yield from queue.put("a")
            yield from queue.put("b")
            assert (yield from queue.size()) == 2
            assert (yield from queue.take()) == "a"
            assert (yield from queue.take()) == "b"
            assert (yield from queue.size()) == 0

        run_single(body)

    def test_take_blocks_until_put(self, rng_seeds):
        def make():
            queue = BlockingQueue(name="q")

            def consumer():
                item = yield from queue.take()
                yield ops.check(item == 42, f"got {item}")

            def producer():
                yield ops.yield_point()
                yield from queue.put(42)

            def main():
                handles = yield from spawn_all([consumer, producer])
                yield from join_all(handles)

            return main()

        for seed in rng_seeds:
            result = run_program(make, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"

    def test_bounded_put_blocks_at_capacity(self, rng_seeds):
        def make():
            queue = BlockingQueue(capacity=1, name="q")
            order = []

            def producer():
                yield from queue.put(1)
                order.append("put-1")
                yield from queue.put(2)  # must block until take
                order.append("put-2")

            def consumer():
                yield ops.yield_point()
                yield from queue.take()
                order.append("take-1")
                yield from queue.take()

            def main():
                handles = yield from spawn_all([producer, consumer])
                yield from join_all(handles)
                yield ops.check(
                    order.index("take-1") < order.index("put-2"),
                    f"capacity violated: {order}",
                )

            return main()

        for seed in rng_seeds:
            result = run_program(make, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"


class TestAtomicCounter:
    def test_concurrent_increments_never_lost(self, rng_seeds):
        def make():
            counter = AtomicCounter("c")

            def worker():
                for _ in range(4):
                    yield from counter.add(1)

            def main():
                handles = yield from spawn_all([worker, worker, worker])
                yield from join_all(handles)
                total = yield from counter.get()
                yield ops.check(total == 12, f"lost updates: {total}")

            return main()

        for seed in rng_seeds:
            result = run_program(make, seed=seed)
            assert not result.crashes, f"seed {seed}"

    def test_read_unlocked_is_a_bare_op(self):
        counter = AtomicCounter("c", init=5)
        op = counter.read_unlocked()
        assert op.is_mem and not op.is_write
