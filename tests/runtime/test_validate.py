"""Trace auditing: the engine's own traces always validate; corrupted
traces are caught.  Plus the hypothesis sweep: random programs under every
scheduler produce valid traces."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DefaultScheduler, RaceFuzzer, RandomScheduler, RaposDriver
from repro.runtime import (
    EventTrace,
    Execution,
    Lock,
    MemEvent,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)
from repro.runtime.events import AcquireEvent, RcvEvent, ReleaseEvent
from repro.runtime.validate import TraceInvariantError, validate_trace
from repro.workloads import figure1, get

from tests.runtime.test_replay_determinism import _SCRIPTS, _make_program


def _trace_of(program, scheduler, seed=0):
    trace = EventTrace()
    Execution(program, seed=seed, observers=[trace], max_steps=200_000).run(
        scheduler
    )
    return trace.events


class TestValidTraces:
    def test_figure1_under_all_schedulers(self):
        for scheduler in (
            RandomScheduler("every"),
            RandomScheduler("sync"),
            DefaultScheduler(),
        ):
            audit = validate_trace(_trace_of(figure1.build(), scheduler))
            assert audit.mem_events > 0
            assert audit.messages_received <= audit.messages_sent

    def test_workload_traces_validate(self):
        for name in ("cache4j", "weblech", "linkedlist", "moldyn"):
            events = _trace_of(get(name).build(), RandomScheduler("every"))
            audit = validate_trace(events)
            assert audit.events > 50

    def test_racefuzzer_traces_validate(self):
        from repro.core.replay import replay_race

        for seed in range(5):
            run = replay_race(figure1.build(), figure1.REAL_PAIR, seed=seed)
            validate_trace(run.events)

    @given(scripts=st.lists(_SCRIPTS, min_size=1, max_size=3), seed=st.integers(0, 5_000))
    @settings(max_examples=40, deadline=None)
    def test_random_programs_validate(self, scripts, seed):
        program = _make_program(scripts)
        validate_trace(_trace_of(program, RandomScheduler("every"), seed=seed))

    @given(seed=st.integers(0, 1_000))
    @settings(max_examples=15, deadline=None)
    def test_rapos_traces_validate(self, seed):
        trace = EventTrace()
        RaposDriver().run(figure1.build(), seed=seed, observers=[trace])
        validate_trace(trace.events)


class TestCorruptedTraces:
    def _valid_events(self):
        return _trace_of(figure1.build(), RandomScheduler("every"))

    def test_double_acquire_caught(self):
        events = self._valid_events()
        acquire = next(e for e in events if isinstance(e, AcquireEvent))
        duplicated = []
        for event in events:
            duplicated.append(event)
            if event is acquire:
                duplicated.append(acquire)  # second acquire, same owner state
        with pytest.raises(TraceInvariantError):
            validate_trace(duplicated)

    def test_foreign_release_caught(self):
        events = self._valid_events()
        release = next(e for e in events if isinstance(e, ReleaseEvent))
        forged = [
            ReleaseEvent(step=e.step, tid=99, lock=e.lock, stmt=None)
            if e is release
            else e
            for e in events
        ]
        # thread 99 never started -> flagged even before lock ownership
        with pytest.raises(TraceInvariantError):
            validate_trace(forged)

    def test_time_travel_caught(self):
        events = self._valid_events()
        reversed_events = list(reversed(events))
        with pytest.raises(TraceInvariantError):
            validate_trace(reversed_events)

    def test_rcv_before_snd_caught(self):
        events = self._valid_events()
        rcv = next(e for e in events if isinstance(e, RcvEvent))
        hoisted = [RcvEvent(step=0, tid=rcv.tid, msg_id=99_999)] + events
        with pytest.raises(TraceInvariantError):
            validate_trace(hoisted)

    def test_wrong_lockset_caught(self):
        events = self._valid_events()
        mem = next(e for e in events if isinstance(e, MemEvent))
        lock = Lock("forged")
        forged = [
            MemEvent(
                step=e.step,
                tid=e.tid,
                stmt=e.stmt,
                location=e.location,
                access=e.access,
                locks_held=frozenset({lock.id}),
            )
            if e is mem
            else e
            for e in events
        ]
        with pytest.raises(TraceInvariantError):
            validate_trace(forged)
