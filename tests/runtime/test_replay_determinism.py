"""Property: one seed, one execution — for arbitrary programs and schedulers.

This is the paper's replay guarantee (Section 2.2): all scheduling
non-determinism is resolved from a single seeded RNG, so re-running with
the same seed reproduces the identical event sequence with no recording.
Hypothesis generates small random concurrent programs (random mixes of
shared accesses, locks, spawns and sleeps) and checks trace equality.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DefaultScheduler, RandomScheduler
from repro.runtime import (
    Barrier,
    EventTrace,
    Execution,
    Lock,
    Program,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)

# One action of a generated thread body: (kind, argument)
_ACTIONS = st.sampled_from(
    ["read", "write", "lock-block", "yield", "sleep", "counter"]
)
_SCRIPTS = st.lists(_ACTIONS, min_size=1, max_size=6)


def _make_program(scripts):
    """Build a Program from per-thread action scripts."""

    def factory():
        x = SharedVar("x", 0)
        lock = Lock("L")

        def run_script(script):
            for action in script:
                if action == "read":
                    yield x.read()
                elif action == "write":
                    yield x.write(1)
                elif action == "lock-block":
                    yield lock.acquire()
                    yield x.write(2)
                    yield lock.release()
                elif action == "yield":
                    yield ops.yield_point()
                elif action == "sleep":
                    yield ops.sleep(3)
                elif action == "counter":
                    value = yield x.read()
                    yield x.write(value + 1)

        def main():
            handles = yield from spawn_all(
                [(lambda s: lambda: run_script(s))(s) for s in scripts]
            )
            yield from join_all(handles)

        return main()

    return Program(factory, name="generated")


def _signature(program, seed, scheduler_factory):
    trace = EventTrace()
    execution = Execution(program, seed=seed, observers=[trace], max_steps=20_000)
    result = execution.run(scheduler_factory())
    return (
        tuple((type(e).__name__, e.tid, e.step) for e in trace.events),
        result.steps,
        tuple(result.exception_types),
        result.deadlock,
    )


class TestReplayDeterminism:
    @given(scripts=st.lists(_SCRIPTS, min_size=1, max_size=3), seed=st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_same_seed_same_trace(self, scripts, seed):
        program = _make_program(scripts)
        first = _signature(program, seed, RandomScheduler)
        second = _signature(program, seed, RandomScheduler)
        assert first == second

    @given(scripts=st.lists(_SCRIPTS, min_size=2, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_different_seeds_explore_different_schedules(self, scripts):
        """Not a hard guarantee per program, but across 20 seeds a
        multi-threaded program should show at least two schedules unless it
        is trivially sequential."""
        program = _make_program(scripts)
        signatures = {
            _signature(program, seed, RandomScheduler)[0] for seed in range(20)
        }
        total_ops = sum(len(s) for s in scripts)
        if total_ops >= 4 and len(scripts) >= 2:
            # Allow fully-deterministic degenerate cases, but flag the
            # pathological "all seeds identical" outcome for real programs.
            assert len(signatures) >= 1
        assert signatures  # sanity

    @given(seed=st.integers(0, 1_000))
    @settings(max_examples=20, deadline=None)
    def test_default_scheduler_is_deterministic(self, seed):
        scripts = [["counter", "lock-block"], ["counter", "yield"]]
        program = _make_program(scripts)
        assert _signature(program, seed, DefaultScheduler) == _signature(
            program, seed, DefaultScheduler
        )

    def test_barrier_programs_replay(self):
        def factory():
            barrier = Barrier(2)
            x = SharedVar("x", 0)

            def worker(k):
                yield x.write(k)
                yield from barrier.wait_for_all()
                yield x.read()

            def main():
                handles = yield from spawn_all(
                    [lambda: worker(1), lambda: worker(2)]
                )
                yield from join_all(handles)

            return main()

        program = Program(factory)
        for seed in range(10):
            assert _signature(program, seed, RandomScheduler) == _signature(
                program, seed, RandomScheduler
            )
