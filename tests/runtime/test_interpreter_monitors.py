"""Monitor semantics: blocking, reentrancy, wait/notify two-stage wakeup."""

import pytest

from repro.core import RandomScheduler
from repro.runtime import (
    AcquireEvent,
    EventTrace,
    Execution,
    IllegalMonitorState,
    Lock,
    Program,
    ReleaseEvent,
    SharedVar,
    join_all,
    ops,
    spawn_all,
)

from tests.conftest import run_program, run_single


class TestMutualExclusion:
    def test_critical_section_is_atomic_under_all_seeds(self, rng_seeds):
        def make():
            x = SharedVar("x", 0)
            lock = Lock("L")

            def worker():
                for _ in range(5):
                    yield lock.acquire()
                    value = yield x.read()
                    yield x.write(value + 1)
                    yield lock.release()

            def main():
                handles = yield from spawn_all([worker, worker])
                yield from join_all(handles)
                total = yield x.read()
                yield ops.check(total == 10, f"lost updates: {total}")

            return main()

        for seed in rng_seeds:
            result = run_program(make, seed=seed)
            assert not result.crashes, f"seed {seed}: {result.crashes}"

    def test_unlocked_counter_loses_updates_on_some_seed(self, rng_seeds):
        """The negative control: without the lock, some schedule loses one."""

        def make():
            x = SharedVar("x", 0)

            def worker():
                for _ in range(5):
                    value = yield x.read()
                    yield x.write(value + 1)

            def main():
                handles = yield from spawn_all([worker, worker])
                yield from join_all(handles)
                total = yield x.read()
                yield ops.check(total == 10, f"lost updates: {total}")

            return main()

        outcomes = {run_program(make, seed=seed).crashes != [] for seed in range(30)}
        assert True in outcomes, "expected at least one seed to lose an update"

    def test_reentrant_locking(self):
        def body():
            lock = Lock("L")
            yield lock.acquire()
            yield lock.acquire()
            yield lock.release()
            yield lock.release()

        run_single(body)

    def test_blocked_thread_waits_for_release(self):
        order = []

        def make():
            lock = Lock("L")

            def holder():
                yield lock.acquire()
                order.append("holder-in")
                yield ops.yield_point()
                yield ops.yield_point()
                order.append("holder-out")
                yield lock.release()

            def contender():
                yield ops.yield_point()  # let holder get there first sometimes
                yield lock.acquire()
                order.append("contender-in")
                yield lock.release()

            def main():
                handles = yield from spawn_all([holder, contender])
                yield from join_all(handles)

            return main()

        for seed in range(10):
            order.clear()
            run_program(make, seed=seed)
            if order[0] == "holder-in":
                assert order.index("holder-out") < order.index("contender-in")


class TestMonitorMisuse:
    def test_release_without_acquire(self):
        def make():
            lock = Lock("L")

            def main():
                yield lock.release()

            return main()

        with pytest.raises(IllegalMonitorState):
            run_program(make)

    def test_notify_without_holding(self):
        def make():
            lock = Lock("L")

            def main():
                yield lock.notify()

            return main()

        with pytest.raises(IllegalMonitorState):
            run_program(make)

    def test_wait_without_holding(self):
        def make():
            lock = Lock("L")

            def main():
                yield lock.wait()

            return main()

        with pytest.raises(IllegalMonitorState):
            run_program(make)


class TestWaitNotify:
    @staticmethod
    def _producer_consumer_program():
        lock = Lock("L")
        ready = SharedVar("ready", 0)
        log = []

        def consumer():
            yield lock.acquire()
            while (yield ready.read()) == 0:
                yield lock.wait()
            log.append("consumed")
            yield lock.release()

        def producer():
            yield lock.acquire()
            yield ready.write(1)
            log.append("produced")
            yield lock.notify()
            yield lock.release()

        def main():
            handles = yield from spawn_all([consumer, producer])
            yield from join_all(handles)

        return main, log

    def test_wait_releases_and_reacquires(self, rng_seeds):
        for seed in rng_seeds:
            holder = {}

            def make():
                main, log = self._producer_consumer_program()
                holder["log"] = log
                return main()

            result = run_program(make, seed=seed)
            assert not result.deadlock, f"seed {seed}"
            assert holder["log"] == ["produced", "consumed"]

    def test_notify_all_wakes_everyone(self, rng_seeds):
        def make():
            lock = Lock("L")
            go = SharedVar("go", 0)
            done = SharedVar("done", 0)

            def waiter():
                yield lock.acquire()
                while (yield go.read()) == 0:
                    yield lock.wait()
                count = yield done.read()
                yield done.write(count + 1)
                yield lock.release()

            def main():
                handles = yield from spawn_all([waiter] * 3)
                yield ops.yield_point()
                yield lock.acquire()
                yield go.write(1)
                yield lock.notify_all()
                yield lock.release()
                yield from join_all(handles)
                count = yield done.read()
                yield ops.check(count == 3, f"only {count} woke up")

            return main()

        for seed in rng_seeds:
            result = run_program(make, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"

    def test_single_notify_wakes_exactly_one(self):
        """With two waiters and one notify, one stays waiting -> deadlock."""

        def make():
            lock = Lock("L")

            def waiter():
                yield lock.acquire()
                yield lock.wait()  # no condition loop on purpose
                yield lock.release()

            def main():
                handles = yield from spawn_all([waiter, waiter])
                yield ops.yield_point()
                yield ops.yield_point()
                yield lock.acquire()
                yield lock.notify()
                yield lock.release()
                yield from join_all(handles)

            return main()

        deadlocks = sum(run_program(make, seed=s).deadlock for s in range(10))
        assert deadlocks == 10

    def test_notify_before_wait_is_lost(self):
        """Java semantics: a notify with an empty wait set does nothing."""

        def make():
            lock = Lock("L")

            def main():
                yield lock.acquire()
                yield lock.notify()
                yield lock.notify_all()
                yield lock.release()

            return main()

        result = run_program(make)
        assert not result.deadlock and not result.crashes

    def test_wait_preserves_reentrant_depth(self):
        def make():
            lock = Lock("L")
            flag = SharedVar("flag", 0)

            def waiter():
                yield lock.acquire()
                yield lock.acquire()  # depth 2
                while (yield flag.read()) == 0:
                    yield lock.wait()
                yield lock.release()
                yield lock.release()  # both releases must succeed

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.yield_point()
                yield ops.yield_point()
                yield lock.acquire()
                yield flag.write(1)
                yield lock.notify()
                yield lock.release()
                yield ops.join(handle)

            return main()

        for seed in range(10):
            result = run_program(make, seed=seed)
            assert not result.crashes and not result.deadlock, f"seed {seed}"

    def test_acquire_release_events_outermost_only(self):
        trace = EventTrace()

        def body():
            lock = Lock("L")
            yield lock.acquire()
            yield lock.acquire()
            yield lock.release()
            yield lock.release()

        run_single(body, observers=[trace])
        assert len(trace.of_type(AcquireEvent)) == 1
        assert len(trace.of_type(ReleaseEvent)) == 1
        assert trace.of_type(AcquireEvent)[0].stmt is not None
