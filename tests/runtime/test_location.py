"""Location value objects and lock identities."""

from repro.runtime.location import (
    ElemLoc,
    FieldLoc,
    LockId,
    VarLoc,
    fresh_uid,
)


class TestUids:
    def test_fresh_uids_are_unique_and_increasing(self):
        first, second = fresh_uid(), fresh_uid()
        assert second > first


class TestVarLoc:
    def test_equality_by_uid_not_name(self):
        uid = fresh_uid()
        assert VarLoc(uid, "a") == VarLoc(uid, "b")  # name is debug-only
        assert VarLoc(fresh_uid(), "a") != VarLoc(fresh_uid(), "a")

    def test_describe(self):
        assert VarLoc(1, "x").describe() == "x"
        assert VarLoc(7, "").describe() == "var#7"
        assert str(VarLoc(1, "x")) == "x"


class TestFieldLoc:
    def test_fields_of_same_object_differ(self):
        uid = fresh_uid()
        assert FieldLoc(uid, "o", "a") != FieldLoc(uid, "o", "b")
        assert FieldLoc(uid, "o", "a") == FieldLoc(uid, "other-name", "a")

    def test_describe(self):
        assert FieldLoc(3, "task", "busy").describe() == "task.busy"
        assert FieldLoc(3, "", "busy").describe() == "obj#3.busy"


class TestElemLoc:
    def test_elements_differ_by_index(self):
        uid = fresh_uid()
        assert ElemLoc(uid, "a", 0) != ElemLoc(uid, "a", 1)
        assert ElemLoc(uid, "a", 2) == ElemLoc(uid, "b", 2)

    def test_describe(self):
        assert ElemLoc(5, "arr", 2).describe() == "arr[2]"


class TestCrossKindInequality:
    def test_different_kinds_never_equal(self):
        uid = fresh_uid()
        assert VarLoc(uid, "x") != FieldLoc(uid, "x", "")
        assert FieldLoc(uid, "x", "f") != ElemLoc(uid, "x", 0)


class TestLockId:
    def test_identity_and_describe(self):
        uid = fresh_uid()
        assert LockId(uid, "L") == LockId(uid, "M")
        assert LockId(uid, "L").describe() == "L"
        assert LockId(uid, "").describe() == f"lock#{uid}"
        assert LockId(uid, "L") != LockId(fresh_uid(), "L")

    def test_locks_are_not_locations(self):
        uid = fresh_uid()
        assert LockId(uid, "L") != VarLoc(uid, "L")
