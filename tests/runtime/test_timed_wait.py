"""``Object.wait(timeout)`` semantics."""

import pytest

from repro.core import RandomScheduler
from repro.runtime import Execution, Lock, Program, SharedVar, ops, spawn_all, join_all
from repro.runtime import InterruptedException


class TestTimedWait:
    def test_rejects_nonpositive_timeout(self):
        lock = Lock("L")
        with pytest.raises(ValueError):
            ops.wait(lock.id, timeout=0)
        with pytest.raises(ValueError):
            lock.wait(timeout=-5)

    def test_times_out_without_notify(self):
        """A lone timed waiter must wake on its own — no deadlock."""

        def make():
            lock = Lock("L")

            def main():
                yield lock.acquire()
                yield lock.wait(timeout=40)
                yield lock.release()

            return main()

        result = Execution(Program(make), max_steps=10_000).run(RandomScheduler())
        assert not result.deadlock
        assert not result.truncated

    def test_untimed_wait_still_deadlocks(self):
        def make():
            lock = Lock("L")

            def main():
                yield lock.acquire()
                yield lock.wait()
                yield lock.release()

            return main()

        result = Execution(Program(make)).run(RandomScheduler())
        assert result.deadlock

    def test_reacquires_the_monitor_after_timeout(self):
        """wait(long) returns holding the monitor, like Java."""

        def make():
            lock = Lock("L")
            witness = SharedVar("witness", 0)

            def waiter():
                yield lock.acquire()
                yield lock.wait(timeout=20)
                # If we do not own the monitor here, this release raises.
                yield witness.write(1)
                yield lock.release()

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.join(handle)
                value = yield witness.read()
                yield ops.check(value == 1, "waiter never returned")

            return main()

        for seed in range(10):
            result = Execution(Program(make), seed=seed).run(RandomScheduler())
            assert not result.crashes and not result.deadlock, f"seed {seed}"

    def test_notify_before_deadline_wins(self):
        order = []

        def make():
            lock = Lock("L")
            flag = SharedVar("flag", 0)

            def waiter():
                yield lock.acquire()
                while (yield flag.read()) == 0:
                    yield lock.wait(timeout=10_000)
                order.append("woken")
                yield lock.release()

            def notifier():
                yield ops.sleep(5)
                yield lock.acquire()
                yield flag.write(1)
                yield lock.notify()
                yield lock.release()
                order.append("notified")

            def main():
                handles = yield from spawn_all([waiter, notifier])
                yield from join_all(handles)

            return main()

        for seed in range(10):
            order.clear()
            result = Execution(Program(make), seed=seed, max_steps=50_000).run(
                RandomScheduler()
            )
            assert not result.deadlock and not result.truncated, f"seed {seed}"
            assert "woken" in order
            # The notify landed long before the 10k-tick deadline: the run's
            # step count stays far below it.
            assert result.steps < 5_000

    def test_timeout_loop_rechecks_condition(self):
        """The idiomatic guarded timed wait: loop re-evaluates the predicate
        after every timeout until a producer delivers."""

        def make():
            lock = Lock("L")
            ready = SharedVar("ready", 0)
            attempts = SharedVar("attempts", 0)

            def consumer():
                yield lock.acquire()
                while (yield ready.read()) == 0:
                    count = yield attempts.read()
                    yield attempts.write(count + 1)
                    yield lock.wait(timeout=8)
                yield lock.release()

            def producer():
                yield ops.sleep(60)
                yield lock.acquire()
                yield ready.write(1)
                yield lock.notify()
                yield lock.release()

            def main():
                handles = yield from spawn_all([consumer, producer])
                yield from join_all(handles)
                spins = yield attempts.read()
                yield ops.check(spins >= 2, f"expected repeated timeouts, got {spins}")

            return main()

        for seed in range(5):
            result = Execution(Program(make), seed=seed, max_steps=50_000).run(
                RandomScheduler()
            )
            assert not result.crashes and not result.deadlock, f"seed {seed}"

    def test_interrupt_beats_deadline(self):
        outcome = []

        def make():
            lock = Lock("L")

            def waiter():
                yield lock.acquire()
                try:
                    yield lock.wait(timeout=10_000)
                    outcome.append("timeout")
                except InterruptedException:
                    outcome.append("interrupted")
                yield lock.release()

            def main():
                handle = yield ops.spawn(waiter)
                yield ops.yield_point()
                yield ops.yield_point()
                yield ops.interrupt(handle)
                yield ops.join(handle)

            return main()

        for seed in range(8):
            outcome.clear()
            result = Execution(Program(make), seed=seed, max_steps=50_000).run(
                RandomScheduler()
            )
            assert not result.deadlock, f"seed {seed}"
            assert outcome == ["interrupted"], f"seed {seed}: {outcome}"

    def test_fast_forward_covers_timed_waiters(self):
        """Only a timed waiter remains: the clock must jump to its deadline
        instead of truncating the run."""

        def make():
            lock = Lock("L")

            def main():
                yield lock.acquire()
                yield lock.wait(timeout=50_000)
                yield lock.release()

            return main()

        execution = Execution(Program(make), max_steps=1_000)
        result = execution.run(RandomScheduler())
        assert not result.truncated
        assert not result.deadlock
        assert execution.step_count >= 50_000
